//! `string_regex` support for the pattern shape the workspace uses:
//! a single character class with a bounded repeat, e.g. `[a-z0-9-]{1,12}`.

use crate::{Strategy, TestRng};
use rand::Rng;

/// Strategy generating strings from a character set and length range.
pub struct RegexGeneratorStrategy {
    charset: Vec<char>,
    min_len: usize,
    max_len: usize,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.charset[rng.gen_range(0..self.charset.len())]).collect()
    }
}

/// Builds a string strategy from a `[class]{lo,hi}` regex.
///
/// # Errors
///
/// Returns a description of the unsupported construct for any other
/// regex shape (this is a stub, not a regex engine).
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
    let rest = pattern
        .strip_prefix('[')
        .ok_or_else(|| format!("unsupported regex `{pattern}`: expected `[class]{{lo,hi}}`"))?;
    let (class, rest) = rest
        .split_once(']')
        .ok_or_else(|| format!("unsupported regex `{pattern}`: unterminated class"))?;

    let mut charset = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return Err(format!("invalid range `{lo}-{hi}` in `{pattern}`"));
            }
            charset.extend(lo..=hi);
            i += 3;
        } else {
            charset.push(chars[i]);
            i += 1;
        }
    }
    if charset.is_empty() {
        return Err(format!("empty character class in `{pattern}`"));
    }

    let (min_len, max_len) = match rest {
        "" => (1, 1),
        "*" => (0, 8),
        "+" => (1, 8),
        _ => {
            let body = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .ok_or_else(|| format!("unsupported repeat `{rest}` in `{pattern}`"))?;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo = lo.trim().parse().map_err(|_| format!("bad repeat in `{pattern}`"))?;
                    let hi = hi.trim().parse().map_err(|_| format!("bad repeat in `{pattern}`"))?;
                    if lo > hi {
                        return Err(format!("inverted repeat in `{pattern}`"));
                    }
                    (lo, hi)
                }
                None => {
                    let n =
                        body.trim().parse().map_err(|_| format!("bad repeat in `{pattern}`"))?;
                    (n, n)
                }
            }
        }
    };

    Ok(RegexGeneratorStrategy { charset, min_len, max_len })
}
