//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use — the
//! `proptest!` macro, `Strategy` with `prop_map`, ranges / `any` / `Just`
//! / tuples / `prop::collection::vec` / `prop_oneof!` /
//! `string_regex("[class]{lo,hi}")` — on top of a seeded `SmallRng`.
//!
//! Differences from the real crate, by design:
//!
//! - no shrinking: a failing case reports its deterministic case seed
//!   instead of a minimized input;
//! - case count is fixed (64) unless `PROPTEST_CASES` overrides it;
//! - `string_regex` supports exactly the character-class + bounded-repeat
//!   pattern shape the tests use.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod string;

/// RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — not a failure.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Wide but always-finite coverage (no NaN surprises in a stub).
        (rng.gen::<f64>() - 0.5) * 2e12
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `choices` is empty.
    #[must_use]
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Collection-size specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Strategy combinators over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<T>` with element strategy `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..32)` / `vec(element, 20)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of the `prop::` module path used via the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, Strategy, TestCaseError,
    };
}

/// Number of cases per property (override with `PROPTEST_CASES`).
#[must_use]
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Driver behind the `proptest!` macro: runs `case` repeatedly with
/// deterministic per-case seeds derived from the test name.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when a case fails.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = case_count();
    let mut rejected = 0u32;
    for i in 0..cases {
        // FNV-1a over the name, mixed with the case index.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed = seed.wrapping_add(u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("[{name}] case {i}/{cases} (seed {seed:#x}) failed: {msg}")
            }
        }
    }
    assert!(rejected < cases, "[{name}] every case was rejected by prop_assume!");
}

/// `assert!` that reports through the proptest driver.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest driver.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`: {}",
            lhs,
            rhs,
            ::std::format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest driver.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?} != {:?}`", lhs, rhs);
    }};
}

/// Vetoes the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($choice:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($choice)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(::core::stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)+
                    (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(pair in (0u32..100, -5i64..5), flag in any::<bool>()) {
            prop_assert!(pair.0 < 100);
            prop_assert!((-5..5).contains(&pair.1), "got {}", pair.1);
            let _ = flag;
        }

        /// Vec sizes respect both range and constant forms.
        #[test]
        fn vec_sizes(xs in prop::collection::vec(0.0f64..1.0, 1..9),
                     fixed in prop::collection::vec(any::<u8>(), 4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert_eq!(fixed.len(), 4);
        }

        /// prop_oneof mixes Just and ranges; prop_map transforms.
        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u16), 0u16..10],
                         doubled in (0u16..50).prop_map(|v| v * 2)) {
            prop_assert!(x <= 10);
            prop_assert_eq!(doubled % 2, 0);
            if doubled > 200 {
                return Ok(());
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn string_regex_shape() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex");
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }
}
