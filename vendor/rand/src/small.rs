//! xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
//!
//! Implemented from the public-domain reference description
//! (Blackman & Vigna, 2018).

use crate::{RngCore, SeedableRng};

/// A small, fast, high-quality non-cryptographic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; remap it like the real
            // crate does (any fixed nonzero state preserves determinism).
            s = [
                0x9e37_79b9_7f4a_7c15,
                0xbf58_476d_1ce4_e5b9,
                0x94d0_49bb_1331_11eb,
                0x2545_f491_4f6c_dd1d,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference xoshiro256++ outputs for state {1, 2, 3, 4}, per the
        // published test vectors.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        // Would be stuck at zero without the remap.
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
