//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses:
//!
//! - [`SmallRng`](rngs::SmallRng): xoshiro256++ — the same generator the
//!   real `rand 0.8` uses for 64-bit `SmallRng`, so seeded streams keep
//!   their statistical quality.
//! - [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] with the
//!   uniform-float convention of `rand 0.8` (`[0, 1)` from the top 53
//!   bits).
//! - [`SeedableRng::from_seed`] / [`SeedableRng::seed_from_u64`].
//!
//! It is a clean-room implementation of the documented API surface, not
//! copied code; swapping the workspace dependency back to the registry
//! crate only requires re-pointing `[workspace.dependencies]`.

pub mod rngs;

mod small;

/// Core of every generator: a source of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (top half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, like `rand 0.8`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain constant schedule).
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly "at large" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: top 53 bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                if width == 0 {
                    // Covers the full u64 domain (e.g. `0..u64::MAX` is
                    // width MAX which is fine; width 0 means 2^64 values).
                    return rng.next_u64() as $t;
                }
                // Widening-multiply bounded sampling (Lemire, no rejection
                // loop; bias < 2^-64 per draw — irrelevant for simulation).
                let hi = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u);
                let draw =
                    ((u128::from(rng.next_u64()) * u128::from(u64::from(width))) >> 64) as $u;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let width = u64::from((hi as $u).wrapping_sub(lo as $u)).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as $u;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

signed_sample_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let unit = f64::sample_standard(rng);
        lo + (hi - lo) * unit
    }
}

/// User-facing convenience methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&z));
        }
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(17);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
