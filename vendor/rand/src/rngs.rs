//! Generator implementations, mirroring `rand::rngs`.

pub use crate::small::SmallRng;
