//! Hand-rolled item parser over `proc_macro::TokenStream`.
//!
//! Parses exactly the shapes the workspace derives on: non-generic
//! structs and enums with the `#[serde(...)]` attributes listed in
//! `lib.rs`. Anything else fails loudly at compile time so an
//! unsupported attribute can never be silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use crate::{is_group_with, split_top_level_commas};

pub(crate) struct Item {
    pub name: String,
    pub transparent: bool,
    pub kind: ItemKind,
}

pub(crate) enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

pub(crate) struct Field {
    pub name: String,
    pub is_option: bool,
    pub default: DefaultKind,
    pub skip: bool,
    /// `skip_serializing_if = "path"`: the field is omitted from the
    /// serialized object when `path(&self.field)` returns true.
    pub skip_if: Option<String>,
}

pub(crate) enum DefaultKind {
    Required,
    Std,
    Path(String),
}

pub(crate) struct Variant {
    pub name: String,
    pub shape: VariantShape,
}

pub(crate) enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Default)]
struct AttrFlags {
    transparent: bool,
    skip: bool,
    default: Option<DefaultKind>,
    skip_if: Option<String>,
}

/// Consumes `#[...]` attributes at the cursor, folding `#[serde(...)]`
/// contents into flags and skipping everything else (doc comments,
/// `#[must_use]`, remaining derives, ...).
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> AttrFlags {
    let mut flags = AttrFlags::default();
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
            panic!("serde stub derive: malformed attribute");
        };
        assert!(g.delimiter() == Delimiter::Bracket, "serde stub derive: malformed attribute");
        parse_attr_group(g.stream(), &mut flags);
        *i += 2;
    }
    flags
}

fn parse_attr_group(stream: TokenStream, flags: &mut AttrFlags) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // not a serde attribute: ignore
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        panic!("serde stub derive: expected #[serde(...)]");
    };
    for chunk in split_top_level_commas(args.stream().into_iter().collect()) {
        let head = match chunk.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => panic!("serde stub derive: malformed #[serde(...)] argument"),
        };
        match head.as_str() {
            "transparent" => flags.transparent = true,
            "skip" => flags.skip = true,
            "default" => {
                flags.default = Some(match chunk.get(2) {
                    // `default = "path::to::fn"`
                    Some(TokenTree::Literal(lit)) => {
                        let text = lit.to_string();
                        let path = text
                            .strip_prefix('"')
                            .and_then(|t| t.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!("serde stub derive: default expects a string literal")
                            });
                        DefaultKind::Path(path.to_string())
                    }
                    None => DefaultKind::Std,
                    _ => panic!("serde stub derive: malformed #[serde(default = ...)]"),
                });
            }
            "skip_serializing_if" => {
                flags.skip_if = Some(match chunk.get(2) {
                    Some(TokenTree::Literal(lit)) => {
                        let text = lit.to_string();
                        text.strip_prefix('"')
                            .and_then(|t| t.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!(
                                    "serde stub derive: skip_serializing_if expects a string \
                                     literal"
                                )
                            })
                            .to_string()
                    }
                    _ => panic!("serde stub derive: malformed #[serde(skip_serializing_if = ...)]"),
                });
            }
            other => panic!(
                "serde stub derive: unsupported serde attribute `{other}` \
                 (supported: transparent, default, default = \"path\", skip, \
                 skip_serializing_if = \"path\")"
            ),
        }
    }
}

/// Skips `pub` / `pub(...)` at the cursor.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if toks.get(*i).is_some_and(|t| is_group_with(t, Delimiter::Parenthesis)) {
                *i += 1;
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected {what}, found {other:?}"),
    }
}

pub(crate) fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let flags = take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "item name");
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(
                    split_top_level_commas(g.stream().into_iter().collect()).len(),
                )
            }
            _ => panic!("serde stub derive: unit struct `{name}` is not supported"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde stub derive: malformed enum `{name}`"),
        },
        other => panic!("serde stub derive: cannot derive on `{other}` items"),
    };
    Item { name, transparent: flags.transparent, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream.into_iter().collect())
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            let flags = take_attrs(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            let name = expect_ident(&chunk, &mut i, "field name");
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                _ => panic!("serde stub derive: expected `:` after field `{name}`"),
            }
            let is_option = matches!(
                chunk.get(i),
                Some(TokenTree::Ident(id)) if id.to_string() == "Option"
            );
            Field {
                name,
                is_option,
                default: flags.default.unwrap_or(DefaultKind::Required),
                skip: flags.skip,
                skip_if: flags.skip_if,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream.into_iter().collect())
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            let _ = take_attrs(&chunk, &mut i);
            let name = expect_ident(&chunk, &mut i, "variant name");
            let shape = match chunk.get(i) {
                None => VariantShape::Unit,
                // Explicit discriminant (`Variant = 3`): shape stays unit.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(
                        split_top_level_commas(g.stream().into_iter().collect()).len(),
                    )
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                other => panic!("serde stub derive: malformed variant `{name}` (found {other:?})"),
            };
            Variant { name, shape }
        })
        .collect()
}
