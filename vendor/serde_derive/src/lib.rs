//! Syn-free `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stub.
//!
//! The build environment has no registry access, so this derive is
//! implemented directly on `proc_macro::TokenStream`: a small hand-rolled
//! parser extracts the item shape, and the impls are generated as source
//! strings parsed back into a `TokenStream`.
//!
//! Supported surface (everything this workspace uses):
//!
//! - structs with named fields, tuple structs (newtype or wider);
//! - enums with unit, newtype/tuple, and struct variants (externally
//!   tagged, like real serde's default);
//! - `#[serde(transparent)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(skip)]`,
//!   `#[serde(skip_serializing_if = "path")]` (named-struct fields only);
//! - `Option<T>` fields are implicitly optional on input.
//!
//! Generics are intentionally unsupported and rejected with a clear
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{DefaultKind, Field, Item, ItemKind, VariantShape};

/// Derives the stub `serde::Serialize` (renders into `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives the stub `serde::Deserialize` (rebuilds from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive stub generated invalid Deserialize impl")
}

fn ser_expr(place: &str) -> String {
    format!("::serde::Serialize::serialize_value({place})")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            if item.transparent {
                let f = single_serialized_field(fields, name);
                ser_expr(&format!("&self.{}", f.name))
            } else {
                let mut s = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                     = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    let push = format!(
                        "fields.push((::std::string::String::from(\"{}\"), {}));\n",
                        f.name,
                        ser_expr(&format!("&self.{}", f.name))
                    );
                    match &f.skip_if {
                        Some(pred) => {
                            s.push_str(&format!("if !{pred}(&self.{}) {{ {push} }}\n", f.name))
                        }
                        None => s.push_str(&push),
                    }
                }
                s.push_str("::serde::Value::Object(fields)");
                s
            }
        }
        ItemKind::TupleStruct(arity) => match arity {
            0 => "::serde::Value::Null".to_string(),
            // Newtype structs serialize as their inner value (real serde's
            // behavior; `transparent` is equivalent here).
            1 => ser_expr("&self.0"),
            n => {
                let items: Vec<String> = (0..*n).map(|i| ser_expr(&format!("&self.{i}"))).collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        },
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            ser_expr("f0")
                        } else {
                            let items: Vec<String> = binds.iter().map(|b| ser_expr(b)).collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        assert!(
                            fields.iter().all(|f| f.skip_if.is_none()),
                            "serde stub derive: skip_serializing_if is only supported on \
                             named-struct fields (variant {name}::{vn})"
                        );
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{}\"), {})",
                                    f.name,
                                    ser_expr(&f.name)
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

/// The expression used when a field is absent from the input object.
fn missing_expr(f: &Field, owner: &str) -> String {
    match &f.default {
        DefaultKind::Std => "::core::default::Default::default()".to_string(),
        DefaultKind::Path(p) => format!("{p}()"),
        DefaultKind::Required if f.is_option => "::core::option::Option::None".to_string(),
        DefaultKind::Required => format!(
            "return ::core::result::Result::Err(::serde::DeError::new(\
             \"missing field `{}` in {owner}\"))",
            f.name
        ),
    }
}

/// Generates the named-field struct-literal body `f1: ..., f2: ...` that
/// pulls each field out of the object slice binding `obj`.
fn named_fields_body(fields: &[Field], owner: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
            continue;
        }
        s.push_str(&format!(
            "{}: match ::serde::find_field(obj, \"{}\") {{\n\
                 ::core::option::Option::Some(fv) => \
                     ::serde::Deserialize::deserialize_value(fv)?,\n\
                 ::core::option::Option::None => {},\n\
             }},\n",
            f.name,
            f.name,
            missing_expr(f, owner)
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            if item.transparent {
                let f = single_serialized_field(fields, name);
                format!(
                    "::core::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::deserialize_value(v)? }})",
                    f.name
                )
            } else {
                format!(
                    "let obj = match v {{\n\
                         ::serde::Value::Object(m) => m.as_slice(),\n\
                         _ => return ::core::result::Result::Err(\
                             ::serde::DeError::new(\"{name}: expected object\")),\n\
                     }};\n\
                     ::core::result::Result::Ok({name} {{\n{}}})",
                    named_fields_body(fields, name)
                )
            }
        }
        ItemKind::TupleStruct(arity) => match arity {
            0 => format!("::core::result::Result::Ok({name}())"),
            1 => format!(
                "::core::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(v)?))"
            ),
            n => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = match v {{\n\
                         ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                         _ => return ::core::result::Result::Err(\
                             ::serde::DeError::new(\"{name}: expected {n}-element array\")),\n\
                     }};\n\
                     ::core::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
        },
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let arm_body = if *arity == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize_value(inner)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let items = match inner {{\n\
                                     ::serde::Value::Array(a) if a.len() == {arity} => a,\n\
                                     _ => return ::core::result::Result::Err(\
                                         ::serde::DeError::new(\
                                         \"{name}::{vn}: expected {arity}-element array\")),\n\
                                 }};\n\
                                 ::core::result::Result::Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("\"{vn}\" => {arm_body},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let obj = match inner {{\n\
                                     ::serde::Value::Object(m) => m.as_slice(),\n\
                                     _ => return ::core::result::Result::Err(\
                                         ::serde::DeError::new(\
                                         \"{name}::{vn}: expected object payload\")),\n\
                                 }};\n\
                                 ::core::result::Result::Ok({name}::{vn} {{\n{}}})\n\
                             }},\n",
                            named_fields_body(fields, &format!("{name}::{vn}"))
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => ::core::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                         let (k, inner) = &m[0];\n\
                         match k.as_str() {{\n\
                             {payload_arms}\
                             other => ::core::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::core::result::Result::Err(::serde::DeError::new(\
                         \"{name}: expected externally tagged variant\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn single_serialized_field<'a>(fields: &'a [Field], name: &str) -> &'a Field {
    let mut live = fields.iter().filter(|f| !f.skip);
    let first = live
        .next()
        .unwrap_or_else(|| panic!("#[serde(transparent)] on {name}: no serializable field"));
    assert!(
        live.next().is_none(),
        "#[serde(transparent)] on {name}: more than one serializable field"
    );
    first
}

/// Splits a delimited group's token stream on top-level commas (tracking
/// `<`/`>` nesting so generic arguments stay attached to their chunk).
pub(crate) fn split_top_level_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

pub(crate) fn is_group_with(tt: &TokenTree, delim: Delimiter) -> bool {
    matches!(tt, TokenTree::Group(g) if g.delimiter() == delim)
}
