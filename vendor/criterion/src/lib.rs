//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface the micro-benchmarks use (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`, `criterion_group!`, `criterion_main!`)
//! with a simple wall-clock measurement loop: warm up briefly, then time
//! a fixed batch of iterations and report mean ns/iter (plus derived
//! element throughput when declared). No statistics, plots, or saved
//! baselines — just honest numbers on stdout.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this stub's timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Explicit batch size.
    NumBatches(u64),
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    elapsed_ns_per_iter: f64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher { elapsed_ns_per_iter: f64::NAN, target }
    }

    /// Times `routine` over enough iterations to fill the target window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that runs for
        // roughly the target window.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns_per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn report(id: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let time = if ns_per_iter >= 1e9 {
        format!("{:.3} s", ns_per_iter / 1e9)
    } else if ns_per_iter >= 1e6 {
        format!("{:.3} ms", ns_per_iter / 1e6)
    } else if ns_per_iter >= 1e3 {
        format!("{:.3} µs", ns_per_iter / 1e3)
    } else {
        format!("{ns_per_iter:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns_per_iter * 1e3 / 1.048_576)
        }
        None => String::new(),
    };
    println!("{id:<48} {time:>12}/iter{rate}");
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Keep stub runs quick; this is a smoke harness, not a lab.
            target: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b);
        report(&id, b.elapsed_ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.criterion.target);
        f(&mut b);
        report(&id, b.elapsed_ns_per_iter, self.throughput);
        self
    }

    /// Ends the group (a no-op in the stub, kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion { target: Duration::from_millis(5) }
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_function("vec_sum", |b| {
            b.iter_batched(
                || (0..10u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }
}
