//! Minimal offline stand-in for `serde` (+ the data model shared with the
//! vendored `serde_json`).
//!
//! No network access to crates.io is available in the build environment,
//! so the workspace vendors a tiny serde look-alike. Instead of serde's
//! visitor architecture, both traits go through an owned JSON-like
//! [`Value`]:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] reconstructs `Self` from a [`Value`].
//!
//! The `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` stub) cover the attribute surface this workspace uses:
//! `#[serde(transparent)]`, `#[serde(default)]`,
//! `#[serde(default = "path")]` and `#[serde(skip)]`, plus externally
//! tagged enums in all three variant shapes (unit / newtype / struct).
//! Object fields keep declaration order, so emitted JSON is stable.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::{find_field, Number, Value};

use std::fmt;

/// Error type for deserialization (and JSON parsing in `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-like data model.
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the JSON-like data model.
    ///
    /// # Errors
    ///
    /// Returns an error when `v` has the wrong shape (missing field,
    /// wrong type, unknown enum variant, out-of-range number).
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}
