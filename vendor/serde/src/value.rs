//! The owned JSON-like data model shared by the vendored `serde` and
//! `serde_json` stubs.

use crate::{DeError, Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point.
    F64(f64),
}

impl Number {
    /// Numeric value as `f64` (lossy for huge integers, like serde_json).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// Numeric value as `u64`, if representable exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Numeric value as `i64`, if representable exactly.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(n as i64),
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        // Numeric equality across representations: 240 == 240.0.
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An owned JSON value.
///
/// Objects are ordered `(key, value)` pairs so serialized structs keep
/// their field declaration order (stable, diffable artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

/// Looks up a field in an object's pair list (helper for derived code).
#[must_use]
pub fn find_field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Value {
    /// The member `key`, when `self` is an object holding it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => find_field(m, key),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, when it is an exactly-representable number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, when it is an exactly-representable number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`, when it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value's object pairs, when it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Member access; missing members (or non-objects) index to `Null`,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! eq_via_number {
    ($($t:ty => $variant:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::cast_lossless)]
                match self {
                    Value::Number(n) => *n == Number::$variant(*other as _),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_via_number!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
               i8 => I64, i16 => I64, i32 => I64, i64 => I64,
               f32 => F64, f64 => F64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (same conventions as the vendored
    /// `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

/// Writes a JSON string literal with the escapes the grammar requires.
pub(crate) fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{8}' => out.write_str("\\b")?,
            '\u{c}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Writes a number the way `serde_json` does: integers bare, floats via
/// the shortest round-trip form (Rust's `{:?}`), non-finite as `null`.
pub(crate) fn write_number(n: &Number, out: &mut impl fmt::Write) -> fmt::Result {
    match *n {
        Number::U64(v) => write!(out, "{v}"),
        Number::I64(v) => write!(out, "{v}"),
        Number::F64(v) if v.is_finite() => write!(out, "{v:?}"),
        Number::F64(_) => out.write_str("null"),
    }
}

fn write_compact(v: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_compact(item, out)?;
            }
            out.write_char(']')
        }
        Value::Object(pairs) => {
            out.write_char('{')?;
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(k, out)?;
                out.write_char(':')?;
                write_compact(item, out)?;
            }
            out.write_char('}')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_equality_crosses_representations() {
        assert_eq!(Value::Number(Number::U64(240)), 240.0f64);
        assert_eq!(Value::Number(Number::F64(240.0)), 240u64);
        assert_eq!(Value::Number(Number::I64(-3)), -3i32);
        assert_ne!(Value::Number(Number::F64(240.5)), 240u64);
    }

    #[test]
    fn indexing_missing_members_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"], true);
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("s".into(), Value::String("a\"b".into())),
            ("n".into(), Value::Number(Number::F64(0.5))),
            ("l".into(), Value::Array(vec![Value::Null, Value::Bool(false)])),
        ]);
        assert_eq!(v.to_string(), r#"{"s":"a\"b","n":0.5,"l":[null,false]}"#);
    }
}
