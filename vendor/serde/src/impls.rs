//! `Serialize`/`Deserialize` implementations for the std types the
//! workspace serializes.

use crate::{DeError, Deserialize, Number, Serialize, Value};

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}

impl Deserialize for usize {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_u64().ok_or_else(|| DeError::new("expected usize"))?;
        usize::try_from(n).map_err(|_| DeError::new("number out of range for usize"))
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        (*self as i64).serialize_value()
    }
}

impl Deserialize for isize {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_i64().ok_or_else(|| DeError::new("expected isize"))?;
        isize::try_from(n).map_err(|_| DeError::new("number out of range for isize"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|n| n as f32).ok_or_else(|| DeError::new("expected f32"))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident : $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
                if items.len() != $len {
                    return Err(DeError::new(concat!("expected ", $len, "-tuple")));
                }
                Ok(($($t::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}
