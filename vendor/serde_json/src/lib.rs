//! Minimal offline stand-in for `serde_json`, built on the vendored
//! `serde` stub's [`Value`] data model.
//!
//! Provides the call surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], the [`json!`]
//! macro, and [`Value`] with `Index`/`PartialEq` ergonomics (those live
//! on the re-exported `serde::Value`).
//!
//! Floats print via Rust's shortest-round-trip formatting, so emitted
//! artifacts parse back bit-identically (the reason the real dependency
//! enabled the `float_roundtrip` feature).

mod parse;

pub use parse::from_str_value;
pub use serde::{DeError as Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes any [`Serialize`] type into a [`Value`].
///
/// # Errors
///
/// Infallible in this stub (kept as `Result` for API compatibility).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Deserializes a typed value out of a [`Value`].
///
/// # Errors
///
/// Returns an error when the value's shape doesn't match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize_value(value)
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible in this stub (kept as `Result` for API compatibility).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this stub (kept as `Result` for API compatibility).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize_value(&parse::from_str_value(text)?)
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    use std::fmt::Write;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&"  ".repeat(indent + 1));
                let _ = write!(out, "{}: ", Value::String(k.clone()));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        // Empty containers and scalars print compactly.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax; arbitrary expressions are
/// converted via [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elems).unwrap() ),* ])
    };
    ({ $($content:tt)* }) => {
        $crate::json_object_munch!([] $($content)*)
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

/// Internal: munches `"key": value` pairs (values may be arbitrary
/// multi-token expressions ending at a top-level comma).
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_munch {
    ([$($pairs:expr),*]) => {
        $crate::Value::Object(::std::vec![$($pairs),*])
    };
    ([$($pairs:expr),*] $key:literal : $($rest:tt)*) => {
        $crate::json_value_munch!([$($pairs),*] $key [] $($rest)*)
    };
}

/// Internal: accumulates one value's tokens until a top-level comma.
#[macro_export]
#[doc(hidden)]
macro_rules! json_value_munch {
    ([$($pairs:expr),*] $key:literal [$($val:tt)+] , $($rest:tt)*) => {
        $crate::json_object_munch!(
            [$($pairs,)* ($key.to_string(), $crate::json!($($val)+))] $($rest)*
        )
    };
    ([$($pairs:expr),*] $key:literal [$($val:tt)+]) => {
        $crate::json_object_munch!(
            [$($pairs,)* ($key.to_string(), $crate::json!($($val)+))]
        )
    };
    ([$($pairs:expr),*] $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_value_munch!([$($pairs),*] $key [$($val)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let label = "x";
        let xs = [1u64, 2, 3];
        let v = json!({
            "label": label,
            "scaled": 2.0 * 21.0,
            "xs": xs.iter().map(|x| x * 2).collect::<Vec<_>>(),
            "nested": { "flag": true, "nothing": null },
            "triple": [1, 2.5, "three"],
        });
        assert_eq!(v["label"], "x");
        assert_eq!(v["scaled"], 42.0);
        assert_eq!(v["xs"][2], 6u64);
        assert_eq!(v["nested"]["flag"], true);
        assert!(v["nested"]["nothing"].is_null());
        assert_eq!(v["triple"][2], "three");
    }

    #[test]
    fn pretty_round_trips() {
        let v = json!({ "a": [1, 2], "b": { "c": 0.1 }, "empty": [] });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert!(text.contains("\n  \"a\": ["));
    }

    #[test]
    fn compact_round_trips_floats_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 2.5e17, 240.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }
}
