//! Recursive-descent JSON parser producing [`Value`]s.

use serde::{DeError, Number, Value};

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error describing the first syntax problem encountered.
pub fn from_str_value(text: &str) -> Result<Value, DeError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(pos: usize, msg: &str) -> DeError {
    DeError::new(format!("JSON parse error at byte {pos}: {msg}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), DeError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(err(*pos, &format!("unexpected byte `{}`", b as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, DeError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key in object"));
        }
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, DeError> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired surrogate"));
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so byte
                // boundaries are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Parses the 4 hex digits of a `\u` escape; leaves `pos` on the last one.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, DeError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[start..end])
        .ok()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
    *pos = end - 1;
    Ok(hex)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U64(n)));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I64(n)));
        }
    }
    text.parse::<f64>()
        .map(|n| Value::Number(Number::F64(n)))
        .map_err(|_| err(start, &format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str_value("null").unwrap(), Value::Null);
        assert_eq!(from_str_value("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str_value("  42 ").unwrap(), 42u64);
        assert_eq!(from_str_value("-7").unwrap(), -7i64);
        assert_eq!(from_str_value("2.5e3").unwrap(), 2500.0f64);
        assert_eq!(from_str_value(r#""a\nbA""#).unwrap(), "a\nbA");
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str_value(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"], "d");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str_value("").is_err());
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value("nul").is_err());
    }
}
