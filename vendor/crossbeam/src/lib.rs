//! Minimal offline stand-in for `crossbeam`: the `scope` API, backed by
//! `std::thread::scope` (available since Rust 1.63).
//!
//! Semantics match the workspace's usage: `crossbeam::scope(|s| { ... })`
//! joins every spawned thread before returning and yields
//! `thread::Result<R>`. One divergence from the real crate: if a spawned
//! thread panics, `std::thread::scope` resumes the panic on the caller
//! instead of packaging it into `Err` — the process still fails loudly,
//! which is what the sweep driver's `.expect(...)` relied on.

use std::thread;

/// A handle for spawning threads scoped to the closure's lifetime.
///
/// Mirrors `crossbeam::thread::Scope`: spawned closures receive a
/// `&Scope` argument so they can spawn further siblings.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; it is joined before `scope` returns.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Runs `f` with a scope handle, joining all spawned threads on exit.
///
/// # Errors
///
/// Kept as `thread::Result` for API compatibility with the real crate;
/// this implementation returns `Ok` or propagates child panics directly.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            "done"
        })
        .expect("no panics");
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
