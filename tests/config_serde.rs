//! Configuration and report (de)serialization: a downstream user drives
//! sweeps from JSON files, so every config knob must round-trip.

use geodns_core::{
    Algorithm, ClientDistribution, EstimatorKind, MinTtlBehavior, PolicyKind, ServerSpec,
    SimConfig, TierSpec, TtlKind,
};
use geodns_server::HeterogeneityLevel;

#[test]
fn default_config_round_trips() {
    let cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn exotic_config_round_trips() {
    let mut cfg = SimConfig::paper_default(
        Algorithm::new(
            PolicyKind::Mrl,
            TtlKind::Adaptive { tiers: TierSpec::Classes(3), server_scaled: true },
        ),
        HeterogeneityLevel::H65,
    );
    cfg.servers = ServerSpec::Relative(vec![1.0, 0.9, 0.42]);
    cfg.estimator = EstimatorKind::Measured { collect_interval_s: 16.0, ema_alpha: 0.5 };
    cfg.ns_behavior = MinTtlBehavior::DefaultOnSmall { min_ttl_s: 30.0, default_ttl_s: 600.0 };
    cfg.workload.distribution = ClientDistribution::Explicit(vec![25; 20]);
    cfg.workload.rate_error = 0.2;
    cfg.class_threshold = Some(0.07);
    cfg.normalize_ttl = false;

    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn config_is_human_editable_json() {
    let cfg = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H20);
    let json = serde_json::to_value(&cfg).unwrap();
    // Spot-check the field names a user would edit.
    assert_eq!(json["ttl_const_s"], 240.0);
    assert_eq!(json["util_interval_s"], 8.0);
    assert_eq!(json["workload"]["n_clients"], 500);
    assert_eq!(json["alarm_threshold"], 0.9);
}

#[test]
fn invalid_json_fails_cleanly() {
    let err = serde_json::from_str::<SimConfig>("{\"not\": \"a config\"}");
    assert!(err.is_err());
}

#[test]
fn algorithm_names_survive_serde() {
    for algorithm in
        [Algorithm::rr(), Algorithm::prr2_ttl(2), Algorithm::drr2_ttl_s_k(), Algorithm::dal()]
    {
        let json = serde_json::to_string(&algorithm).unwrap();
        let back: Algorithm = serde_json::from_str(&json).unwrap();
        assert_eq!(algorithm, back);
        assert_eq!(algorithm.name(), back.name());
    }
}
