//! Bit-level reproducibility: the property that makes a simulation study
//! publishable. Same seed → identical report; the master seed, not global
//! state, is the only source of randomness.

use geodns_core::{run_all, run_simulation, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    cfg.duration_s = 600.0;
    cfg.warmup_s = 120.0;
    cfg.seed = seed;
    cfg
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = run_simulation(&config(12345)).unwrap();
    let b = run_simulation(&config(12345)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_sample_paths() {
    let a = run_simulation(&config(1)).unwrap();
    let b = run_simulation(&config(2)).unwrap();
    assert_ne!(a.max_util_samples, b.max_util_samples);
    // … but statistically similar outcomes (same model!).
    assert!((a.p98() - b.p98()).abs() < 0.35);
}

#[test]
fn parallel_execution_does_not_perturb_results() {
    // run_all spreads runs over threads; thread scheduling must not leak
    // into the simulation.
    let configs = vec![config(10), config(11), config(12), config(13)];
    let parallel = run_all(&configs).unwrap();
    for (cfg, from_parallel) in configs.iter().zip(&parallel) {
        let serial = run_simulation(cfg).unwrap();
        assert_eq!(&serial, from_parallel);
    }
}

#[test]
fn algorithm_choice_does_not_consume_shared_randomness() {
    // Two different algorithms on the same seed must see the same workload:
    // the session-level hit counts should match closely (the closed loop
    // couples timing to service, so only the coarse totals are comparable).
    let mut rr = config(99);
    rr.algorithm = Algorithm::rr();
    let mut adaptive = config(99);
    adaptive.algorithm = Algorithm::drr2_ttl_s_k();
    let a = run_simulation(&rr).unwrap();
    let b = run_simulation(&adaptive).unwrap();
    let ratio = a.hits_completed as f64 / b.hits_completed as f64;
    assert!((0.9..1.1).contains(&ratio), "hit totals diverged: {ratio}");
}
