//! Bit-level reproducibility: the property that makes a simulation study
//! publishable. Same seed → identical report; the master seed, not global
//! state, is the only source of randomness.

use geodns_core::{run_all, run_simulation, Algorithm, QueueKind, SimConfig};
use geodns_server::HeterogeneityLevel;

fn config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    cfg.duration_s = 600.0;
    cfg.warmup_s = 120.0;
    cfg.seed = seed;
    cfg
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = run_simulation(&config(12345)).unwrap();
    let b = run_simulation(&config(12345)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_sample_paths() {
    let a = run_simulation(&config(1)).unwrap();
    let b = run_simulation(&config(2)).unwrap();
    assert_ne!(a.max_util_samples, b.max_util_samples);
    // … but statistically similar outcomes (same model!).
    assert!((a.p98() - b.p98()).abs() < 0.35);
}

#[test]
fn parallel_execution_does_not_perturb_results() {
    // run_all spreads runs over threads; thread scheduling must not leak
    // into the simulation.
    let configs = vec![config(10), config(11), config(12), config(13)];
    let parallel = run_all(&configs).unwrap();
    for (cfg, from_parallel) in configs.iter().zip(&parallel) {
        let serial = run_simulation(cfg).unwrap();
        assert_eq!(&serial, from_parallel);
    }
}

#[test]
fn calendar_queue_matches_heap_oracle_bit_for_bit() {
    // The calendar queue replaced the binary heap as the future event list.
    // Both implement the same `(time, seq)` total order, so the exact same
    // simulation must fall out — byte-identical reports, not just equal
    // statistics. Three seeds exercise three different event interleavings
    // (and with them different bucket-resize histories).
    for seed in [1_u64, 0xBEEF, 987_654_321] {
        let mut cal = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
        cal.seed = seed;
        cal.queue = QueueKind::Calendar;
        let mut heap = cal.clone();
        heap.queue = QueueKind::Heap;

        let from_calendar = run_simulation(&cal).unwrap();
        let from_heap = run_simulation(&heap).unwrap();
        assert_eq!(from_calendar, from_heap, "reports diverged on seed {seed}");

        // Byte-identical, not merely `PartialEq`-identical: serialize both.
        let cal_bytes = serde_json::to_string(&from_calendar).unwrap();
        let heap_bytes = serde_json::to_string(&from_heap).unwrap();
        assert_eq!(cal_bytes, heap_bytes, "serialized reports diverged on seed {seed}");
    }
}

#[test]
fn algorithm_choice_does_not_consume_shared_randomness() {
    // Two different algorithms on the same seed must see the same workload:
    // the session-level hit counts should match closely (the closed loop
    // couples timing to service, so only the coarse totals are comparable).
    let mut rr = config(99);
    rr.algorithm = Algorithm::rr();
    let mut adaptive = config(99);
    adaptive.algorithm = Algorithm::drr2_ttl_s_k();
    let a = run_simulation(&rr).unwrap();
    let b = run_simulation(&adaptive).unwrap();
    let ratio = a.hits_completed as f64 / b.hits_completed as f64;
    assert!((0.9..1.1).contains(&ratio), "hit totals diverged: {ratio}");
}
