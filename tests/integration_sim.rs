//! Cross-crate integration tests: full simulation runs asserting the
//! physical invariants of the model.

use geodns_core::{run_simulation, Algorithm, EstimatorKind, SimConfig, SimReport};
use geodns_server::HeterogeneityLevel;

fn run_short(algorithm: Algorithm, level: HeterogeneityLevel, seed: u64) -> SimReport {
    let mut cfg = SimConfig::paper_default(algorithm, level);
    cfg.duration_s = 800.0;
    cfg.warmup_s = 200.0;
    cfg.seed = seed;
    run_simulation(&cfg).expect("valid config")
}

#[test]
fn utilization_samples_are_bounded_and_plentiful() {
    let r = run_short(Algorithm::rr(), HeterogeneityLevel::H35, 1);
    // 800 s of measurement at an 8 s interval → ≈100 samples.
    assert!(r.max_util_samples.len() >= 95, "{} samples", r.max_util_samples.len());
    assert!(r.max_util_samples.iter().all(|&u| (0.0..=1.0).contains(&u)));
    assert!(r.max_util_samples.windows(2).all(|w| w[0] <= w[1]), "sorted");
}

#[test]
fn offered_load_sits_near_the_design_point() {
    // The paper designs for 2/3 average utilization; the closed loop eats a
    // bit of that through response times.
    for algorithm in [Algorithm::rr(), Algorithm::drr2_ttl_s_k()] {
        let r = run_short(algorithm, HeterogeneityLevel::H20, 2);
        let mean = r.mean_util();
        assert!((0.45..0.8).contains(&mean), "{}: mean util {mean}", r.algorithm);
    }
}

#[test]
fn hit_throughput_matches_offered_load() {
    let r = run_short(Algorithm::prr2_ttl_k(), HeterogeneityLevel::H20, 3);
    // ≈333 hits/s offered over 800 s ≈ 266k hits; allow generous slack for
    // the closed-loop slowdown and warm-up edge effects.
    let rate = r.hits_completed as f64 / r.measured_span_s;
    assert!((250.0..400.0).contains(&rate), "hit completion rate {rate}");
}

#[test]
fn dns_sees_only_a_small_fraction_of_requests() {
    let r = run_short(Algorithm::rr(), HeterogeneityLevel::H20, 4);
    assert!(r.dns_control_fraction > 0.005, "some sessions must be DNS-routed");
    assert!(
        r.dns_control_fraction < 0.25,
        "address caching must hide most requests, got {}",
        r.dns_control_fraction
    );
    // Address-request rate should be in the vicinity of K/TTL = 20/240.
    assert!(
        (0.02..0.25).contains(&r.address_request_rate),
        "address rate {}",
        r.address_request_rate
    );
}

#[test]
fn every_server_receives_work() {
    let r = run_short(Algorithm::prr_ttl1(), HeterogeneityLevel::H65, 5);
    for (i, &u) in r.per_server_mean_util.iter().enumerate() {
        assert!(u > 0.05, "server {i} looks idle: mean util {u}");
    }
}

#[test]
fn page_responses_are_sane() {
    let r = run_short(Algorithm::drr2_ttl_s(2), HeterogeneityLevel::H35, 6);
    assert!(r.page_response_mean_s > 0.0);
    assert!(r.page_response_p95_s >= r.page_response_mean_s);
    // 10 hits/page at ≥49 hits/s per server: well under 10 s unless the
    // model leaks queueing.
    assert!(r.page_response_p95_s < 10.0, "p95 {}", r.page_response_p95_s);
}

#[test]
fn measured_estimator_tracks_reality() {
    // With live measurement the adaptive schemes should behave comparably
    // to the oracle (the workload is stationary).
    let mut oracle_cfg = SimConfig::paper_default(Algorithm::prr2_ttl_k(), HeterogeneityLevel::H35);
    oracle_cfg.duration_s = 1500.0;
    oracle_cfg.warmup_s = 600.0; // long enough for the EMA to converge
    oracle_cfg.seed = 7;
    let mut measured_cfg = oracle_cfg.clone();
    measured_cfg.estimator = EstimatorKind::measured_default();

    let oracle = run_simulation(&oracle_cfg).unwrap();
    let measured = run_simulation(&measured_cfg).unwrap();
    assert!(
        (oracle.p98() - measured.p98()).abs() < 0.25,
        "oracle {} vs measured {}",
        oracle.p98(),
        measured.p98()
    );
}

#[test]
fn alarms_fire_under_pressure_and_not_in_paradise() {
    // Overloaded site: alarms must fire.
    let mut hot = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H65);
    hot.duration_s = 800.0;
    hot.warmup_s = 200.0;
    hot.seed = 8;
    let r = run_simulation(&hot).unwrap();
    assert!(r.alarms > 0, "a 65%-heterogeneous site under RR must alarm");

    // Overprovisioned site: no alarms.
    let mut cool = hot.clone();
    cool.total_capacity = 2000.0;
    let r = run_simulation(&cool).unwrap();
    assert_eq!(r.alarms, 0, "a 4x-overprovisioned site should never alarm");
}

#[test]
fn report_serializes_to_json() {
    let r = run_short(Algorithm::rr(), HeterogeneityLevel::H0, 9);
    let json = serde_json::to_string(&r).expect("serialize");
    let back: SimReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(r, back);
}
