//! Allocation accounting for the DNS wire serving path.
//!
//! `geodnsd`'s steady state is `AuthoritativeServer::handle_into` on a
//! reusable buffer: match the query bytes, ask the scheduler, write the
//! answer. These tests pin that path to exactly zero allocations once
//! warm — with and without the per-worker `ObsCounters` probe attached —
//! using the same counting global allocator as `tests/alloc_free.rs`
//! (this file lives in the `geodns-wire` crate: the root test directory's
//! other tests belong to `geodns-core`, which cannot depend on wire).

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use geodns_core::ObsCounters;
use geodns_wire::mmsg::{self, RecvBatch, SendBatch};
use geodns_wire::uring::{self, UringIo};
use geodns_wire::{AuthoritativeServer, Message, Question};

/// Counts every `alloc`/`realloc` call (deallocations are free to ignore:
/// the property under test is "no new heap traffic per query").
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests that read it must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// The allocation delta across `f`, minimized over a few attempts: the
/// counter is process-global, so the libtest harness occasionally donates a
/// stray allocation from another thread mid-window. A real per-query
/// allocation shows up ≥10k strong in *every* attempt and cannot hide
/// behind a retry; one-off harness noise can.
fn allocations_during(mut f: impl FnMut()) -> u64 {
    let mut fewest = u64::MAX;
    for _ in 0..3 {
        let before = alloc_calls();
        f();
        fewest = fewest.min(alloc_calls() - before);
        if fewest == 0 {
            break;
        }
    }
    fewest
}

#[test]
fn wire_serving_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    let mut server = AuthoritativeServer::example();
    let query = Message::query(0x5151, Question::a("www.example.org")).to_bytes();
    let mut out = Vec::new();

    // Warm-up: grow `out` to the answer size and settle any lazy state.
    let mut now = 0.0_f64;
    for i in 0..512u32 {
        let src = [10, (i % 4) as u8, 1, 1];
        server.handle_into(&query, src, now, &mut out).expect("well-formed query");
        now += 0.01;
    }

    let grew = allocations_during(|| {
        for i in 0..10_000u32 {
            let src = [10, (i % 4) as u8, 1, 1];
            server.handle_into(&query, src, now, &mut out).expect("well-formed query");
            now += 0.01;
        }
    });
    assert_eq!(grew, 0, "{grew} allocations across 10k warm handle_into calls");
    assert!(!out.is_empty(), "responses really were written");
}

#[test]
fn probed_wire_serving_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    // The daemon attaches per-worker `ObsCounters`; the probe must not
    // reintroduce heap traffic.
    let mut server = AuthoritativeServer::example();
    let query = Message::query(0x5152, Question::a("WWW.Example.ORG")).to_bytes();
    let mut out = Vec::new();
    let mut counters = ObsCounters::new();

    let mut now = 0.0_f64;
    for i in 0..512u32 {
        let src = [127, 0, (i % 4) as u8, 1];
        server
            .handle_into_probed(&query, src, now, &mut out, &mut counters)
            .expect("well-formed query");
        now += 0.01;
    }

    let grew = allocations_during(|| {
        for i in 0..10_000u32 {
            let src = [127, 0, (i % 4) as u8, 1];
            server
                .handle_into_probed(&query, src, now, &mut out, &mut counters)
                .expect("well-formed query");
            now += 0.01;
        }
    });
    assert_eq!(grew, 0, "{grew} allocations across 10k warm probed handle_into calls");
    assert!(counters.snapshot(0, 0).dns_decisions >= 10_000, "the counters really did record");
}

#[test]
fn batched_socket_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    // The batched daemon's steady state, run single-threaded over a real
    // loopback socket pair: stage a burst into a `SendBatch`, ship it
    // with one `send_batch`, drain it with `recv_batch`, serve each
    // datagram into the reply arena, flush, and receive the answers.
    // All four arenas are preallocated; once warm (first batch sizes the
    // per-slot buffers) a full round must cost zero heap traffic.
    let daemon_sock = UdpSocket::bind("127.0.0.1:0").expect("daemon socket");
    let client_sock = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    daemon_sock.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
    client_sock.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
    let daemon_addr = daemon_sock.local_addr().expect("daemon addr");

    let mut server = AuthoritativeServer::example();
    let mut counters = ObsCounters::new();
    let query = Message::query(0x6161, Question::a("www.example.org")).to_bytes();

    const BATCH: usize = 16;
    let mut query_tx = SendBatch::new(BATCH, 512);
    let mut daemon_rx = RecvBatch::new(BATCH, 512);
    let mut reply_tx = SendBatch::new(BATCH, 512);
    let mut client_rx = RecvBatch::new(BATCH, 512);

    let mut now = 0.0_f64;
    let mut round = |query_tx: &mut SendBatch,
                     daemon_rx: &mut RecvBatch,
                     reply_tx: &mut SendBatch,
                     client_rx: &mut RecvBatch,
                     now: &mut f64| {
        for _ in 0..BATCH {
            query_tx.buffer().extend_from_slice(&query);
            query_tx.commit(daemon_addr);
        }
        let out = mmsg::send_batch(&client_sock, query_tx);
        assert_eq!(out.sent, BATCH as u64, "burst fully sent");
        let mut served = 0;
        while served < BATCH {
            let n = mmsg::recv_batch(&daemon_sock, daemon_rx).expect("queries arrive");
            for i in 0..n {
                let (datagram, peer) = daemon_rx.datagram(i);
                server
                    .handle_into_probed(
                        datagram,
                        [10, 1, 1, 1],
                        *now,
                        reply_tx.buffer(),
                        &mut counters,
                    )
                    .expect("well-formed query");
                reply_tx.commit(peer);
            }
            let back = mmsg::send_batch(&daemon_sock, reply_tx);
            assert_eq!(back.errors, 0, "replies fully sent");
            served += n;
        }
        let mut answered = 0;
        while answered < BATCH {
            answered += mmsg::recv_batch(&client_sock, client_rx).expect("answers arrive");
        }
        *now += 0.01;
    };

    // Warm-up sizes every arena slot and settles lazy scheduler state.
    for _ in 0..8 {
        round(&mut query_tx, &mut daemon_rx, &mut reply_tx, &mut client_rx, &mut now);
    }

    let grew = allocations_during(|| {
        for _ in 0..64 {
            round(&mut query_tx, &mut daemon_rx, &mut reply_tx, &mut client_rx, &mut now);
        }
    });
    assert_eq!(grew, 0, "{grew} allocations across 64 warm batched rounds (1024 datagrams)");
    assert!(counters.snapshot(0, 0).dns_decisions >= 1024, "the batched rounds really served");
}

#[test]
fn uring_socket_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();
    if !uring::supported() {
        eprintln!("skipping: io_uring unavailable on this kernel");
        return;
    }

    // The io_uring daemon's steady state: a burst arrives as completions
    // harvested by one `io_uring_enter`, each datagram is served into a
    // preallocated transmit slot, and `flush` stages the send SQEs and
    // receive re-arms without a syscall. The ring's arenas (receive
    // buffers, msghdr/iovec/sockaddr tables, 2×batch transmit slots) are
    // all built in `UringIo::new`; once the transmit slots are sized by
    // the warm-up, a full round must cost zero heap traffic.
    let daemon_sock = UdpSocket::bind("127.0.0.1:0").expect("daemon socket");
    let client_sock = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    client_sock.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
    let daemon_addr = daemon_sock.local_addr().expect("daemon addr");

    const BATCH: usize = 16;
    let mut io = UringIo::new(daemon_sock, BATCH, 512, Duration::from_secs(2))
        .map_err(|(_, e)| e)
        .expect("probe said the ring would build");

    let mut server = AuthoritativeServer::example();
    let mut counters = ObsCounters::new();
    let query = Message::query(0x7171, Question::a("www.example.org")).to_bytes();
    let mut query_tx = SendBatch::new(BATCH, 512);
    let mut client_rx = RecvBatch::new(BATCH, 512);

    let mut now = 0.0_f64;
    let mut round =
        |io: &mut UringIo, query_tx: &mut SendBatch, client_rx: &mut RecvBatch, now: &mut f64| {
            for _ in 0..BATCH {
                query_tx.buffer().extend_from_slice(&query);
                query_tx.commit(daemon_addr);
            }
            let out = mmsg::send_batch(&client_sock, query_tx);
            assert_eq!(out.sent, BATCH as u64, "burst fully sent");
            let mut served = 0;
            while served < BATCH {
                let n = io.recv().expect("queries arrive");
                for i in 0..n {
                    let (datagram, peer, buf) = io.parts(i).expect("a free transmit slot");
                    server
                        .handle_into_probed(datagram, [10, 1, 1, 1], *now, buf, &mut counters)
                        .expect("well-formed query");
                    io.commit(peer);
                }
                let back = io.flush();
                assert_eq!(back.errors, 0, "replies staged cleanly");
                served += n;
            }
            // `flush` stages without a syscall; in the daemon the *next*
            // `recv`'s enter submits the sends, but this round is lock-step
            // with the client, so drain explicitly.
            let tail = io.finish();
            assert_eq!(tail.errors, 0, "replies fully sent");
            let mut answered = 0;
            while answered < BATCH {
                answered += mmsg::recv_batch(&client_sock, client_rx).expect("answers arrive");
            }
            *now += 0.01;
        };

    // Warm-up: size all 2×batch transmit slots and settle lazy state.
    for _ in 0..8 {
        round(&mut io, &mut query_tx, &mut client_rx, &mut now);
    }

    let grew = allocations_during(|| {
        for _ in 0..64 {
            round(&mut io, &mut query_tx, &mut client_rx, &mut now);
        }
    });
    assert_eq!(grew, 0, "{grew} allocations across 64 warm uring rounds (1024 datagrams)");
    let tail = io.finish();
    assert_eq!(tail.errors, 0, "no transmit errors surfaced at drain");
    assert!(counters.snapshot(0, 0).dns_decisions >= 1024, "the uring rounds really served");
}
