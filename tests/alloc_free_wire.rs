//! Allocation accounting for the DNS wire serving path.
//!
//! `geodnsd`'s steady state is `AuthoritativeServer::handle_into` on a
//! reusable buffer: match the query bytes, ask the scheduler, write the
//! answer. These tests pin that path to exactly zero allocations once
//! warm — with and without the per-worker `ObsCounters` probe attached —
//! using the same counting global allocator as `tests/alloc_free.rs`
//! (this file lives in the `geodns-wire` crate: the root test directory's
//! other tests belong to `geodns-core`, which cannot depend on wire).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use geodns_core::ObsCounters;
use geodns_wire::{AuthoritativeServer, Message, Question};

/// Counts every `alloc`/`realloc` call (deallocations are free to ignore:
/// the property under test is "no new heap traffic per query").
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests that read it must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// The allocation delta across `f`, minimized over a few attempts: the
/// counter is process-global, so the libtest harness occasionally donates a
/// stray allocation from another thread mid-window. A real per-query
/// allocation shows up ≥10k strong in *every* attempt and cannot hide
/// behind a retry; one-off harness noise can.
fn allocations_during(mut f: impl FnMut()) -> u64 {
    let mut fewest = u64::MAX;
    for _ in 0..3 {
        let before = alloc_calls();
        f();
        fewest = fewest.min(alloc_calls() - before);
        if fewest == 0 {
            break;
        }
    }
    fewest
}

#[test]
fn wire_serving_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    let mut server = AuthoritativeServer::example();
    let query = Message::query(0x5151, Question::a("www.example.org")).to_bytes();
    let mut out = Vec::new();

    // Warm-up: grow `out` to the answer size and settle any lazy state.
    let mut now = 0.0_f64;
    for i in 0..512u32 {
        let src = [10, (i % 4) as u8, 1, 1];
        server.handle_into(&query, src, now, &mut out).expect("well-formed query");
        now += 0.01;
    }

    let grew = allocations_during(|| {
        for i in 0..10_000u32 {
            let src = [10, (i % 4) as u8, 1, 1];
            server.handle_into(&query, src, now, &mut out).expect("well-formed query");
            now += 0.01;
        }
    });
    assert_eq!(grew, 0, "{grew} allocations across 10k warm handle_into calls");
    assert!(!out.is_empty(), "responses really were written");
}

#[test]
fn probed_wire_serving_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    // The daemon attaches per-worker `ObsCounters`; the probe must not
    // reintroduce heap traffic.
    let mut server = AuthoritativeServer::example();
    let query = Message::query(0x5152, Question::a("WWW.Example.ORG")).to_bytes();
    let mut out = Vec::new();
    let mut counters = ObsCounters::new();

    let mut now = 0.0_f64;
    for i in 0..512u32 {
        let src = [127, 0, (i % 4) as u8, 1];
        server
            .handle_into_probed(&query, src, now, &mut out, &mut counters)
            .expect("well-formed query");
        now += 0.01;
    }

    let grew = allocations_during(|| {
        for i in 0..10_000u32 {
            let src = [127, 0, (i % 4) as u8, 1];
            server
                .handle_into_probed(&query, src, now, &mut out, &mut counters)
                .expect("well-formed query");
            now += 0.01;
        }
    });
    assert_eq!(grew, 0, "{grew} allocations across 10k warm probed handle_into calls");
    assert!(counters.snapshot(0, 0).dns_decisions >= 10_000, "the counters really did record");
}
