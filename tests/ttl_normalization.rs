//! End-to-end checks of the paper's fairness requirement: every adaptive
//! TTL scheme must generate (approximately) the same average address-request
//! rate as the constant-TTL baseline.

use geodns_core::{run_all, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn config(algorithm: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
    cfg.duration_s = 2400.0;
    cfg.warmup_s = 400.0;
    cfg.seed = 55;
    cfg
}

#[test]
fn measured_address_rates_match_across_schemes() {
    let algorithms = [
        Algorithm::rr(), // the constant-TTL reference
        Algorithm::prr_ttl(2),
        Algorithm::prr2_ttl_k(),
        Algorithm::drr_ttl_s(2),
        Algorithm::drr2_ttl_s_k(),
    ];
    let configs: Vec<SimConfig> = algorithms.iter().map(|&a| config(a)).collect();
    let reports = run_all(&configs).expect("valid configs");

    let reference = reports[0].address_request_rate;
    assert!(reference > 0.0);
    for r in &reports[1..] {
        let ratio = r.address_request_rate / reference;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{}: address rate {} vs reference {} (ratio {ratio:.3})",
            r.algorithm,
            r.address_request_rate,
            reference
        );
    }
}

#[test]
fn unnormalized_scheme_underspends_dns_traffic() {
    // The naive variant (hottest class anchored at 240 s, everyone else
    // above) must produce *fewer* address requests — that's the unfairness
    // the normalization removes.
    let normalized = config(Algorithm::prr2_ttl_k());
    let mut naive = normalized.clone();
    naive.normalize_ttl = false;

    let reports = run_all(&[normalized, naive]).expect("valid configs");
    assert!(
        reports[1].address_request_rate < reports[0].address_request_rate,
        "naive {} should be below normalized {}",
        reports[1].address_request_rate,
        reports[0].address_request_rate
    );
}

#[test]
fn address_rate_is_near_k_over_ttl() {
    // K/TTL = 20/240 ≈ 0.083 requests/s is the analytic ceiling for fully
    // active domains; small domains idle between sessions, so the measured
    // value sits at or below it.
    let r = &run_all(&[config(Algorithm::rr())]).unwrap()[0];
    let ceiling = 20.0 / 240.0;
    assert!(
        r.address_request_rate <= ceiling * 1.15,
        "rate {} vs ceiling {ceiling}",
        r.address_request_rate
    );
    assert!(
        r.address_request_rate >= ceiling * 0.5,
        "rate {} suspiciously low vs ceiling {ceiling}",
        r.address_request_rate
    );
}
