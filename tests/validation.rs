//! Simulation-vs-theory validation: where closed-form results exist, the
//! simulator must agree with them. This is the credibility test of the
//! substrate that replaced the paper's CSIM package.

use geodns_analytic::control::ControlModel;
use geodns_analytic::queueing::{mm1_mean_response, mm1_response_quantile};
use geodns_analytic::shares::{binding_shares, capacity_shares, imbalance, rr_visits};
use geodns_core::{run_simulation, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;
use geodns_simcore::dist::{Distribution, Exponential};
use geodns_simcore::stats::{mser5, Tally};
use geodns_simcore::{Engine, RngStreams, SimTime};

/// A bare open-loop M/M/1 driven directly on the engine, measured against
/// the textbook formulas. Validates the event engine, the exponential
/// sampler and the statistics in one shot.
#[test]
fn engine_reproduces_mm1() {
    enum Ev {
        Arrival,
        Departure,
    }
    let (lambda, mu) = (60.0, 90.0); // ρ = 2/3, like the paper's site
    let streams = RngStreams::new(0x33A1);
    let mut rng_a = streams.stream("arrivals");
    let mut rng_s = streams.stream("service");
    let arr = Exponential::new(lambda);
    let svc = Exponential::new(mu);

    let mut eng = Engine::new();
    let mut queue: std::collections::VecDeque<SimTime> = std::collections::VecDeque::new();
    let mut response = Tally::new();
    let mut p95_samples: Vec<f64> = Vec::new();
    let horizon = 400_000u64;
    let mut served = 0u64;

    eng.schedule_in(arr.sample(&mut rng_a), Ev::Arrival);
    while let Some((now, ev)) = eng.step() {
        match ev {
            Ev::Arrival => {
                queue.push_back(now);
                if queue.len() == 1 {
                    eng.schedule_in(svc.sample(&mut rng_s), Ev::Departure);
                }
                if served < horizon {
                    eng.schedule_in(arr.sample(&mut rng_a), Ev::Arrival);
                }
            }
            Ev::Departure => {
                let arrived = queue.pop_front().expect("job in service");
                served += 1;
                if served > 20_000 {
                    // discard transient
                    let t = now.since(arrived);
                    response.record(t);
                    p95_samples.push(t);
                }
                if !queue.is_empty() {
                    eng.schedule_in(svc.sample(&mut rng_s), Ev::Departure);
                }
            }
        }
    }

    let expect_mean = mm1_mean_response(lambda, mu).unwrap();
    let got = response.mean();
    assert!(
        (got - expect_mean).abs() / expect_mean < 0.03,
        "M/M/1 mean response: sim {got} vs theory {expect_mean}"
    );

    p95_samples.sort_by(|a, b| a.total_cmp(b));
    let got_p95 = p95_samples[(p95_samples.len() as f64 * 0.95) as usize];
    let expect_p95 = mm1_response_quantile(lambda, mu, 0.95).unwrap();
    assert!(
        (got_p95 - expect_p95).abs() / expect_p95 < 0.06,
        "M/M/1 p95: sim {got_p95} vs theory {expect_p95}"
    );
}

fn theory_config(algorithm: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H50);
    cfg.duration_s = 6000.0;
    cfg.warmup_s = 600.0;
    cfg.seed = 0x7E08;
    // Disable the alarm feedback so the stationary-share theory applies
    // cleanly (alarms deliberately distort shares under overload).
    cfg.alarm_threshold = 1.0;
    cfg
}

/// RR + constant TTL must load all servers *equally* (not capacity-
/// proportionally): per-server utilization ∝ 1/C_i, so at H50 the weak
/// servers run ≈2× hotter than the strong ones.
#[test]
fn rr_utilization_ratio_matches_share_theory() {
    let r = run_simulation(&theory_config(Algorithm::rr())).unwrap();
    let strong = r.per_server_mean_util[0];
    let weak = r.per_server_mean_util[6];
    let ratio = weak / strong;
    // Theory: exactly ρ_power = C1/CN = 2, compressed by the closed loop
    // and the utilization cap as the weak server saturates.
    assert!(
        (1.4..2.3).contains(&ratio),
        "weak/strong utilization ratio {ratio}, per-server {:?}",
        r.per_server_mean_util
    );
}

/// DRR-TTL/S_K: uniform visits × capacity-proportional TTLs ⇒ capacity-
/// proportional load ⇒ *equal* per-server utilizations.
#[test]
fn drr_ttl_s_equalizes_utilization() {
    let r = run_simulation(&theory_config(Algorithm::drr_ttl_s_k())).unwrap();
    let max = r.per_server_mean_util.iter().cloned().fold(f64::MIN, f64::max);
    let min = r.per_server_mean_util.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.35,
        "utilizations should be near-equal, got {:?}",
        r.per_server_mean_util
    );

    // And the binding-share algebra predicts exactly this:
    let alpha = [1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.5];
    let shares = binding_shares(&rr_visits(7), &alpha);
    assert!(imbalance(&shares, &capacity_shares(&alpha)) < 1e-12);
}

/// The measured DNS control fraction must sit near the analytic model's
/// prediction (≈5% for the paper's defaults).
#[test]
fn control_fraction_matches_model() {
    let r = run_simulation(&theory_config(Algorithm::rr())).unwrap();
    let model = ControlModel::paper_default();
    let predicted = model.control_fraction();
    assert!(
        (r.dns_control_fraction - predicted).abs() < 0.03,
        "sim control fraction {} vs model {predicted}",
        r.dns_control_fraction
    );
    // Address rate below the K/TTL ceiling but the right order of magnitude.
    let ceiling = model.address_rate_upper_bound();
    assert!(r.address_request_rate <= ceiling * 1.1);
    assert!(r.address_request_rate >= ceiling * 0.5);
}

/// The repository's default warm-up (1800 s) must dominate what MSER-5
/// estimates from a cold-started run — i.e. our discard is conservative.
#[test]
fn default_warmup_covers_the_mser_transient() {
    let mut cfg = theory_config(Algorithm::drr2_ttl_s_k());
    cfg.warmup_s = 0.0; // measure from the cold start
    cfg.duration_s = 6000.0;
    cfg.record_timeline = true;
    let report = run_simulation(&cfg).unwrap();
    let timeline = report.timeline.as_ref().expect("timeline requested");
    let series = timeline.max_series();
    let result = mser5(&series).expect("long enough series");
    let suggested_warmup_s = result.truncate as f64 * cfg.util_interval_s;
    assert!(
        suggested_warmup_s <= 1800.0,
        "MSER suggests {suggested_warmup_s} s of warm-up; the 1800 s default must cover it"
    );
}

/// Aggregate hit throughput must match the offered-load arithmetic that
/// also pins Table 1: 500 clients · 10 hits / 15 s think ≈ 333 hits/s,
/// minus the closed-loop slowdown.
#[test]
fn throughput_matches_offered_load_model() {
    let r = run_simulation(&theory_config(Algorithm::prr_ttl1())).unwrap();
    let rate = r.hits_completed as f64 / r.measured_span_s;
    let offered = 500.0 * 10.0 / 15.0;
    assert!(rate <= offered * 1.02, "throughput {rate} cannot exceed offered {offered}");
    assert!(
        rate >= offered * 0.85,
        "closed-loop slowdown should be modest at ρ=2/3: {rate} vs {offered}"
    );
}
