//! Allocation accounting for the simulation hot path.
//!
//! The steady-state event loop — and in particular the DNS decision path
//! (`World::resolve_client` → `DnsScheduler::resolve` → policy `select`) —
//! must not allocate per event. A fresh `Vec` per decision is invisible in
//! a unit test and ruinous at scale, so these tests pin the property with a
//! counting global allocator: one measures the scheduler decision path in
//! isolation (exactly zero allocations once warm), the other runs whole
//! simulations of different lengths and checks that allocation count grows
//! sublinearly in the number of events processed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use geodns_core::{
    Algorithm, DnsScheduler, EstimatorKind, HiddenLoadEstimator, MuxProbe, NoopProbe, ObsConfig,
    ObsCounters, PolicyKind, Probe, SimConfig, TtlKind,
};
use geodns_server::HeterogeneityLevel;
use geodns_simcore::{RngStreams, SimTime};

/// Counts every `alloc`/`realloc` call (deallocations are free to ignore:
/// the property under test is "no new heap traffic per event").
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests that read it must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// The allocation delta across `f`, minimized over a few attempts: the
/// counter is process-global, so the libtest harness occasionally donates a
/// stray allocation from another thread mid-window. A real per-decision
/// allocation shows up ≥10k strong in *every* attempt and cannot hide
/// behind a retry; one-off harness noise can.
fn allocations_during(mut f: impl FnMut()) -> u64 {
    let mut fewest = u64::MAX;
    for _ in 0..3 {
        let before = alloc_calls();
        f();
        fewest = fewest.min(alloc_calls() - before);
        if fewest == 0 {
            break;
        }
    }
    fewest
}

/// Builds a warm scheduler for the given algorithm over the paper's 7-server
/// H20 site.
fn scheduler(algorithm: Algorithm) -> DnsScheduler {
    let cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H20);
    let workload = cfg.workload.build().expect("paper workload");
    let plan = cfg.servers.plan(cfg.total_capacity).expect("paper plan");
    let estimator = HiddenLoadEstimator::new(EstimatorKind::Oracle, workload.nominal_rates());
    DnsScheduler::new(
        cfg.algorithm,
        &plan,
        estimator,
        cfg.gamma(),
        cfg.ttl_const_s,
        cfg.normalize_ttl,
        RngStreams::new(7).stream("dns-policy"),
    )
}

#[test]
fn dns_decision_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    // Every stateless-per-decision policy the paper (and the baselines)
    // ship. MRL is excluded: it records a binding per assignment by design,
    // which is inherent policy state, not hot-path waste.
    let algorithms = [
        Algorithm::rr(),
        Algorithm::rr2(),
        Algorithm::prr_ttl1(),
        Algorithm::prr_ttl_k(),
        Algorithm::drr2_ttl_s_k(),
        Algorithm::dal(),
        Algorithm::new(PolicyKind::Random, TtlKind::Constant),
        Algorithm::new(PolicyKind::WeightedRandom, TtlKind::Constant),
        Algorithm::new(PolicyKind::LeastLoaded, TtlKind::Constant),
    ];

    for algorithm in algorithms {
        let name = algorithm.name();
        let mut dns = scheduler(algorithm);
        let backlogs = [0.3, 0.1, 0.7, 0.2, 0.0, 0.5, 0.4];

        // Warm-up: let any lazily grown policy state reach steady size.
        let mut t = 0.0_f64;
        for i in 0..512 {
            dns.resolve(i % 20, SimTime::from_secs(t), &backlogs);
            t += 0.05;
        }

        let grew = allocations_during(|| {
            for i in 0..10_000 {
                dns.resolve(i % 20, SimTime::from_secs(t), &backlogs);
                t += 0.05;
            }
        });
        assert_eq!(grew, 0, "{name}: {grew} allocations across 10k warm DNS decisions");
    }
}

#[test]
fn probed_dns_decision_path_is_allocation_free() {
    let _guard = SERIAL.lock().unwrap();

    // The observability hooks must not change the hot-path story: with the
    // no-op probe, with the disabled `MuxProbe` the world actually carries,
    // and even with the counters registry attached, 10k warm probed DNS
    // decisions perform zero allocations.
    let mut dns = scheduler(Algorithm::drr2_ttl_s_k());
    let backlogs = [0.3, 0.1, 0.7, 0.2, 0.0, 0.5, 0.4];
    let mut noop = NoopProbe;
    let mut disabled = MuxProbe::from_config(&ObsConfig::default()).expect("default obs config");
    let mut counters = ObsCounters::new();
    assert!(!disabled.is_enabled());

    let mut t = 0.0_f64;
    for i in 0..512 {
        dns.resolve_probed(i % 20, SimTime::from_secs(t), &backlogs, &mut noop);
        t += 0.05;
    }

    let probes: [(&str, &mut dyn Probe); 3] = [
        ("NoopProbe", &mut noop),
        ("disabled MuxProbe", &mut disabled),
        ("ObsCounters", &mut counters),
    ];
    for (name, probe) in probes {
        let grew = allocations_during(|| {
            for i in 0..10_000 {
                dns.resolve_probed(i % 20, SimTime::from_secs(t), &backlogs, probe);
                t += 0.05;
            }
        });
        assert_eq!(grew, 0, "{name}: {grew} allocations across 10k warm probed DNS decisions");
    }
    assert!(counters.snapshot(0, 0).dns_decisions >= 10_000, "the counters really did record");
}

#[test]
fn steady_state_event_loop_allocates_sublinearly() {
    let _guard = SERIAL.lock().unwrap();

    // Same model, two horizons: the long run processes ~3x the events of
    // the short one. If the event loop allocated per event (or per DNS
    // decision), the allocation delta would track the event delta; with
    // scratch buffers it is only amortized `Vec` doubling in the stats
    // sinks, orders of magnitude below it.
    let mut cfg = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    cfg.warmup_s = 30.0;
    cfg.duration_s = 120.0;
    let short_cfg = cfg.clone();
    cfg.duration_s = 360.0;
    let long_cfg = cfg;

    let before = alloc_calls();
    let short = geodns_core::run_simulation(&short_cfg).expect("short run");
    let mid = alloc_calls();
    let long = geodns_core::run_simulation(&long_cfg).expect("long run");
    let after = alloc_calls();

    let short_allocs = mid - before;
    let long_allocs = after - mid;
    let extra_allocs = long_allocs.saturating_sub(short_allocs);
    let extra_events = long.hits_completed.saturating_sub(short.hits_completed);
    assert!(extra_events > 10_000, "long run should process many more hits");
    assert!(
        (extra_allocs as f64) < (extra_events as f64) * 0.01,
        "event loop allocates per event: {extra_allocs} extra allocations \
         for {extra_events} extra hits"
    );
}
