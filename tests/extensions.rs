//! Integration tests for the extension machinery: time-varying profiles,
//! service-time models, partial NS non-cooperation, timeline capture.

use geodns_core::{
    run_simulation, Algorithm, EstimatorKind, MinTtlBehavior, RateProfile, ServiceModel, SimConfig,
};
use geodns_server::HeterogeneityLevel;

fn base(algorithm: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
    cfg.duration_s = 1200.0;
    cfg.warmup_s = 300.0;
    cfg.seed = 2026;
    cfg
}

#[test]
fn flash_crowd_profile_raises_peak_load() {
    let calm = base(Algorithm::rr());
    let mut crowded = calm.clone();
    crowded.workload.profile =
        RateProfile::FlashCrowd { domain: 0, start_s: 600.0, duration_s: 600.0, factor: 3.0 };
    let a = run_simulation(&calm).unwrap();
    let b = run_simulation(&crowded).unwrap();
    assert!(
        b.p98() < a.p98(),
        "a 3× flash crowd must worsen the balance: {} vs {}",
        b.p98(),
        a.p98()
    );
    assert!(b.hits_completed > a.hits_completed, "the crowd adds traffic");
}

#[test]
fn silencing_a_domain_reduces_traffic() {
    let mut cfg = base(Algorithm::rr());
    cfg.workload.profile = RateProfile::Step { domain: 0, at_s: 0.0, factor: 0.5 };
    let halved = run_simulation(&cfg).unwrap();
    let normal = run_simulation(&base(Algorithm::rr())).unwrap();
    assert!(halved.hits_completed < normal.hits_completed);
}

#[test]
fn diurnal_profile_keeps_long_run_mean() {
    let mut cfg = base(Algorithm::prr2_ttl(2));
    cfg.duration_s = 3600.0;
    cfg.workload.profile = RateProfile::Diurnal { amplitude: 0.3, period_s: 1200.0 };
    let wavy = run_simulation(&cfg).unwrap();
    let flat = {
        let mut c = cfg.clone();
        c.workload.profile = RateProfile::Constant;
        run_simulation(&c).unwrap()
    };
    // Full cycles average out: total work within a few percent.
    let ratio = wavy.hits_completed as f64 / flat.hits_completed as f64;
    assert!((0.93..1.07).contains(&ratio), "hit ratio {ratio}");
}

#[test]
fn service_models_preserve_the_adaptive_ranking() {
    for service in [ServiceModel::Deterministic, ServiceModel::Pareto { shape: 2.2 }] {
        let mut rr = base(Algorithm::rr());
        rr.service = service;
        let mut adaptive = base(Algorithm::drr2_ttl_s_k());
        adaptive.service = service;
        let rr_report = run_simulation(&rr).unwrap();
        let ad_report = run_simulation(&adaptive).unwrap();
        assert!(
            ad_report.p98() > rr_report.p98(),
            "{service:?}: adaptive {} vs RR {}",
            ad_report.p98(),
            rr_report.p98()
        );
    }
}

#[test]
fn deterministic_service_is_smoother_than_exponential() {
    let mut det = base(Algorithm::rr());
    det.service = ServiceModel::Deterministic;
    let mut exp = base(Algorithm::rr());
    exp.service = ServiceModel::Exponential;
    let det_report = run_simulation(&det).unwrap();
    let exp_report = run_simulation(&exp).unwrap();
    assert!(
        det_report.page_response_p95_s < exp_report.page_response_p95_s,
        "M/D/1-ish p95 {} should undercut M/M/1-ish p95 {}",
        det_report.page_response_p95_s,
        exp_report.page_response_p95_s
    );
}

#[test]
fn partial_noncooperation_interpolates() {
    let clamp = MinTtlBehavior::ClampToMin { min_ttl_s: 240.0 };
    let mut p98 = Vec::new();
    for fraction in [0.0, 1.0] {
        let mut cfg = base(Algorithm::drr2_ttl_s_k());
        cfg.ns_behavior = clamp;
        cfg.ns_noncoop_fraction = fraction;
        p98.push(run_simulation(&cfg).unwrap().p98());
    }
    // Fully cooperative must not be worse than fully clamped for the
    // fine-grained scheme (clamping strips its mechanism).
    assert!(p98[0] >= p98[1] - 0.05, "coop {} vs all-clamped {}", p98[0], p98[1]);
}

#[test]
fn timeline_capture_matches_summary() {
    let mut cfg = base(Algorithm::prr2_ttl_k());
    cfg.record_timeline = true;
    let report = run_simulation(&cfg).unwrap();
    let timeline = report.timeline.as_ref().expect("timeline requested");
    assert_eq!(
        timeline.len(),
        report.max_util_samples.len(),
        "one timeline row per utilization sample"
    );
    // The timeline's max series is a permutation of the report's sorted one.
    let mut from_timeline = timeline.max_series();
    from_timeline.sort_by(|a, b| a.total_cmp(b));
    for (a, b) in from_timeline.iter().zip(&report.max_util_samples) {
        assert!((a - b).abs() < 1e-12);
    }
    // CSV has header + one row per sample.
    assert_eq!(timeline.to_csv().lines().count(), timeline.len() + 1);
}

#[test]
fn timeline_off_by_default() {
    let report = run_simulation(&base(Algorithm::rr())).unwrap();
    assert!(report.timeline.is_none());
}

/// Drops a top-level key from an object `Value`; returns whether it existed.
fn strip_key(value: &mut serde_json::Value, key: &str) -> bool {
    let serde_json::Value::Object(entries) = value else {
        panic!("expected a JSON object");
    };
    let before = entries.len();
    entries.retain(|(k, _)| k != key);
    entries.len() < before
}

#[test]
fn pre_pr_config_shape_still_parses_and_matches_default() {
    // A config serialized before the latency model existed has no
    // `latency` key; it must deserialize (serde default: disabled) and
    // reproduce the same run as today's default, byte for byte.
    let cfg = base(Algorithm::drr2_ttl_s_k());
    let mut value = serde_json::to_value(&cfg).unwrap();
    let removed = strip_key(&mut value, "latency");
    assert!(removed, "config serializes the latency block");
    let old_shape: SimConfig = serde_json::from_value(&value).unwrap();
    let old = run_simulation(&old_shape).unwrap();
    let new = run_simulation(&cfg).unwrap();
    assert_eq!(old, new);
    let json = serde_json::to_string(&new).unwrap();
    assert!(!json.contains("\"latency\""), "disabled model must not grow a report key");
}

#[test]
fn latency_model_is_pure_measurement_for_proximity_blind_policies() {
    // Enabling the model for a proximity-blind policy adds the perceived
    // summary and changes NOTHING else: the geography has its own named
    // RNG stream and the feedback hooks are RNG-free no-ops.
    let plain = run_simulation(&base(Algorithm::rr())).unwrap();
    let mut cfg = base(Algorithm::rr());
    cfg.latency.enabled = true;
    let measured = run_simulation(&cfg).unwrap();
    assert!(plain.latency.is_none());
    assert!(measured.latency.is_some());
    let mut a = serde_json::to_value(&plain).unwrap();
    let mut b = serde_json::to_value(&measured).unwrap();
    strip_key(&mut a, "latency");
    strip_key(&mut b, "latency");
    assert_eq!(a, b, "the latency model must not perturb a proximity-blind run");
}

#[test]
fn rtt_band_with_geography_reports_sane_percentiles() {
    let mut cfg = base(Algorithm::rtt_band(400));
    cfg.latency.enabled = true;
    let report = run_simulation(&cfg).unwrap();
    let lat = report.latency.expect("enabled model yields a summary");
    assert!(lat.pages > 0);
    assert!(0.0 < lat.perceived_p50_s && lat.perceived_p50_s <= lat.perceived_p95_s);
    assert!(lat.perceived_p95_s <= lat.perceived_p99_s);
    // Round trips live between the intra floor and the inter ceiling.
    assert!(lat.rtt_mean_s > 0.001, "rtt mean {}", lat.rtt_mean_s);
    assert!(lat.rtt_mean_s < 0.2, "rtt mean {}", lat.rtt_mean_s);
}

#[test]
fn window_estimator_runs_end_to_end() {
    let mut cfg = base(Algorithm::prr2_ttl_k());
    cfg.estimator = EstimatorKind::window_default();
    let report = run_simulation(&cfg).unwrap();
    assert!(report.hits_completed > 0);
    assert!(report.p98() > 0.0);
}
