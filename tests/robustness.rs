//! End-to-end robustness properties (paper §5.2): non-cooperative name
//! servers and hidden-load estimation error.

use geodns_core::{run_all, Algorithm, MinTtlBehavior, SimConfig};
use geodns_server::HeterogeneityLevel;

fn config(algorithm: Algorithm, level: HeterogeneityLevel) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, level);
    cfg.duration_s = 2400.0;
    cfg.warmup_s = 400.0;
    cfg.seed = 77;
    cfg
}

#[test]
fn min_ttl_clamp_erodes_the_fine_grained_schemes() {
    // Figure 4: DRR2-TTL/S_K's advantage shrinks as NSs clamp its short
    // TTLs; it must not *gain* from losing control.
    let free = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    let mut clamped = free.clone();
    clamped.ns_behavior = MinTtlBehavior::ClampToMin { min_ttl_s: 240.0 };
    let reports = run_all(&[free, clamped]).expect("valid configs");
    assert!(
        reports[1].p98() <= reports[0].p98() + 0.05,
        "clamped {} vs free {}",
        reports[1].p98(),
        reports[0].p98()
    );
}

#[test]
fn coarse_two_class_scheme_shrugs_off_the_clamp() {
    // Figure 4: "PRR2-TTL/2 … is able to always assign TTL higher than
    // [the threshold] in all experiments" — a moderate clamp should not
    // change its behaviour much.
    let free = config(Algorithm::prr2_ttl(2), HeterogeneityLevel::H20);
    let mut clamped = free.clone();
    clamped.ns_behavior = MinTtlBehavior::ClampToMin { min_ttl_s: 80.0 };
    let reports = run_all(&[free, clamped]).expect("valid configs");
    assert!(
        (reports[0].p98() - reports[1].p98()).abs() < 0.12,
        "free {} vs clamped {}",
        reports[0].p98(),
        reports[1].p98()
    );
}

#[test]
fn estimation_error_degrades_gracefully_for_ttl_k() {
    // Figures 6–7: the per-domain schemes lose only a little under a 30%
    // error in the hidden-load estimates.
    let clean = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    let mut stale = clean.clone();
    stale.workload.rate_error = 0.3;
    let reports = run_all(&[clean, stale]).expect("valid configs");
    assert!(
        reports[1].p98() > reports[0].p98() - 0.2,
        "30% error dropped TTL/S_K from {} to {}",
        reports[0].p98(),
        reports[1].p98()
    );
}

#[test]
fn estimation_error_hits_the_two_class_schemes_harder_at_high_het() {
    // Figure 7's qualitative claim, as an ordering at 50% heterogeneity and
    // 50% error: the TTL/K scheme stays above the TTL/2 scheme.
    let mut k = config(Algorithm::prr2_ttl_k(), HeterogeneityLevel::H50);
    k.workload.rate_error = 0.5;
    let mut two = config(Algorithm::prr2_ttl(2), HeterogeneityLevel::H50);
    two.workload.rate_error = 0.5;
    let reports = run_all(&[k, two]).expect("valid configs");
    assert!(
        reports[0].p98() >= reports[1].p98() - 0.05,
        "TTL/K {} vs TTL/2 {} under heavy error",
        reports[0].p98(),
        reports[1].p98()
    );
}

#[test]
fn default_on_small_behavior_works_end_to_end() {
    let mut cfg = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    cfg.ns_behavior = MinTtlBehavior::DefaultOnSmall { min_ttl_s: 60.0, default_ttl_s: 300.0 };
    let r = &run_all(&[cfg]).unwrap()[0];
    assert!(r.hits_completed > 0);
    assert!(r.p98() > 0.0);
}
