//! End-to-end robustness properties (paper §5.2): non-cooperative name
//! servers, hidden-load estimation error, and server fault injection.

use geodns_core::{run_all, run_simulation, Algorithm, FailoverModel, MinTtlBehavior, SimConfig};
use geodns_server::{FailureSpec, HeterogeneityLevel};

fn config(algorithm: Algorithm, level: HeterogeneityLevel) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, level);
    cfg.duration_s = 2400.0;
    cfg.warmup_s = 400.0;
    cfg.seed = 77;
    cfg
}

#[test]
fn min_ttl_clamp_erodes_the_fine_grained_schemes() {
    // Figure 4: DRR2-TTL/S_K's advantage shrinks as NSs clamp its short
    // TTLs; it must not *gain* from losing control.
    let free = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    let mut clamped = free.clone();
    clamped.ns_behavior = MinTtlBehavior::ClampToMin { min_ttl_s: 240.0 };
    let reports = run_all(&[free, clamped]).expect("valid configs");
    assert!(
        reports[1].p98() <= reports[0].p98() + 0.05,
        "clamped {} vs free {}",
        reports[1].p98(),
        reports[0].p98()
    );
}

#[test]
fn coarse_two_class_scheme_shrugs_off_the_clamp() {
    // Figure 4: "PRR2-TTL/2 … is able to always assign TTL higher than
    // [the threshold] in all experiments" — a moderate clamp should not
    // change its behaviour much.
    let free = config(Algorithm::prr2_ttl(2), HeterogeneityLevel::H20);
    let mut clamped = free.clone();
    clamped.ns_behavior = MinTtlBehavior::ClampToMin { min_ttl_s: 80.0 };
    let reports = run_all(&[free, clamped]).expect("valid configs");
    assert!(
        (reports[0].p98() - reports[1].p98()).abs() < 0.12,
        "free {} vs clamped {}",
        reports[0].p98(),
        reports[1].p98()
    );
}

#[test]
fn estimation_error_degrades_gracefully_for_ttl_k() {
    // Figures 6–7: the per-domain schemes lose only a little under a 30%
    // error in the hidden-load estimates.
    let clean = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    let mut stale = clean.clone();
    stale.workload.rate_error = 0.3;
    let reports = run_all(&[clean, stale]).expect("valid configs");
    assert!(
        reports[1].p98() > reports[0].p98() - 0.2,
        "30% error dropped TTL/S_K from {} to {}",
        reports[0].p98(),
        reports[1].p98()
    );
}

#[test]
fn estimation_error_hits_the_two_class_schemes_harder_at_high_het() {
    // Figure 7's qualitative claim, as an ordering at 50% heterogeneity and
    // 50% error: the TTL/K scheme stays above the TTL/2 scheme.
    let mut k = config(Algorithm::prr2_ttl_k(), HeterogeneityLevel::H50);
    k.workload.rate_error = 0.5;
    let mut two = config(Algorithm::prr2_ttl(2), HeterogeneityLevel::H50);
    two.workload.rate_error = 0.5;
    let reports = run_all(&[k, two]).expect("valid configs");
    assert!(
        reports[0].p98() >= reports[1].p98() - 0.05,
        "TTL/K {} vs TTL/2 {} under heavy error",
        reports[0].p98(),
        reports[1].p98()
    );
}

#[test]
fn default_on_small_behavior_works_end_to_end() {
    let mut cfg = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    cfg.ns_behavior = MinTtlBehavior::DefaultOnSmall { min_ttl_s: 60.0, default_ttl_s: 300.0 };
    let r = &run_all(&[cfg]).unwrap()[0];
    assert!(r.hits_completed > 0);
    assert!(r.p98() > 0.0);
}

// --- server fault injection ---

fn faulty(algorithm: Algorithm, failover: FailoverModel) -> SimConfig {
    let mut cfg = config(algorithm, HeterogeneityLevel::H20);
    cfg.failures.enabled = true;
    // Aggressive MTBF/MTTR so a 2400 s run sees plenty of crashes.
    cfg.failures.spec = FailureSpec { mtbf_s: 400.0, mttr_s: 60.0 };
    cfg.failures.failover = failover;
    cfg.record_timeline = true;
    cfg
}

#[test]
fn failures_conserve_every_hit_issued() {
    for failover in
        [FailoverModel::PinUntilTtl, FailoverModel::RetryAfterBackoff { backoff_s: 5.0 }]
    {
        let r = run_simulation(&faulty(Algorithm::drr2_ttl_s_k(), failover)).unwrap();
        assert!(r.hits_failed > 0, "aggressive MTBF must fail some hits");
        assert!(r.hits_issued_total > 0);
        assert_eq!(
            r.hits_issued_total,
            r.hits_served_total + r.hits_failed_total + r.hits_in_flight,
            "issued = served + failed + in-flight ({failover:?})"
        );
    }
}

#[test]
fn utilization_stays_physical_under_failures() {
    let r = run_simulation(&faulty(Algorithm::rr(), FailoverModel::PinUntilTtl)).unwrap();
    let timeline = r.timeline.as_ref().expect("timeline was requested");
    assert!(!timeline.is_empty());
    for row in &timeline.per_server {
        for &u in row {
            assert!((0.0..=1.0).contains(&u), "utilization {u} out of [0,1]");
        }
    }
    assert!(!timeline.failure_events.is_empty(), "crashes must be logged");
}

#[test]
fn availability_and_rebinds_are_reported() {
    let r = run_simulation(&faulty(
        Algorithm::drr2_ttl_s_k(),
        FailoverModel::RetryAfterBackoff { backoff_s: 2.0 },
    ))
    .unwrap();
    assert_eq!(r.per_server_availability.len(), 7);
    for &a in &r.per_server_availability {
        assert!((0.0..=1.0).contains(&a), "availability {a}");
        // MTBF 400 / MTTR 60 → long-run availability ~0.87; any one server
        // over a 2400 s window is noisy, so only bound it loosely.
        assert!(a > 0.3, "availability {a} implausibly low");
    }
    assert!(r.rebinds > 0, "failover must rebind some clients");
    assert!(r.time_to_rebalance_mean_s >= 0.0);
}

#[test]
fn fault_injection_is_deterministic() {
    let cfg = faulty(Algorithm::prr2_ttl(2), FailoverModel::RetryAfterBackoff { backoff_s: 3.0 });
    let a = run_simulation(&cfg).unwrap();
    let b = run_simulation(&cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn disabled_failures_leave_the_report_untouched() {
    // A run with the failure block present-but-disabled must be
    // bit-identical to the plain default: the failure RNG stream exists but
    // is never drawn from, and no crash events are scheduled.
    let plain = config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    let mut disabled = plain.clone();
    disabled.failures.spec = FailureSpec { mtbf_s: 123.0, mttr_s: 45.0 };
    disabled.failures.failover = FailoverModel::RetryAfterBackoff { backoff_s: 9.0 };
    assert!(!disabled.failures.enabled);
    let a = run_simulation(&plain).unwrap();
    let b = run_simulation(&disabled).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.hits_failed, 0);
    assert_eq!(a.hits_issued_total, a.hits_served_total + a.hits_in_flight);
    assert!(a.per_server_availability.iter().all(|&x| x == 1.0));
}
