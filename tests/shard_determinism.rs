//! Sharded-world guarantees: the parallel shard runner must reproduce the
//! sequential oracle byte for byte (thread scheduling cannot leak into the
//! simulation), and the dense struct-of-arrays client state must hold its
//! per-client byte budget at scale.

use geodns_core::{run_simulation, run_simulation_metered, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

/// A sharded run sized for tests: enough span for a few epoch barriers,
/// enough domains for strided ownership to matter.
fn sharded(shards: usize, parallel: bool, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    cfg.duration_s = 300.0;
    cfg.warmup_s = 60.0;
    cfg.seed = seed;
    cfg.shard.shards = shards;
    cfg.shard.parallel = parallel;
    cfg
}

#[test]
fn parallel_shards_match_the_sequential_oracle_across_seeds() {
    // The single-threaded execution of the same decomposition is the
    // oracle; `parallel: true` merely spreads each epoch's shard-local
    // stepping over OS threads, with the exchange still single-threaded.
    // Compare serialized reports so every field — merged CDFs, tallies,
    // counters — participates in the identity, across three seeds (three
    // different epoch/exchange interleavings).
    for seed in [7_u64, 1998, 0xD0_5EED] {
        for shards in [2_usize, 3] {
            let seq = run_simulation(&sharded(shards, false, seed)).unwrap();
            let par = run_simulation(&sharded(shards, true, seed)).unwrap();
            assert_eq!(
                serde_json::to_string(&seq).unwrap(),
                serde_json::to_string(&par).unwrap(),
                "parallel diverged from sequential at {shards} shards, seed {seed}"
            );
        }
    }
}

#[test]
fn sharded_runs_reproduce_bit_for_bit() {
    // Same seed, same shard count → identical merged report, parallel mode
    // included: determinism survives the epoch-barrier exchange.
    let a = run_simulation(&sharded(3, true, 42)).unwrap();
    let b = run_simulation(&sharded(3, true, 42)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn shard_count_changes_the_decomposition_not_the_physics() {
    // Different shard counts are different models (each shard is its own
    // world with a scaled farm replica), so reports differ — but the
    // conserved quantities must still hold and the statistics must stay
    // in the same regime as the unsharded run.
    let whole = run_simulation(&sharded(1, false, 11)).unwrap();
    let split = run_simulation(&sharded(4, true, 11)).unwrap();
    assert!(split.hits_completed > 0);
    assert!(split.hits_issued_total >= split.hits_served_total);
    assert!((whole.mean_util() - split.mean_util()).abs() < 0.15);
}

#[test]
fn client_state_holds_the_bytes_per_client_budget() {
    // The struct-of-arrays columns cost 32¼ bytes per client (four f64
    // columns plus one bit of hot/normal class). The budget is the
    // regression tripwire: a per-client struct or a stray usize column
    // blows straight through 40.
    let mut cfg = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    cfg.workload.n_clients = 50_000;
    cfg.workload.n_domains = 2_000;
    cfg.total_capacity = 50_000.0;
    cfg.duration_s = 30.0;
    cfg.warmup_s = 5.0;
    let (_, metrics) = run_simulation_metered(&cfg).unwrap();
    let bytes = metrics.bytes_per_client();
    assert!(bytes > 0.0, "metering must account the client columns");
    assert!(bytes <= 40.0, "client state regressed to {bytes:.2} bytes/client");
}

#[test]
fn capped_cdfs_keep_the_report_usable() {
    // `cdf_sample_cap` bounds report memory for long runs; the capped
    // response-time summary must stay a faithful reservoir sample, not
    // collapse to a truncated prefix.
    let mut capped = sharded(1, false, 5);
    capped.cdf_sample_cap = 8_192;
    let mut exact = capped.clone();
    exact.cdf_sample_cap = 0;
    let capped = run_simulation(&capped).unwrap();
    let exact = run_simulation(&exact).unwrap();
    assert_eq!(capped.hits_completed, exact.hits_completed);
    assert!(
        (capped.page_response_p95_s - exact.page_response_p95_s).abs()
            < exact.page_response_p95_s * 0.25,
        "reservoir p95 {:.4}s drifted from exact {:.4}s",
        capped.page_response_p95_s,
        exact.page_response_p95_s
    );

    // A cap the run never reaches must be a no-op: byte-identical report.
    let mut roomy = sharded(1, false, 5);
    roomy.cdf_sample_cap = usize::MAX;
    assert_eq!(run_simulation(&roomy).unwrap(), exact);
}
