//! The paper's *ordinal* results, asserted as tests: who beats whom.
//!
//! Absolute numbers depend on the substrate (our simulator vs the authors'
//! CSIM model), but the orderings are the paper's contribution — these
//! tests pin them. Runs are shortened but long enough for the gaps, which
//! are large, to be stable.

use geodns_core::{run_all, Algorithm, SimConfig, SimReport, WorkloadSpec};
use geodns_server::HeterogeneityLevel;

fn config(algorithm: Algorithm, level: HeterogeneityLevel) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, level);
    cfg.duration_s = 2400.0;
    cfg.warmup_s = 400.0;
    cfg.seed = 1998;
    cfg
}

fn run_pair(a: SimConfig, b: SimConfig) -> (SimReport, SimReport) {
    let mut reports = run_all(&[a, b]).expect("valid configs");
    let second = reports.pop().unwrap();
    let first = reports.pop().unwrap();
    (first, second)
}

#[test]
fn adaptive_ttl_beats_rr_at_20pct_heterogeneity() {
    // Figure 1's headline: DRR2-TTL/S_K ≫ RR.
    let (best, rr) = run_pair(
        config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20),
        config(Algorithm::rr(), HeterogeneityLevel::H20),
    );
    assert!(
        best.prob_max_util_lt(0.9) > rr.prob_max_util_lt(0.9) + 0.3,
        "DRR2-TTL/S_K {} vs RR {}",
        best.prob_max_util_lt(0.9),
        rr.prob_max_util_lt(0.9)
    );
}

#[test]
fn server_capacity_alone_is_not_enough() {
    // Figure 1: TTL/S_1 (capacity-only TTL) barely improves on RR, far
    // behind the schemes that also see domain skew.
    let (s1, sk) = run_pair(
        config(Algorithm::drr_ttl_s(1), HeterogeneityLevel::H20),
        config(Algorithm::drr_ttl_s_k(), HeterogeneityLevel::H20),
    );
    assert!(
        sk.p98() > s1.p98() + 0.15,
        "TTL/S_K {} should clearly beat TTL/S_1 {}",
        sk.p98(),
        s1.p98()
    );
}

#[test]
fn probabilistic_routing_alone_cannot_fix_client_skew() {
    // Figure 2: "PRR-TTL/2 performs consistently better than PRR-TTL/1".
    let (ttl2, ttl1) = run_pair(
        config(Algorithm::prr_ttl(2), HeterogeneityLevel::H35),
        config(Algorithm::prr_ttl1(), HeterogeneityLevel::H35),
    );
    assert!(ttl2.p98() > ttl1.p98() + 0.1, "PRR-TTL/2 {} vs PRR-TTL/1 {}", ttl2.p98(), ttl1.p98());
}

#[test]
fn rr2_variants_beat_rr_variants() {
    // "RR2-based strategies always perform better than their RR-based
    // counterpart." Allow statistical slack but require no big regression.
    let (two_tier, one_tier) = run_pair(
        config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35),
        config(Algorithm::drr_ttl_s_k(), HeterogeneityLevel::H35),
    );
    assert!(
        two_tier.p98() >= one_tier.p98() - 0.05,
        "DRR2 {} vs DRR {}",
        two_tier.p98(),
        one_tier.p98()
    );
}

#[test]
fn dal_transplant_underperforms_adaptive_ttl() {
    // Figure 3: DAL, though capacity-scaled, stays far below the TTL/K
    // family on a heterogeneous site.
    let (dal, adaptive) = run_pair(
        config(Algorithm::dal(), HeterogeneityLevel::H50),
        config(Algorithm::prr2_ttl_k(), HeterogeneityLevel::H50),
    );
    assert!(adaptive.p98() > dal.p98() + 0.2, "PRR2-TTL/K {} vs DAL {}", adaptive.p98(), dal.p98());
}

#[test]
fn ideal_envelope_bounds_the_adaptive_schemes() {
    // The uniform-clients PRR envelope is the ceiling every realistic
    // scheme sits under (small statistical slack allowed).
    let mut ideal = config(Algorithm::prr_ttl1(), HeterogeneityLevel::H20);
    ideal.workload = WorkloadSpec::ideal();
    let (ideal_r, best) =
        run_pair(ideal, config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20));
    assert!(
        ideal_r.p98() >= best.p98() - 0.05,
        "ideal {} should be ≥ best realistic {}",
        ideal_r.p98(),
        best.p98()
    );
}

#[test]
fn ttl_k_family_survives_high_heterogeneity() {
    // Figure 3: at 65% heterogeneity TTL/K-family still performs well while
    // TTL/2 visibly degrades relative to it.
    let (full, coarse) = run_pair(
        config(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H65),
        config(Algorithm::drr2_ttl_s(2), HeterogeneityLevel::H65),
    );
    assert!(
        full.p98() >= coarse.p98(),
        "TTL/S_K {} vs TTL/S_2 {} at 65%",
        full.p98(),
        coarse.p98()
    );
    assert!(full.p98() > 0.5, "TTL/S_K should remain serviceable, got {}", full.p98());
}
