//! The observability layer's contract with the simulation:
//!
//! 1. **Recorders never perturb.** A run with the counters registry or the
//!    JSONL tracer attached produces a report byte-identical (serialized)
//!    to the same run with both off — the probes observe RNG-free state
//!    and the `obs` snapshot is the only difference, stripped here before
//!    comparing.
//! 2. **The trace is complete.** Every DNS decision, every signal, every
//!    liveness transition lands in the JSONL file, including the liveness
//!    state at measurement start for servers already down when warm-up
//!    ends.
//! 3. **`failure_events` and `per_server_availability` agree.** The
//!    up/down intervals reconstructed from the timeline integrate to the
//!    report's availability figures — the invariant the t = 0 seeding
//!    bugfix restores for servers crashed before the measured span.

use std::fs;
use std::path::PathBuf;

use geodns_core::{run_simulation, Algorithm, SimConfig, SimReport};
use geodns_server::{FailureSpec, HeterogeneityLevel};

/// A short faulty run: crashes are frequent and repairs slow enough that
/// some server is (deterministically, per seed) down when warm-up ends.
fn faulty_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    cfg.duration_s = 900.0;
    cfg.warmup_s = 300.0;
    cfg.seed = seed;
    cfg.failures.enabled = true;
    cfg.failures.spec = FailureSpec { mtbf_s: 400.0, mttr_s: 300.0 };
    cfg.record_timeline = true;
    cfg
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geodns_obs_{}_{name}", std::process::id()))
}

fn stripped_json(mut report: SimReport) -> String {
    report.obs = None;
    serde_json::to_string(&report).expect("serialize report")
}

#[test]
fn recorders_leave_the_report_byte_identical() {
    let cfg = faulty_cfg(42);
    let baseline = stripped_json(run_simulation(&cfg).expect("baseline run"));

    let mut with_counters = cfg.clone();
    with_counters.obs.counters = true;
    let report = run_simulation(&with_counters).expect("counters run");
    assert!(report.obs.is_some(), "counters snapshot lands in the report");
    assert_eq!(stripped_json(report), baseline, "counters perturbed the run");

    let mut with_trace = cfg;
    let trace = tmp_path("identity.jsonl");
    with_trace.obs.trace_path = Some(trace.display().to_string());
    let report = run_simulation(&with_trace).expect("traced run");
    fs::remove_file(&trace).ok();
    assert!(report.obs.is_none(), "no counters => no snapshot");
    assert_eq!(stripped_json(report), baseline, "the tracer perturbed the run");
}

#[test]
fn disabled_obs_serializes_no_obs_field() {
    let mut cfg = SimConfig::quick(Algorithm::rr(), HeterogeneityLevel::H0);
    cfg.duration_s = 120.0;
    cfg.warmup_s = 30.0;
    let report = run_simulation(&cfg).expect("run");
    let json = serde_json::to_string(&report).expect("serialize");
    assert!(
        !json.contains("\"obs\""),
        "a default-configured report must serialize without the obs field"
    );
}

#[test]
fn trace_captures_every_decision_signal_and_liveness_transition() {
    let mut cfg = faulty_cfg(7);
    let trace = tmp_path("complete.jsonl");
    cfg.obs.counters = true;
    cfg.obs.trace_path = Some(trace.display().to_string());

    let report = run_simulation(&cfg).expect("traced faulty run");
    let text = fs::read_to_string(&trace).expect("trace file");
    fs::remove_file(&trace).ok();
    let obs = report.obs.expect("counters snapshot");
    let count = |needle: &str| text.lines().filter(|l| l.contains(needle)).count() as u64;

    assert_eq!(obs.trace_records_dropped, 0, "budget must not truncate this trace");
    assert_eq!(obs.trace_records_written, text.lines().count() as u64);

    assert!(obs.dns_decisions > 0);
    assert_eq!(count("\"ev\":\"dns_decision\""), obs.dns_decisions);
    assert!(
        obs.dns_decisions >= report.dns_queries,
        "counters cover the whole run, the report only the measured span"
    );

    assert!(obs.signals_down > 0 && obs.signals_alarm > 0, "a faulty run signals");
    assert_eq!(
        count("\"ev\":\"signal\""),
        obs.signals_alarm + obs.signals_normal + obs.signals_down + obs.signals_up
    );
    assert_eq!(count("\"signal\":\"alarm\""), obs.signals_alarm);

    assert!(obs.crashes > 0 && obs.repairs > 0);
    assert_eq!(count("\"ev\":\"liveness\""), obs.crashes + obs.repairs);

    assert_eq!(count("\"ev\":\"ns_miss\""), obs.ns_misses_cold + obs.ns_misses_expired);
    assert!(obs.ns_hits > 0, "hits are counted even though they are not traced");
    assert!(obs.util_samples > 0);
    assert_eq!(obs.collects, 0, "the Oracle estimator never collects");
    assert!(obs.events.iter().any(|e| e.kind == "IssuePage" && e.count > 0));

    // The measurement-start record carries exactly the servers the t = 0
    // timeline seeding marks as already down — the bugfix's trace side.
    let timeline = report.timeline.expect("record_timeline was on");
    let down_at_start: Vec<String> = timeline
        .failure_events
        .iter()
        .filter(|&&(t, _, up)| t == 0.0 && !up)
        .map(|&(_, s, _)| s.to_string())
        .collect();
    assert!(
        !down_at_start.is_empty(),
        "seed/fault parameters must leave a server down at warm-up end"
    );
    let starts: Vec<&str> =
        text.lines().filter(|l| l.contains("\"ev\":\"measurement_start\"")).collect();
    assert_eq!(starts.len(), 1);
    assert!(
        starts[0].contains(&format!("\"down\":[{}]", down_at_start.join(","))),
        "measurement_start disagrees with the timeline: {}",
        starts[0]
    );
}

#[test]
fn failure_events_integrate_to_per_server_availability() {
    for seed in [1_u64, 5, 9] {
        let cfg = faulty_cfg(seed);
        let report = run_simulation(&cfg).expect("faulty run");
        let timeline = report.timeline.as_ref().expect("record_timeline was on");
        let span = report.measured_span_s;
        let n = report.per_server_availability.len();

        // Replay the transitions. Thanks to the t = 0 seeding, a server
        // crashed before warm-up ended opens the span already down; a
        // server still down at the horizon accrues until the span closes.
        let mut downtime = vec![0.0_f64; n];
        let mut down_at: Vec<Option<f64>> = vec![None; n];
        for &(t, server, up) in &timeline.failure_events {
            let s = server as usize;
            if up {
                let start = down_at[s].take().expect("repair without a recorded crash");
                downtime[s] += t - start;
            } else {
                assert!(down_at[s].is_none(), "second crash without a repair between");
                down_at[s] = Some(t);
            }
        }
        for (s, open) in down_at.iter().enumerate() {
            if let Some(start) = open {
                downtime[s] += span - start;
            }
        }

        for (s, (&reported, &dt)) in
            report.per_server_availability.iter().zip(&downtime).enumerate()
        {
            let reconstructed = (1.0 - dt / span).clamp(0.0, 1.0);
            assert!(
                (reconstructed - reported).abs() < 1e-6,
                "seed {seed} server {s}: availability {reported} but failure_events \
                 integrate to {reconstructed}"
            );
        }
        assert!(
            report.per_server_availability.iter().any(|&a| a < 1.0),
            "seed {seed}: fault injection produced no measured downtime"
        );
    }
}
