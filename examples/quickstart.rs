//! Quickstart: simulate the paper's champion (`DRR2-TTL/S_K`) against
//! classic DNS round-robin on a heterogeneous 7-server Web site, and print
//! the load-balance and user-experience metrics side by side.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geodns_core::{format_table, run_all, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn main() {
    // A 7-server site whose capacities differ by up to 35%, serving 500
    // clients across 20 Zipf-skewed domains (paper defaults, shortened run).
    let level = HeterogeneityLevel::H35;
    let algorithms = [
        Algorithm::rr(),           // what 1990s DNS servers actually did
        Algorithm::prr2_ttl(2),    // probabilistic routing + 2-class TTL
        Algorithm::drr2_ttl_s_k(), // the paper's best: per-domain, per-server TTL
    ];

    let configs: Vec<SimConfig> = algorithms
        .iter()
        .map(|&algorithm| {
            let mut cfg = SimConfig::paper_default(algorithm, level);
            cfg.duration_s = 3600.0; // one simulated hour
            cfg.warmup_s = 600.0;
            cfg.seed = 7;
            cfg
        })
        .collect();

    println!("simulating {} algorithms on a {level}-heterogeneous site …", configs.len());
    let reports = run_all(&configs).expect("paper defaults are valid");

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                format!("{:.3}", r.prob_max_util_lt(0.9)),
                format!("{:.3}", r.p98()),
                format!("{:.2}", r.mean_util()),
                format!("{:.0} ms", r.page_response_mean_s * 1e3),
                format!("{:.0} ms", r.page_response_p95_s * 1e3),
                format!("{:.1}%", r.dns_control_fraction * 100.0),
            ]
        })
        .collect();

    println!();
    println!(
        "{}",
        format_table(
            &[
                "algorithm",
                "P(maxU<0.9)",
                "P(maxU<0.98)",
                "mean util",
                "page mean",
                "page p95",
                "DNS ctl"
            ],
            &rows
        )
    );
    println!(
        "reading: higher P(maxU<·) = fewer overload episodes. The DNS only controls a few\n\
         percent of requests — adaptive TTL wins by sizing each answer's validity, not by\n\
         routing more traffic."
    );

    let rr = &reports[0];
    let best = &reports[2];
    assert!(best.p98() > rr.p98(), "the adaptive scheme should beat round-robin");
}
