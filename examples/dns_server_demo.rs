//! DNS wire demo: the adaptive-TTL scheduler answering *real DNS packets*.
//!
//! Builds the in-memory authoritative server for `www.example.org` (7
//! heterogeneous Web servers, 4 client networks), fires queries from
//! different source networks, and prints the answers — showing the two
//! levers the paper pulls: which A record comes back, and what TTL it
//! carries.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example dns_server_demo
//! ```

use geodns_core::format_table;
use geodns_wire::{AuthoritativeServer, Message, Question};

fn main() {
    let mut server = AuthoritativeServer::example();
    println!("authoritative server up: {server:?}\n");

    let sources: [([u8; 4], &str); 4] = [
        ([10, 0, 0, 53], "hot domain (10.0/16, 8x the load of the coldest)"),
        ([10, 1, 0, 53], "warm domain (10.1/16)"),
        ([10, 2, 0, 53], "mild domain (10.2/16)"),
        ([10, 3, 0, 53], "cold domain (10.3/16)"),
    ];

    let mut rows = Vec::new();
    for (i, (src, label)) in sources.iter().enumerate() {
        // A few queries per source: watch the server rotate and the TTL
        // follow both the domain's weight and the chosen server's capacity.
        for q in 0..3 {
            let id = (i * 10 + q) as u16;
            let query = Message::query(id, Question::a("www.example.org"));
            let response_bytes =
                server.handle(&query.to_bytes(), *src, f64::from(id)).expect("well-formed query");
            let response = Message::parse(&response_bytes).expect("well-formed response");
            let answer = &response.answers[0];
            let addr = answer.a_addr().expect("A record");
            rows.push(vec![
                format!("{}.{}.{}.{}", src[0], src[1], src[2], src[3]),
                (*label).to_string(),
                format!("{}.{}.{}.{}", addr[0], addr[1], addr[2], addr[3]),
                format!("{} s", answer.ttl),
            ]);
        }
    }

    println!("{}", format_table(&["source NS", "network", "answer (A)", "TTL"], &rows));
    println!(
        "reading: every answer is a (server, TTL) pair chosen by DRR2-TTL/S_K — the hot\n\
         network's answers expire in seconds-to-minutes so its heavy hidden load keeps\n\
         moving, while the cold network may cache for much longer; within one network the\n\
         TTL also stretches with the capacity of the server handed out. This is the paper's\n\
         entire mechanism, on the wire."
    );

    // Also demonstrate the error paths a real deployment hits.
    let bad = Message::query(999, Question::a("ftp.example.org"));
    let nx = Message::parse(&server.handle(&bad.to_bytes(), [10, 0, 0, 53], 0.0).unwrap()).unwrap();
    println!("\nftp.example.org → {:?} (not our site)", nx.header.rcode);
    let foreign = Message::query(1000, Question::a("www.other.test"));
    let refused =
        Message::parse(&server.handle(&foreign.to_bytes(), [10, 0, 0, 53], 0.0).unwrap()).unwrap();
    println!("www.other.test  → {:?} (not our zone)", refused.header.rcode);
}
