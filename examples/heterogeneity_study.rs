//! Heterogeneity study: how does each scheduling family hold up as the
//! server park drifts from uniform hardware to a 65% capacity spread?
//!
//! This is the scenario the paper's introduction motivates: a Web site
//! grows by adding whatever machines are available, and the DNS scheduler
//! has to keep the mismatched park balanced.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example heterogeneity_study
//! ```

use geodns_core::{format_table, run_all, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn main() {
    let algorithms = [
        Algorithm::rr(),
        Algorithm::dal(),
        Algorithm::mrl(),
        Algorithm::prr2_ttl(2),
        Algorithm::prr2_ttl_k(),
        Algorithm::drr2_ttl_s_k(),
    ];

    let mut rows = Vec::new();
    for algorithm in algorithms {
        let configs: Vec<SimConfig> = HeterogeneityLevel::ALL
            .iter()
            .map(|&level| {
                let mut cfg = SimConfig::paper_default(algorithm, level);
                cfg.duration_s = 2400.0;
                cfg.warmup_s = 600.0;
                cfg.seed = 11;
                cfg
            })
            .collect();
        let reports = run_all(&configs).expect("valid configs");
        let mut row = vec![algorithm.name()];
        row.extend(reports.iter().map(|r| format!("{:.3}", r.p98())));
        rows.push(row);
    }

    println!("\nP(MaxUtilization < 0.98) by heterogeneity level\n");
    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(HeterogeneityLevel::ALL.iter().map(|l| l.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", format_table(&header_refs, &rows));

    println!(
        "takeaways (the paper's Figure 3 in table form):\n\
         • RR collapses as soon as capacities diverge — cached mappings keep feeding\n\
           the weak servers at the same rate as the strong ones.\n\
         • DAL/MRL, the homogeneous-site transplants, help a little but misjudge\n\
           heterogeneity because accumulated weights ignore TTL leverage.\n\
         • The TTL/K family stays near 1.0 until the spread passes ~50%; the coarse\n\
           two-class variants give most of the benefit with far less state."
    );
}
