//! Flash crowd: the busiest client domain suddenly runs 50% hotter than
//! the DNS believes (a proxy for a breaking-news audience pile-on), while
//! the scheduler keeps using stale hidden-load estimates.
//!
//! This is the paper's estimation-error robustness scenario (Figures 6–7)
//! told as an operational story, plus the fix a practitioner would deploy:
//! switch the estimator from stale oracle knowledge to live measurement.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example flash_crowd
//! ```

use geodns_core::{format_table, run_all, Algorithm, EstimatorKind, SimConfig};
use geodns_server::HeterogeneityLevel;

fn scenario(algorithm: Algorithm, error: f64, estimator: EstimatorKind) -> SimConfig {
    let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H50);
    cfg.duration_s = 2400.0;
    cfg.warmup_s = 600.0;
    cfg.seed = 23;
    cfg.workload.rate_error = error;
    cfg.estimator = estimator;
    cfg
}

fn main() {
    let algorithms = [
        Algorithm::prr2_ttl(2),    // coarse two-class adaptive TTL
        Algorithm::prr2_ttl_k(),   // fully per-domain adaptive TTL
        Algorithm::drr2_ttl_s_k(), // per-domain, per-server adaptive TTL
    ];

    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for &algorithm in &algorithms {
        // Calm day, perfect estimates.
        configs.push(scenario(algorithm, 0.0, EstimatorKind::Oracle));
        labels.push(format!("{} / calm", algorithm.name()));
        // Flash crowd, estimates gone stale.
        configs.push(scenario(algorithm, 0.5, EstimatorKind::Oracle));
        labels.push(format!("{} / flash+stale", algorithm.name()));
        // Flash crowd, live measured estimates (the practitioner's fix).
        configs.push(scenario(algorithm, 0.5, EstimatorKind::measured_default()));
        labels.push(format!("{} / flash+measured", algorithm.name()));
    }

    println!("simulating a 50% flash crowd on the busiest domain (heterogeneity 50%) …");
    let reports = run_all(&configs).expect("valid configs");

    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&reports)
        .map(|(label, r)| {
            vec![
                label.clone(),
                format!("{:.3}", r.p98()),
                format!("{:.3}", r.prob_max_util_lt(0.9)),
                format!("{:.0} ms", r.page_response_p95_s * 1e3),
            ]
        })
        .collect();
    println!();
    println!("{}", format_table(&["scenario", "P(maxU<0.98)", "P(maxU<0.9)", "page p95"], &rows));
    println!(
        "reading: per-domain TTL (TTL/K, TTL/S_K) barely notices the stale estimates —\n\
         the flash domain's answers already carried the shortest TTLs, so its extra load\n\
         redistributes quickly. The coarse TTL/2 split is the fragile one, exactly as the\n\
         paper reports; live measurement recovers most of the loss."
    );
}
