//! Capacity planning: how much total server capacity does each DNS
//! scheduling algorithm need to keep overload risk below a target?
//!
//! The business case for a smarter scheduler is hardware money: this
//! example sweeps the site's total capacity and reports, per algorithm,
//! the smallest capacity at which `P(maxU < 0.98) ≥ 0.9` — i.e. at most
//! 10% of 8-second windows see any server above 98% utilization.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use geodns_core::{format_table, run_all, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

const TARGET: f64 = 0.9;

fn main() {
    let algorithms = [Algorithm::rr(), Algorithm::prr2_ttl(2), Algorithm::drr2_ttl_s_k()];
    let capacities = [500.0, 550.0, 600.0, 650.0, 700.0, 800.0];

    // One parallel batch: every (algorithm, capacity) pair.
    let mut configs = Vec::new();
    for &algorithm in &algorithms {
        for &capacity in &capacities {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.duration_s = 2400.0;
            cfg.warmup_s = 600.0;
            cfg.seed = 31;
            cfg.total_capacity = capacity;
            configs.push(cfg);
        }
    }
    println!(
        "sweeping {} capacity points × {} algorithms (offered load fixed at ≈333 hits/s) …",
        capacities.len(),
        algorithms.len()
    );
    let reports = run_all(&configs).expect("valid configs");

    let mut rows = Vec::new();
    for (a, &algorithm) in algorithms.iter().enumerate() {
        let mut row = vec![algorithm.name()];
        let mut needed: Option<f64> = None;
        for (c, &capacity) in capacities.iter().enumerate() {
            let r = &reports[a * capacities.len() + c];
            let p = r.p98();
            if needed.is_none() && p >= TARGET {
                needed = Some(capacity);
            }
            row.push(format!("{p:.3}"));
        }
        row.push(match needed {
            Some(c) => format!("{c:.0} hits/s"),
            None => "> 800".to_string(),
        });
        rows.push(row);
    }

    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(capacities.iter().map(|c| format!("C={c:.0}")));
    header.push(format!("needed for P≥{TARGET}"));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    println!("\nP(MaxUtilization < 0.98) by total site capacity (heterogeneity 35%)\n");
    println!("{}", format_table(&header_refs, &rows));
    println!(
        "reading: the rightmost column is the provisioning answer. The gap between RR\n\
         and DRR2-TTL/S_K is capacity you don't have to buy — the paper's scheduling\n\
         gain expressed in hardware."
    );
}
