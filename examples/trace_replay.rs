//! Trace replay: compare scheduling algorithms on a *frozen* request
//! stream — every session start, page count, hit burst and think time is
//! identical across runs, so any difference in the outcome is pure
//! scheduling.
//!
//! This is how you would drive the model from measured logs: serialize
//! your sessions into the `Trace` line format and replay.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use geodns_core::{format_table, run_trace, Algorithm, SimConfig, Trace};
use geodns_server::HeterogeneityLevel;

fn main() {
    // One config defines the site and the workload shape…
    let mut base = SimConfig::paper_default(Algorithm::rr(), HeterogeneityLevel::H50);
    base.duration_s = 2400.0;
    base.warmup_s = 400.0;
    base.seed = 17;

    // …and one trace freezes the actual demand.
    let workload = base.workload.build().expect("paper defaults build");
    let horizon = base.warmup_s + base.duration_s;
    let trace = Trace::generate(&workload, horizon, 0xACE5);
    println!(
        "frozen trace: {} sessions, {} hits over {:.0} s",
        trace.len(),
        trace.total_hits(),
        horizon
    );

    // The serialized form round-trips — this is the import path for real logs.
    let text = trace.to_text();
    let trace = Trace::from_text(&text).expect("own serialization parses");
    println!("trace text form: {} bytes\n", text.len());

    let mut rows = Vec::new();
    for algorithm in [
        Algorithm::rr(),
        Algorithm::dal(),
        Algorithm::prr2_ttl(2),
        Algorithm::prr2_ttl_k(),
        Algorithm::drr2_ttl_s_k(),
    ] {
        let mut cfg = base.clone();
        cfg.algorithm = algorithm;
        let report = run_trace(&cfg, &trace).expect("valid replay");
        rows.push(vec![
            report.algorithm.clone(),
            format!("{:.3}", report.p98()),
            format!("{:.3}", report.prob_max_util_lt(0.9)),
            format!("{:.3}", report.mean_util()),
            format!("{}", report.hits_completed),
        ]);
    }

    println!(
        "{}",
        format_table(
            &["algorithm", "P(maxU<0.98)", "P(maxU<0.9)", "mean util", "hits done"],
            &rows
        )
    );
    println!(
        "reading: the 'hits done' column barely moves — the demand is literally the same\n\
         stream — while the overload columns spread exactly like the paper's figures.\n\
         With a frozen trace, every gap is scheduling, not sampling noise."
    );
}
