//! Diurnal cycle: a geographically concentrated audience swells and ebbs
//! over the day (±30% around the mean, 2-hour period compressed for the
//! example), and the DNS runs on *measured* hidden-load estimates — the
//! fully realistic deployment.
//!
//! Shows the extension machinery end to end: [`RateProfile::Diurnal`]
//! drives the workload, the EMA estimator tracks it, and the replication
//! runner ([`run_replications`]) attaches paper-style 95% confidence
//! intervals so the comparison is statistically honest.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example diurnal
//! ```

use geodns_core::{
    format_table, run_replications, Algorithm, EstimatorKind, RateProfile, SimConfig,
};
use geodns_server::HeterogeneityLevel;

fn main() {
    let algorithms = [Algorithm::rr(), Algorithm::prr2_ttl(2), Algorithm::drr2_ttl_s_k()];

    let mut rows = Vec::new();
    for algorithm in algorithms {
        let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
        cfg.duration_s = 7200.0; // one full cycle
        cfg.warmup_s = 600.0;
        cfg.seed = 99;
        cfg.estimator = EstimatorKind::measured_default();
        cfg.workload.profile = RateProfile::Diurnal { amplitude: 0.3, period_s: 7200.0 };

        let p98 = run_replications(&cfg, 5, |r| r.p98()).expect("valid config");
        let util = run_replications(&cfg, 5, |r| r.mean_util()).expect("valid config");

        rows.push(vec![
            algorithm.name(),
            format!("{:.3} ± {:.3}", p98.mean, p98.half_width_95),
            format!("{:.3} ± {:.3}", util.mean, util.half_width_95),
            format!("{:.1}%", 100.0 * p98.relative_precision()),
        ]);
    }

    println!("\nDiurnal ±30% load, measured estimator, 5 replications each\n");
    println!(
        "{}",
        format_table(
            &["algorithm", "P(maxU<0.98) 95% CI", "mean util 95% CI", "rel. precision"],
            &rows
        )
    );
    println!(
        "reading: even with the hidden loads breathing ±30% over the cycle and the DNS\n\
         learning them from server counters, the adaptive-TTL ranking holds — and the\n\
         confidence intervals show the gap is signal, not seed luck (the paper reports\n\
         the same ≤4%-of-mean precision on its 5-hour runs)."
    );
}
