//! Property-based tests for the name-server cache layer.

use geodns_nameserver::{MinTtlBehavior, NsCache};
use geodns_simcore::SimTime;
use proptest::prelude::*;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

proptest! {
    /// A cached entry answers exactly within `[insert, insert + ttl)`.
    #[test]
    fn expiry_is_exact(ttl in 0.1f64..1000.0, insert_at in 0.0f64..1000.0, probe in 0.0f64..3000.0) {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 5, ttl, t(insert_at));
        let hit = ns.lookup(0, t(probe));
        let should_hit = probe >= 0.0 && probe < insert_at + ttl && probe >= insert_at;
        // Probes before the insert can't know the future entry — but our
        // single-probe test only probes after inserting, so "before" means
        // an entry that is already live from insert_at regardless.
        if probe >= insert_at {
            prop_assert_eq!(
                hit.is_some(),
                should_hit,
                "probe {}, window [{}, {})",
                probe,
                insert_at,
                insert_at + ttl
            );
        }
    }

    /// Clamping never shortens a TTL; the effective TTL is always at least
    /// the proposed one under `ClampToMin`.
    #[test]
    fn clamp_monotone(proposed in 0.0f64..500.0, min_ttl in 0.0f64..500.0) {
        let clamp = MinTtlBehavior::ClampToMin { min_ttl_s: min_ttl };
        let eff = clamp.effective_ttl(proposed);
        prop_assert!(eff >= proposed);
        prop_assert!(eff >= min_ttl);
        prop_assert!((eff - proposed.max(min_ttl)).abs() < 1e-12);
    }

    /// Cooperative behaviour is the identity.
    #[test]
    fn cooperative_identity(proposed in 0.0f64..1e6) {
        prop_assert_eq!(MinTtlBehavior::Cooperative.effective_ttl(proposed), proposed);
    }

    /// Cache statistics count every lookup exactly once.
    #[test]
    fn stats_count_everything(ops in prop::collection::vec((0usize..4, any::<bool>()), 1..200)) {
        let mut ns = NsCache::new(4, MinTtlBehavior::Cooperative);
        let mut now = 0.0;
        let mut lookups = 0u64;
        for (domain, do_insert) in ops {
            now += 1.0;
            if do_insert {
                ns.insert(domain, 1, 50.0, t(now));
            } else {
                let _ = ns.lookup(domain, t(now));
                lookups += 1;
            }
        }
        prop_assert_eq!(ns.stats().total(), lookups);
        let f = ns.stats().miss_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Domains never leak into each other.
    #[test]
    fn domain_isolation(domain in 0usize..8, other in 0usize..8, ttl in 1.0f64..100.0) {
        prop_assume!(domain != other);
        let mut ns = NsCache::new(8, MinTtlBehavior::Cooperative);
        ns.insert(domain, 3, ttl, t(0.0));
        prop_assert_eq!(ns.peek(other, t(0.5)), None);
        prop_assert_eq!(ns.peek(domain, t(0.5)), Some(3));
    }
}
