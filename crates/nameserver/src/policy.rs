//! Name-server TTL acceptance behaviour.

use serde::{Deserialize, Serialize};

/// How a name server treats the TTL proposed by the DNS scheduler.
///
/// The paper: "Each NS caches the name-to-address mapping for the TTL period
/// or for a default value if the decided TTL is considered too small. Since
/// there does not exist a common TTL lower bound …, we consider the worst
/// case scenarios, where all NSs become non-cooperative if the proposed TTL
/// is lower than a given minimum threshold."
///
/// # Examples
///
/// ```
/// use geodns_nameserver::MinTtlBehavior;
///
/// let coop = MinTtlBehavior::Cooperative;
/// assert_eq!(coop.effective_ttl(12.0), 12.0);
///
/// let clamp = MinTtlBehavior::ClampToMin { min_ttl_s: 60.0 };
/// assert_eq!(clamp.effective_ttl(12.0), 60.0);
/// assert_eq!(clamp.effective_ttl(240.0), 240.0);
///
/// let dflt = MinTtlBehavior::DefaultOnSmall { min_ttl_s: 60.0, default_ttl_s: 300.0 };
/// assert_eq!(dflt.effective_ttl(12.0), 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum MinTtlBehavior {
    /// The NS honours any TTL the DNS proposes.
    #[default]
    Cooperative,
    /// Worst case of §5.2: TTLs below `min_ttl_s` are raised to it.
    ClampToMin {
        /// The NS's own minimum accepted TTL, seconds.
        min_ttl_s: f64,
    },
    /// TTLs below `min_ttl_s` are replaced by a fixed local default.
    DefaultOnSmall {
        /// The NS's own minimum accepted TTL, seconds.
        min_ttl_s: f64,
        /// The default TTL substituted for too-small proposals, seconds.
        default_ttl_s: f64,
    },
}

impl MinTtlBehavior {
    /// The TTL the NS will actually cache for, given the DNS's proposal.
    ///
    /// # Panics
    ///
    /// Panics if `proposed_ttl_s` is negative or NaN.
    #[must_use]
    pub fn effective_ttl(&self, proposed_ttl_s: f64) -> f64 {
        assert!(proposed_ttl_s >= 0.0, "proposed TTL must be non-negative, got {proposed_ttl_s}");
        match *self {
            MinTtlBehavior::Cooperative => proposed_ttl_s,
            MinTtlBehavior::ClampToMin { min_ttl_s } => proposed_ttl_s.max(min_ttl_s),
            MinTtlBehavior::DefaultOnSmall { min_ttl_s, default_ttl_s } => {
                if proposed_ttl_s < min_ttl_s {
                    default_ttl_s
                } else {
                    proposed_ttl_s
                }
            }
        }
    }

    /// Whether this behaviour ever overrides the DNS's choice.
    #[must_use]
    pub fn is_cooperative(&self) -> bool {
        matches!(self, MinTtlBehavior::Cooperative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooperative_passes_through() {
        let b = MinTtlBehavior::Cooperative;
        assert_eq!(b.effective_ttl(0.0), 0.0);
        assert_eq!(b.effective_ttl(1e6), 1e6);
        assert!(b.is_cooperative());
    }

    #[test]
    fn clamp_only_raises() {
        let b = MinTtlBehavior::ClampToMin { min_ttl_s: 120.0 };
        assert_eq!(b.effective_ttl(60.0), 120.0);
        assert_eq!(b.effective_ttl(120.0), 120.0);
        assert_eq!(b.effective_ttl(240.0), 240.0);
        assert!(!b.is_cooperative());
    }

    #[test]
    fn default_substitutes() {
        let b = MinTtlBehavior::DefaultOnSmall { min_ttl_s: 60.0, default_ttl_s: 600.0 };
        assert_eq!(b.effective_ttl(59.9), 600.0);
        assert_eq!(b.effective_ttl(60.0), 60.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_proposal_panics() {
        let _ = MinTtlBehavior::Cooperative.effective_ttl(-1.0);
    }
}
