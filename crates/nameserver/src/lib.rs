//! Name-server cache layer for the `geodns` simulation.
//!
//! In the paper's system model every client domain sits behind a local name
//! server (NS). When the DNS scheduler answers an address request it returns
//! `(server, TTL)`; the NS caches the mapping and resolves all further
//! requests from its domain locally until the TTL expires. This caching is
//! what makes the DNS an "atypical centralized scheduler" controlling only a
//! few percent of the requests.
//!
//! §5.2 additionally studies **non-cooperative name servers** that refuse
//! TTLs below their own minimum — the worst case being every NS clamping to
//! a common threshold. [`MinTtlBehavior`] models the cooperative case, the
//! clamping worst case, and the "substitute a default" variant the paper
//! mentions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod policy;

pub use cache::{CacheStats, NsCache, NsLookup};
pub use policy::MinTtlBehavior;
