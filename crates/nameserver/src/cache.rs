//! Per-domain name-server mapping caches.

use geodns_simcore::SimTime;
use serde::{Deserialize, Serialize};

use crate::MinTtlBehavior;

/// Hit/miss statistics of the NS cache layer. The miss fraction is exactly
/// the share of requests the DNS scheduler directly controls — the paper
/// observes it is "often below 4%" at the request level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Resolutions answered from the cache.
    pub hits: u64,
    /// Resolutions that had to go to the DNS.
    pub misses: u64,
}

impl CacheStats {
    /// Total resolutions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// The fraction of resolutions that reached the DNS (`0` when empty).
    #[must_use]
    pub fn miss_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }
}

/// The outcome of one NS cache lookup, distinguishing the two miss causes
/// a cache-behaviour trace cares about: a domain that was never resolved
/// (`MissCold`) versus an entry whose TTL ran out (`MissExpired`). Both
/// count as misses in [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NsLookup {
    /// The entry was live: the cached server and its expiry.
    Hit {
        /// The cached server.
        server: usize,
        /// When the entry expires.
        expiry: SimTime,
    },
    /// The domain has never been cached.
    MissCold,
    /// The entry existed but its TTL had expired.
    MissExpired,
}

/// The name-server caches of all `K` domains: one `(server, expiry)` entry
/// per domain, refreshed through the DNS on expiry.
///
/// # Examples
///
/// ```
/// use geodns_nameserver::{NsCache, MinTtlBehavior};
/// use geodns_simcore::SimTime;
///
/// let mut ns = NsCache::new(2, MinTtlBehavior::Cooperative);
/// assert_eq!(ns.lookup(0, SimTime::ZERO), None, "cold cache misses");
/// ns.insert(0, 5, 240.0, SimTime::ZERO);
/// assert_eq!(ns.lookup(0, SimTime::from_secs(100.0)), Some(5));
/// assert_eq!(ns.lookup(0, SimTime::from_secs(240.0)), None, "expired");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NsCache {
    entries: Vec<Option<(usize, SimTime)>>,
    behaviors: Vec<MinTtlBehavior>,
    stats: CacheStats,
}

impl NsCache {
    /// Creates cold caches for `n_domains` domains, all applying the same
    /// TTL-acceptance behaviour (the paper's worst case is uniform
    /// non-cooperation).
    #[must_use]
    pub fn new(n_domains: usize, behavior: MinTtlBehavior) -> Self {
        NsCache {
            entries: vec![None; n_domains],
            behaviors: vec![behavior; n_domains],
            stats: CacheStats::default(),
        }
    }

    /// Creates cold caches with a *per-domain* TTL-acceptance behaviour —
    /// the realistic Internet mix where only some name servers are
    /// non-cooperative (extension beyond the paper's uniform worst case).
    ///
    /// # Panics
    ///
    /// Panics if `behaviors` is empty.
    #[must_use]
    pub fn with_behaviors(behaviors: Vec<MinTtlBehavior>) -> Self {
        assert!(!behaviors.is_empty(), "need at least one domain");
        NsCache { entries: vec![None; behaviors.len()], behaviors, stats: CacheStats::default() }
    }

    /// The TTL-acceptance behaviour of domain `d`'s name server.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn behavior(&self, d: usize) -> MinTtlBehavior {
        self.behaviors[d]
    }

    /// Resolves a name for domain `d` at time `now`: returns the cached
    /// server if the entry is live, otherwise `None` (the caller must query
    /// the DNS and [`insert`](Self::insert) the answer).
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn lookup(&mut self, d: usize, now: SimTime) -> Option<usize> {
        self.lookup_with_expiry(d, now).map(|(server, _)| server)
    }

    /// Like [`lookup`](Self::lookup), but also returns the entry's expiry —
    /// what a TTL-honouring client cache needs.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn lookup_with_expiry(&mut self, d: usize, now: SimTime) -> Option<(usize, SimTime)> {
        match self.lookup_with_outcome(d, now) {
            NsLookup::Hit { server, expiry } => Some((server, expiry)),
            NsLookup::MissCold | NsLookup::MissExpired => None,
        }
    }

    /// Like [`lookup_with_expiry`](Self::lookup_with_expiry), but reports
    /// *why* a miss missed — cold versus expired — for observability.
    /// Statistics accounting is identical to the other lookup methods.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn lookup_with_outcome(&mut self, d: usize, now: SimTime) -> NsLookup {
        match self.entries[d] {
            Some((server, expiry)) if now < expiry => {
                self.stats.hits += 1;
                NsLookup::Hit { server, expiry }
            }
            Some(_) => {
                self.stats.misses += 1;
                NsLookup::MissExpired
            }
            None => {
                self.stats.misses += 1;
                NsLookup::MissCold
            }
        }
    }

    /// Caches the DNS's answer `(server, proposed_ttl_s)` for domain `d` at
    /// time `now`, applying the NS's TTL-acceptance behaviour. Returns the
    /// effective TTL actually used.
    ///
    /// TTL edge semantics (which the wire layer's ≥ 1 s clamp is keyed
    /// to): an effective TTL of exactly **zero** stores an entry that is
    /// already expired — it never answers a lookup (the subsequent miss
    /// is [`NsLookup::MissExpired`], not cold) — and a **negative** TTL is
    /// a caller bug and panics. The authoritative wire front end therefore
    /// never emits either: it clamps all answers to at least 1 s.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range or the TTL is negative.
    pub fn insert(&mut self, d: usize, server: usize, proposed_ttl_s: f64, now: SimTime) -> f64 {
        assert!(proposed_ttl_s >= 0.0, "negative TTL {proposed_ttl_s} proposed for domain {d}");
        let ttl = self.behaviors[d].effective_ttl(proposed_ttl_s);
        self.entries[d] = Some((server, now + ttl));
        ttl
    }

    /// Peeks at the live entry for domain `d` without touching statistics.
    #[must_use]
    pub fn peek(&self, d: usize, now: SimTime) -> Option<usize> {
        match self.entries[d] {
            Some((server, expiry)) if now < expiry => Some(server),
            _ => None,
        }
    }

    /// Invalidates domain `d`'s entry (e.g. on an administrative flush).
    pub fn invalidate(&mut self, d: usize) {
        self.entries[d] = None;
    }

    /// Hit/miss statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of domains.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn cold_cache_misses_then_hits() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        assert_eq!(ns.lookup(0, t(0.0)), None);
        ns.insert(0, 3, 100.0, t(0.0));
        assert_eq!(ns.lookup(0, t(50.0)), Some(3));
        assert_eq!(ns.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(ns.stats().miss_fraction(), 0.5);
    }

    #[test]
    fn expiry_is_exclusive() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 1, 10.0, t(0.0));
        assert_eq!(ns.lookup(0, t(9.999)), Some(1));
        assert_eq!(ns.lookup(0, t(10.0)), None);
    }

    #[test]
    fn reinsert_overwrites() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 1, 10.0, t(0.0));
        ns.insert(0, 2, 10.0, t(5.0));
        assert_eq!(ns.peek(0, t(12.0)), Some(2), "refreshed entry lives to t=15");
    }

    #[test]
    fn non_cooperative_clamp_extends_life() {
        let mut ns = NsCache::new(1, MinTtlBehavior::ClampToMin { min_ttl_s: 100.0 });
        let eff = ns.insert(0, 1, 10.0, t(0.0));
        assert_eq!(eff, 100.0);
        assert_eq!(ns.peek(0, t(50.0)), Some(1));
    }

    #[test]
    #[should_panic(expected = "negative TTL")]
    fn negative_ttl_panics() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 1, -1.0, t(0.0));
    }

    #[test]
    fn zero_ttl_never_caches() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 1, 0.0, t(5.0));
        assert_eq!(ns.lookup(0, t(5.0)), None);
    }

    #[test]
    fn zero_ttl_entry_is_expired_not_cold() {
        // The documented zero-TTL semantics the wire clamp is keyed to: a
        // zero-TTL insert is visible only as an already-expired entry.
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 1, 0.0, t(5.0));
        assert_eq!(ns.lookup_with_outcome(0, t(5.0)), NsLookup::MissExpired);
        assert_eq!(ns.lookup_with_outcome(0, t(1000.0)), NsLookup::MissExpired);
        // Whereas a 1 s TTL — the wire layer's clamp floor — does answer.
        ns.insert(0, 2, 1.0, t(5.0));
        assert_eq!(ns.lookup(0, t(5.5)), Some(2));
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        ns.insert(0, 1, 1000.0, t(0.0));
        ns.invalidate(0);
        assert_eq!(ns.lookup(0, t(1.0)), None);
    }

    #[test]
    fn domains_are_independent() {
        let mut ns = NsCache::new(3, MinTtlBehavior::Cooperative);
        ns.insert(1, 7, 100.0, t(0.0));
        assert_eq!(ns.peek(0, t(1.0)), None);
        assert_eq!(ns.peek(1, t(1.0)), Some(7));
        assert_eq!(ns.peek(2, t(1.0)), None);
        assert_eq!(ns.num_domains(), 3);
    }

    #[test]
    fn outcome_distinguishes_cold_from_expired() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        assert_eq!(ns.lookup_with_outcome(0, t(0.0)), NsLookup::MissCold);
        ns.insert(0, 3, 10.0, t(0.0));
        assert_eq!(ns.lookup_with_outcome(0, t(5.0)), NsLookup::Hit { server: 3, expiry: t(10.0) });
        assert_eq!(ns.lookup_with_outcome(0, t(10.0)), NsLookup::MissExpired);
        assert_eq!(ns.stats(), CacheStats { hits: 1, misses: 2 }, "stats match plain lookups");
    }

    #[test]
    fn reset_stats_clears() {
        let mut ns = NsCache::new(1, MinTtlBehavior::Cooperative);
        let _ = ns.lookup(0, t(0.0));
        ns.reset_stats();
        assert_eq!(ns.stats().total(), 0);
    }

    #[test]
    fn mixed_behaviors_apply_per_domain() {
        let mut ns = NsCache::with_behaviors(vec![
            MinTtlBehavior::Cooperative,
            MinTtlBehavior::ClampToMin { min_ttl_s: 100.0 },
        ]);
        assert_eq!(ns.insert(0, 1, 10.0, t(0.0)), 10.0, "cooperative NS honours 10 s");
        assert_eq!(ns.insert(1, 1, 10.0, t(0.0)), 100.0, "non-cooperative NS clamps");
        assert!(ns.behavior(0).is_cooperative());
        assert!(!ns.behavior(1).is_cooperative());
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn with_behaviors_rejects_empty() {
        let _ = NsCache::with_behaviors(vec![]);
    }
}
