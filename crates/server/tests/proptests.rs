//! Property-based tests for the Web-server model.

use geodns_server::{AlarmMonitor, CapacityPlan, Hit, UtilizationMonitor, WebServer};
use geodns_simcore::SimTime;
use proptest::prelude::*;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

proptest! {
    /// Hits are conserved: arrivals = completions + still-queued, FCFS
    /// order preserved, busy flag consistent with queue contents.
    #[test]
    fn server_conserves_hits(ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut server = WebServer::new(0, 50.0, 3, t(0.0)).unwrap();
        let mut now = 0.0;
        let mut next_client = 0usize;
        let mut expected: std::collections::VecDeque<usize> = Default::default();

        for arrive in ops {
            now += 0.01;
            if arrive {
                server.arrive(Hit { client: next_client, domain: next_client % 3, last_of_page: false }, t(now));
                expected.push_back(next_client);
                next_client += 1;
            } else if server.is_busy() {
                let (hit, more) = server.depart(t(now));
                let want = expected.pop_front().unwrap();
                prop_assert_eq!(hit.client, want, "FCFS violated");
                prop_assert_eq!(more, !expected.is_empty());
            }
        }
        prop_assert_eq!(server.queue_len(), expected.len());
        prop_assert_eq!(server.hits_arrived(), next_client as u64);
        prop_assert_eq!(server.hits_completed() + server.queue_len() as u64, next_client as u64);
        prop_assert_eq!(server.is_busy(), !expected.is_empty());
    }

    /// Window utilization is always within [0, 1] no matter the busy
    /// pattern, and the lifetime utilization tracks the window average.
    #[test]
    fn utilization_always_physical(
        transitions in prop::collection::vec((0.0f64..100.0, any::<bool>()), 0..50),
    ) {
        let mut m = UtilizationMonitor::new(t(0.0));
        let mut times: Vec<(f64, bool)> = transitions;
        times.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(at, busy) in &times {
            m.set_busy(t(at), busy);
        }
        let u = m.close_window(t(101.0));
        prop_assert!((0.0..=1.0).contains(&u), "window util {u}");
        let lifetime = m.lifetime_utilization(t(101.0));
        prop_assert!((0.0..=1.0).contains(&lifetime));
    }

    /// The alarm monitor emits strictly alternating signals, starting with
    /// an alarm, for any observation stream.
    #[test]
    fn alarm_signals_alternate(utils in prop::collection::vec(0.0f64..1.0, 1..200), theta in 0.1f64..0.99) {
        use geodns_server::Signal;
        let mut a = AlarmMonitor::new(theta, 0.0).unwrap();
        let mut last: Option<Signal> = None;
        for u in utils {
            if let Some(sig) = a.observe(u) {
                match (last, sig) {
                    (None, Signal::Alarm) => {}
                    (Some(Signal::Alarm), Signal::Normal) => {}
                    (Some(Signal::Normal), Signal::Alarm) => {}
                    (prev, cur) => prop_assert!(false, "bad sequence: {prev:?} then {cur:?}"),
                }
                last = Some(sig);
            }
        }
    }

    /// Capacity plans conserve total capacity and keep servers ordered.
    #[test]
    fn capacity_plans_are_consistent(
        tail in prop::collection::vec(0.05f64..1.0, 0..10),
        total in 10.0f64..10_000.0,
    ) {
        let mut relative = vec![1.0];
        let mut sorted = tail;
        sorted.sort_by(|a, b| b.total_cmp(a));
        relative.extend(sorted);
        let plan = CapacityPlan::from_relative(relative.clone(), total).unwrap();
        prop_assert!((plan.total_capacity() - total).abs() < 1e-6 * total);
        for i in 1..plan.num_servers() {
            prop_assert!(plan.absolute(i) <= plan.absolute(i - 1) + 1e-9);
        }
        prop_assert!(plan.power_ratio() >= 1.0);
        prop_assert!((plan.max_difference() - (1.0 - relative.last().unwrap())).abs() < 1e-12);
    }
}
