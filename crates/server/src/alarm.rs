//! The paper's asynchronous alarm feedback mechanism.

use serde::{Deserialize, Serialize};

/// A load signal a server sends to the DNS (paper §2):
///
/// > "Each server periodically calculates its utilization and checks whether
/// > it has exceeded a given alarm threshold θ. When this occurs, the server
/// > sends an alarm signal to the DNS, while a normal signal is sent when
/// > its utilization level returns below the threshold."
///
/// The fault-injection extension reuses the same delayed channel for
/// liveness transitions: a crashing server emits [`Signal::Down`], a
/// repaired one [`Signal::Up`]. Liveness is tracked separately from the
/// alarm state at the DNS, so an alarm clearing never resurrects a dead
/// server and a repair never clears an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// The server crossed the alarm threshold and should be excluded from
    /// scheduling.
    Alarm,
    /// The server's utilization dropped back below the threshold.
    Normal,
    /// The server crashed and answers nothing (fault injection).
    Down,
    /// The server finished repair and serves again (fault injection).
    Up,
}

/// Edge-triggered alarm logic for one server.
///
/// Feed it the periodic utilization observations; it emits a [`Signal`]
/// only on threshold crossings, exactly like the paper's mechanism (no
/// signal is re-sent while the state is unchanged). An optional hysteresis
/// gap suppresses signal flapping around the threshold.
///
/// # Examples
///
/// ```
/// use geodns_server::{AlarmMonitor, Signal};
///
/// let mut a = AlarmMonitor::new(0.9, 0.0).unwrap();
/// assert_eq!(a.observe(0.85), None);
/// assert_eq!(a.observe(0.95), Some(Signal::Alarm));
/// assert_eq!(a.observe(0.97), None, "still alarmed: no duplicate signal");
/// assert_eq!(a.observe(0.80), Some(Signal::Normal));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmMonitor {
    threshold: f64,
    hysteresis: f64,
    alarmed: bool,
    alarms_raised: u64,
}

impl AlarmMonitor {
    /// Creates a monitor with alarm threshold θ and a hysteresis gap: the
    /// alarm clears only when utilization drops below `threshold -
    /// hysteresis`. The paper's mechanism has no hysteresis (`0.0`).
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < threshold <= 1` and
    /// `0 <= hysteresis < threshold`.
    pub fn new(threshold: f64, hysteresis: f64) -> Result<Self, String> {
        if !(threshold.is_finite() && threshold > 0.0 && threshold <= 1.0) {
            return Err(format!("alarm threshold must be in (0, 1], got {threshold}"));
        }
        if !(hysteresis.is_finite() && hysteresis >= 0.0 && hysteresis < threshold) {
            return Err(format!("hysteresis must be in [0, threshold), got {hysteresis}"));
        }
        Ok(AlarmMonitor { threshold, hysteresis, alarmed: false, alarms_raised: 0 })
    }

    /// The alarm threshold θ.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether the server currently considers itself critically loaded.
    #[must_use]
    pub fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    /// Number of alarm signals raised so far.
    #[must_use]
    pub fn alarms_raised(&self) -> u64 {
        self.alarms_raised
    }

    /// Processes one periodic utilization observation, returning a signal
    /// only on a state change.
    pub fn observe(&mut self, utilization: f64) -> Option<Signal> {
        if !self.alarmed && utilization > self.threshold {
            self.alarmed = true;
            self.alarms_raised += 1;
            Some(Signal::Alarm)
        } else if self.alarmed && utilization < self.threshold - self.hysteresis {
            self.alarmed = false;
            Some(Signal::Normal)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_triggered() {
        let mut a = AlarmMonitor::new(0.9, 0.0).unwrap();
        assert_eq!(a.observe(0.95), Some(Signal::Alarm));
        assert_eq!(a.observe(0.99), None);
        assert_eq!(a.observe(0.91), None, "above threshold: stays alarmed");
        assert_eq!(a.observe(0.89), Some(Signal::Normal));
        assert_eq!(a.observe(0.50), None);
        assert_eq!(a.alarms_raised(), 1);
    }

    #[test]
    fn exact_threshold_does_not_alarm() {
        let mut a = AlarmMonitor::new(0.9, 0.0).unwrap();
        assert_eq!(a.observe(0.9), None, "crossing means strictly above");
    }

    #[test]
    fn hysteresis_suppresses_flapping() {
        let mut a = AlarmMonitor::new(0.9, 0.1).unwrap();
        assert_eq!(a.observe(0.95), Some(Signal::Alarm));
        assert_eq!(a.observe(0.85), None, "within the hysteresis band");
        assert_eq!(a.observe(0.79), Some(Signal::Normal));
    }

    #[test]
    fn counts_multiple_episodes() {
        let mut a = AlarmMonitor::new(0.5, 0.0).unwrap();
        for _ in 0..3 {
            assert_eq!(a.observe(0.6), Some(Signal::Alarm));
            assert_eq!(a.observe(0.4), Some(Signal::Normal));
        }
        assert_eq!(a.alarms_raised(), 3);
    }

    #[test]
    fn validation() {
        assert!(AlarmMonitor::new(0.0, 0.0).is_err());
        assert!(AlarmMonitor::new(1.1, 0.0).is_err());
        assert!(AlarmMonitor::new(0.9, 0.9).is_err());
        assert!(AlarmMonitor::new(0.9, -0.1).is_err());
        assert!(AlarmMonitor::new(1.0, 0.0).is_ok());
    }
}
