//! The Web server: a FCFS hit queue with capacity-dependent service.

use std::collections::VecDeque;

use geodns_simcore::SimTime;

use crate::{DomainCounters, UtilizationMonitor};

/// One HTTP request ("hit") queued at a server: the HTML page or one of its
/// embedded objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// The client that issued the hit.
    pub client: usize,
    /// The client's source domain.
    pub domain: usize,
    /// Whether this is the last hit of its page burst — its completion
    /// completes the page and restarts the client's think timer.
    pub last_of_page: bool,
}

/// One heterogeneous Web server: a single FCFS queue draining hits at its
/// absolute capacity `C_i` (hits/s), with windowed utilization monitoring
/// and per-domain accounting.
///
/// The server does not own the simulation clock or RNG: the world calls
/// [`arrive`](WebServer::arrive) when a hit arrives and
/// [`depart`](WebServer::depart) when the scheduled service completion
/// fires, and draws the service time itself (exponential with mean
/// `1 / capacity`).
///
/// # Examples
///
/// ```
/// use geodns_server::{WebServer, Hit};
/// use geodns_simcore::SimTime;
///
/// let mut s = WebServer::new(0, 100.0, 20, SimTime::ZERO).unwrap();
/// let hit = Hit { client: 0, domain: 3, last_of_page: true };
/// let starts_service = s.arrive(hit, SimTime::from_secs(1.0));
/// assert!(starts_service, "server was idle");
/// assert_eq!(s.queue_len(), 1);
/// let (done, more) = s.depart(SimTime::from_secs(1.02));
/// assert_eq!(done, hit);
/// assert!(!more);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WebServer {
    index: usize,
    capacity: f64,
    queue: VecDeque<Hit>,
    monitor: UtilizationMonitor,
    counters: DomainCounters,
    hits_arrived: u64,
    hits_completed: u64,
    epoch: u32,
}

impl WebServer {
    /// Creates server `index` with absolute capacity `capacity` hits/s,
    /// tracking `n_domains` source domains, starting idle at `start`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `capacity` is finite and positive.
    pub fn new(
        index: usize,
        capacity: f64,
        n_domains: usize,
        start: SimTime,
    ) -> Result<Self, String> {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(format!("server capacity must be > 0, got {capacity}"));
        }
        Ok(WebServer {
            index,
            capacity,
            queue: VecDeque::new(),
            monitor: UtilizationMonitor::new(start),
            counters: DomainCounters::new(n_domains),
            hits_arrived: 0,
            hits_completed: 0,
            epoch: 0,
        })
    }

    /// The server's index (0 = most powerful).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Absolute capacity `C_i` in hits/s.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Mean service time per hit, `1 / C_i` seconds.
    #[must_use]
    pub fn mean_service_time(&self) -> f64 {
        1.0 / self.capacity
    }

    /// Enqueues a hit at time `now`. Returns `true` when the server was
    /// idle, i.e. the caller must schedule this hit's service completion.
    pub fn arrive(&mut self, hit: Hit, now: SimTime) -> bool {
        self.hits_arrived += 1;
        self.counters.record(hit.domain);
        self.queue.push_back(hit);
        if self.queue.len() == 1 {
            self.monitor.set_busy(now, true);
            true
        } else {
            false
        }
    }

    /// Completes the in-service hit at time `now`, returning it and whether
    /// another hit is waiting (the caller then schedules the next
    /// completion).
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty — a departure event without an
    /// in-service hit is a model bug.
    pub fn depart(&mut self, now: SimTime) -> (Hit, bool) {
        let hit = self.queue.pop_front().expect("departure from an empty server");
        self.hits_completed += 1;
        let more = !self.queue.is_empty();
        if !more {
            self.monitor.set_busy(now, false);
        }
        (hit, more)
    }

    /// The server's *service epoch*: bumped on every crash so that
    /// departure events scheduled before the crash can be recognized as
    /// stale and dropped (the event engine has no cancellation).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Crashes the server at `now`: drops every queued hit (including the
    /// one in service), stops the busy clock, and bumps the epoch. Returns
    /// the dropped hits so the caller can account them as failed and
    /// reschedule their clients.
    pub fn crash_drain(&mut self, now: SimTime) -> Vec<Hit> {
        let mut dropped = Vec::new();
        self.crash_drain_into(now, &mut dropped);
        dropped
    }

    /// [`crash_drain`](Self::crash_drain) into a caller-provided buffer —
    /// the allocation-free form the simulation hot path uses (the buffer
    /// is appended to, not cleared).
    pub fn crash_drain_into(&mut self, now: SimTime, out: &mut Vec<Hit>) {
        if !self.queue.is_empty() {
            self.monitor.set_busy(now, false);
        }
        self.epoch = self.epoch.wrapping_add(1);
        out.extend(self.queue.drain(..));
    }

    /// Current queue length (including the hit in service).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the server is serving a hit.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Closes the current utilization window (the paper's 8-second check)
    /// and returns its utilization.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        self.monitor.close_window(now)
    }

    /// Lifetime average utilization.
    #[must_use]
    pub fn lifetime_utilization(&self, now: SimTime) -> f64 {
        self.monitor.lifetime_utilization(now)
    }

    /// Restarts lifetime utilization accounting (warm-up discard).
    pub fn reset_lifetime(&mut self, now: SimTime) {
        self.monitor.reset_lifetime(now);
    }

    /// Per-domain hit counters (the estimator's collection source).
    #[must_use]
    pub fn domain_counters(&self) -> &DomainCounters {
        &self.counters
    }

    /// Takes and resets the per-domain window counts.
    pub fn take_domain_counts(&mut self) -> Vec<u64> {
        self.counters.take()
    }

    /// Total hits that have arrived.
    #[must_use]
    pub fn hits_arrived(&self) -> u64 {
        self.hits_arrived
    }

    /// Total hits completed.
    #[must_use]
    pub fn hits_completed(&self) -> u64 {
        self.hits_completed
    }

    /// Outstanding work normalized by capacity: `queue_len / C_i` seconds —
    /// the signal behind the least-loaded baseline policy.
    #[must_use]
    pub fn normalized_backlog(&self) -> f64 {
        self.queue.len() as f64 / self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn hit(client: usize, domain: usize, last: bool) -> Hit {
        Hit { client, domain, last_of_page: last }
    }

    #[test]
    fn arrival_to_idle_server_starts_service() {
        let mut s = WebServer::new(0, 50.0, 4, t(0.0)).unwrap();
        assert!(s.arrive(hit(1, 2, false), t(1.0)));
        assert!(!s.arrive(hit(2, 2, false), t(1.5)), "second hit queues behind");
        assert_eq!(s.queue_len(), 2);
        assert!(s.is_busy());
    }

    #[test]
    fn fcfs_order() {
        let mut s = WebServer::new(0, 50.0, 4, t(0.0)).unwrap();
        s.arrive(hit(1, 0, false), t(0.0));
        s.arrive(hit(2, 0, false), t(0.0));
        s.arrive(hit(3, 0, true), t(0.0));
        let (h1, more1) = s.depart(t(0.1));
        assert_eq!((h1.client, more1), (1, true));
        let (h2, more2) = s.depart(t(0.2));
        assert_eq!((h2.client, more2), (2, true));
        let (h3, more3) = s.depart(t(0.3));
        assert_eq!((h3.client, more3), (3, false));
        assert!(!s.is_busy());
    }

    #[test]
    fn hit_conservation() {
        let mut s = WebServer::new(0, 50.0, 4, t(0.0)).unwrap();
        for i in 0..10 {
            s.arrive(hit(i, 0, false), t(0.0));
        }
        for _ in 0..10 {
            s.depart(t(1.0));
        }
        assert_eq!(s.hits_arrived(), 10);
        assert_eq!(s.hits_completed(), 10);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn utilization_tracks_busy_period() {
        let mut s = WebServer::new(0, 50.0, 4, t(0.0)).unwrap();
        s.arrive(hit(0, 0, true), t(2.0));
        s.depart(t(6.0));
        let u = s.sample_utilization(t(8.0));
        assert!((u - 0.5).abs() < 1e-12);
        // Next window is idle.
        assert_eq!(s.sample_utilization(t(16.0)), 0.0);
    }

    #[test]
    fn domain_accounting() {
        let mut s = WebServer::new(0, 50.0, 3, t(0.0)).unwrap();
        s.arrive(hit(0, 0, false), t(0.0));
        s.arrive(hit(1, 2, false), t(0.0));
        s.arrive(hit(2, 2, false), t(0.0));
        assert_eq!(s.domain_counters().counts(), &[1, 0, 2]);
        assert_eq!(s.take_domain_counts(), vec![1, 0, 2]);
        assert_eq!(s.domain_counters().total(), 0);
    }

    #[test]
    fn normalized_backlog_scales_with_capacity() {
        let mut fast = WebServer::new(0, 100.0, 1, t(0.0)).unwrap();
        let mut slow = WebServer::new(1, 50.0, 1, t(0.0)).unwrap();
        fast.arrive(hit(0, 0, false), t(0.0));
        slow.arrive(hit(0, 0, false), t(0.0));
        assert!(fast.normalized_backlog() < slow.normalized_backlog());
    }

    #[test]
    fn crash_drains_queue_and_bumps_epoch() {
        let mut s = WebServer::new(0, 50.0, 4, t(0.0)).unwrap();
        s.arrive(hit(1, 0, false), t(1.0));
        s.arrive(hit(2, 0, true), t(1.0));
        assert_eq!(s.epoch(), 0);
        let dropped = s.crash_drain(t(2.0));
        assert_eq!(dropped.len(), 2);
        assert_eq!(dropped[1], hit(2, 0, true));
        assert_eq!(s.queue_len(), 0);
        assert!(!s.is_busy());
        assert_eq!(s.epoch(), 1);
        // The busy clock stopped at the crash: 1 busy second out of 8.
        assert!((s.sample_utilization(t(8.0)) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn crash_of_idle_server_is_clean() {
        let mut s = WebServer::new(0, 50.0, 4, t(0.0)).unwrap();
        assert!(s.crash_drain(t(1.0)).is_empty());
        assert_eq!(s.epoch(), 1);
        assert!(s.arrive(hit(0, 0, true), t(2.0)), "serves again after repair");
    }

    #[test]
    #[should_panic(expected = "empty server")]
    fn departure_from_empty_panics() {
        let mut s = WebServer::new(0, 50.0, 1, t(0.0)).unwrap();
        let _ = s.depart(t(1.0));
    }

    #[test]
    fn rejects_bad_capacity() {
        assert!(WebServer::new(0, 0.0, 1, t(0.0)).is_err());
        assert!(WebServer::new(0, f64::NAN, 1, t(0.0)).is_err());
    }
}
