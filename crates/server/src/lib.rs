//! Heterogeneous Web server model for the `geodns` simulation.
//!
//! Models the paper's server side (§2, §4.1):
//!
//! * each of the `N` servers is a single FCFS queue draining *hits* with
//!   exponential service times at rate `C_i` (its absolute capacity in
//!   hits/s) — [`WebServer`];
//! * heterogeneity is expressed exactly as in the paper's Table 2: relative
//!   capacities `α_i = C_i / C_1`, scaled so the total site capacity is
//!   constant (500 hits/s by default) — [`CapacityPlan`],
//!   [`HeterogeneityLevel`];
//! * every 8 seconds each server computes its window utilization and feeds
//!   an asynchronous alarm mechanism: crossing the threshold θ upward emits
//!   an alarm signal to the DNS, dropping back emits a normal signal —
//!   [`UtilizationMonitor`], [`AlarmMonitor`], [`Signal`];
//! * servers count arriving hits per source domain — the raw material the
//!   DNS's hidden-load estimator periodically collects —
//!   [`DomainCounters`];
//! * an optional seeded crash/recovery process (exponential MTBF/MTTR, off
//!   by default) models server faults; crashes drop the queue and flow to
//!   the DNS as [`Signal::Down`]/[`Signal::Up`] over the same delayed
//!   channel as alarms — [`FailureProcess`], [`FailureSpec`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alarm;
mod capacity;
mod counters;
mod failure;
mod monitor;
mod webserver;

pub use alarm::{AlarmMonitor, Signal};
pub use capacity::{CapacityPlan, HeterogeneityLevel, ServerId};
pub use counters::DomainCounters;
pub use failure::{FailureProcess, FailureSpec};
pub use monitor::UtilizationMonitor;
pub use webserver::{Hit, WebServer};
