//! Per-domain request accounting.

use serde::{Deserialize, Serialize};

/// Counts hits received per source domain.
///
/// The paper's measured hidden-load estimation works "by having the servers
/// keep track of the number of incoming requests from each domain and the
/// DNS periodically collect the information" — this is the server-side half
/// of that mechanism.
///
/// # Examples
///
/// ```
/// use geodns_server::DomainCounters;
///
/// let mut c = DomainCounters::new(3);
/// c.record(0);
/// c.record(0);
/// c.record(2);
/// assert_eq!(c.counts(), &[2, 0, 1]);
/// let snapshot = c.take();
/// assert_eq!(snapshot, vec![2, 0, 1]);
/// assert_eq!(c.total(), 0, "take() resets the window");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainCounters {
    counts: Vec<u64>,
    lifetime: Vec<u64>,
}

impl DomainCounters {
    /// Creates counters for `n_domains` domains.
    #[must_use]
    pub fn new(n_domains: usize) -> Self {
        DomainCounters { counts: vec![0; n_domains], lifetime: vec![0; n_domains] }
    }

    /// Records one hit from domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn record(&mut self, d: usize) {
        self.counts[d] += 1;
        self.lifetime[d] += 1;
    }

    /// The per-domain counts of the current collection window.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total hits in the current window.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns the window counts and resets them (the DNS's periodic
    /// collection).
    pub fn take(&mut self) -> Vec<u64> {
        let taken = self.counts.clone();
        self.counts.iter_mut().for_each(|c| *c = 0);
        taken
    }

    /// Per-domain totals since construction (never reset by [`take`](Self::take)).
    #[must_use]
    pub fn lifetime(&self) -> &[u64] {
        &self.lifetime
    }

    /// Number of domains tracked.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_takes() {
        let mut c = DomainCounters::new(2);
        c.record(1);
        c.record(1);
        assert_eq!(c.total(), 2);
        assert_eq!(c.take(), vec![0, 2]);
        assert_eq!(c.total(), 0);
        c.record(0);
        assert_eq!(c.take(), vec![1, 0]);
    }

    #[test]
    fn lifetime_survives_takes() {
        let mut c = DomainCounters::new(2);
        c.record(0);
        let _ = c.take();
        c.record(0);
        c.record(1);
        assert_eq!(c.lifetime(), &[2, 1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_domain_panics() {
        let mut c = DomainCounters::new(1);
        c.record(1);
    }

    #[test]
    fn empty_counters() {
        let mut c = DomainCounters::new(0);
        assert_eq!(c.num_domains(), 0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.take(), Vec::<u64>::new());
    }
}
