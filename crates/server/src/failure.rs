//! Seeded server crash/recovery process (fault-injection extension).

use geodns_simcore::dist::{Distribution, Exponential};
use geodns_simcore::StreamRng;
use serde::{Deserialize, Serialize};

/// Parameters of the per-server failure process: exponentially distributed
/// time-between-failures and time-to-repair.
///
/// Off by default — the paper's model has perfectly reliable servers; the
/// process only runs when a simulation explicitly enables it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Mean up-time between crashes (MTBF), seconds.
    pub mtbf_s: f64,
    /// Mean down-time per crash (MTTR), seconds.
    pub mttr_s: f64,
}

impl FailureSpec {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message unless both means are finite and positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mtbf_s.is_finite() && self.mtbf_s > 0.0) {
            return Err(format!("MTBF must be > 0 s, got {}", self.mtbf_s));
        }
        if !(self.mttr_s.is_finite() && self.mttr_s > 0.0) {
            return Err(format!("MTTR must be > 0 s, got {}", self.mttr_s));
        }
        Ok(())
    }

    /// Long-run availability of a server under this process,
    /// `MTBF / (MTBF + MTTR)`.
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.mtbf_s / (self.mtbf_s + self.mttr_s)
    }
}

/// The alternating-renewal crash/recovery state machine of one server.
///
/// The world drives it: [`sample_uptime`](FailureProcess::sample_uptime)
/// yields the delay until the next crash, [`crash`](FailureProcess::crash)
/// marks the server down, [`sample_downtime`](FailureProcess::sample_downtime)
/// yields the repair delay, and [`recover`](FailureProcess::recover) brings
/// the server back. All draws come from whatever RNG stream the caller
/// dedicates to failures, so an idle process consumes nothing.
///
/// # Examples
///
/// ```
/// use geodns_server::{FailureProcess, FailureSpec};
/// use geodns_simcore::RngStreams;
///
/// let spec = FailureSpec { mtbf_s: 3600.0, mttr_s: 120.0 };
/// let mut p = FailureProcess::new(spec).unwrap();
/// let mut rng = RngStreams::new(7).stream("failures");
/// assert!(p.alive());
/// let up = p.sample_uptime(&mut rng);
/// assert!(up > 0.0);
/// p.crash();
/// assert!(!p.alive());
/// let down = p.sample_downtime(&mut rng);
/// assert!(down > 0.0);
/// p.recover();
/// assert!(p.alive());
/// assert_eq!(p.crashes(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProcess {
    spec: FailureSpec,
    uptime: Exponential,
    downtime: Exponential,
    alive: bool,
    crashes: u64,
}

impl FailureProcess {
    /// Creates the process in the *up* state.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec is invalid.
    pub fn new(spec: FailureSpec) -> Result<Self, String> {
        spec.validate()?;
        Ok(FailureProcess {
            spec,
            uptime: Exponential::new(1.0 / spec.mtbf_s),
            downtime: Exponential::new(1.0 / spec.mttr_s),
            alive: true,
            crashes: 0,
        })
    }

    /// The parameters the process was built from.
    #[must_use]
    pub fn spec(&self) -> FailureSpec {
        self.spec
    }

    /// Whether the server is currently up.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Number of crashes so far.
    #[must_use]
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Draws the next up-time (seconds until the coming crash).
    pub fn sample_uptime(&mut self, rng: &mut StreamRng) -> f64 {
        self.uptime.sample(rng)
    }

    /// Draws the next down-time (seconds until repair completes).
    pub fn sample_downtime(&mut self, rng: &mut StreamRng) -> f64 {
        self.downtime.sample(rng)
    }

    /// Marks the server down.
    ///
    /// # Panics
    ///
    /// Panics if the server is already down — the driving world must
    /// alternate crash and recovery events.
    pub fn crash(&mut self) {
        assert!(self.alive, "crash of an already-down server");
        self.alive = false;
        self.crashes += 1;
    }

    /// Marks the server up again.
    ///
    /// # Panics
    ///
    /// Panics if the server is already up.
    pub fn recover(&mut self) {
        assert!(!self.alive, "recovery of an already-up server");
        self.alive = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodns_simcore::RngStreams;

    fn spec() -> FailureSpec {
        FailureSpec { mtbf_s: 1000.0, mttr_s: 100.0 }
    }

    #[test]
    fn validation() {
        assert!(FailureSpec { mtbf_s: 0.0, mttr_s: 1.0 }.validate().is_err());
        assert!(FailureSpec { mtbf_s: 1.0, mttr_s: 0.0 }.validate().is_err());
        assert!(FailureSpec { mtbf_s: f64::NAN, mttr_s: 1.0 }.validate().is_err());
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn availability_formula() {
        assert!((spec().availability() - 1000.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn sample_means_match_spec() {
        let mut p = FailureProcess::new(spec()).unwrap();
        let mut rng = RngStreams::new(11).stream("failures");
        let n = 40_000;
        let up: f64 = (0..n).map(|_| p.sample_uptime(&mut rng)).sum::<f64>() / f64::from(n);
        let down: f64 = (0..n).map(|_| p.sample_downtime(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((up / 1000.0 - 1.0).abs() < 0.03, "mean uptime {up}");
        assert!((down / 100.0 - 1.0).abs() < 0.03, "mean downtime {down}");
    }

    #[test]
    fn alternates_and_counts() {
        let mut p = FailureProcess::new(spec()).unwrap();
        for _ in 0..3 {
            p.crash();
            p.recover();
        }
        assert_eq!(p.crashes(), 3);
        assert!(p.alive());
    }

    #[test]
    #[should_panic(expected = "already-down")]
    fn double_crash_panics() {
        let mut p = FailureProcess::new(spec()).unwrap();
        p.crash();
        p.crash();
    }

    #[test]
    #[should_panic(expected = "already-up")]
    fn double_recovery_panics() {
        let mut p = FailureProcess::new(spec()).unwrap();
        p.recover();
    }
}
