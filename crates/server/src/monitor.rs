//! Windowed busy-time utilization monitoring.

use geodns_simcore::SimTime;

/// Tracks a server's busy time and reports utilization over fixed sampling
/// windows (the paper's 8-second utilization interval).
///
/// Utilization of a window is the fraction of the window during which the
/// server was serving at least one hit, so it is always in `[0, 1]` — the
/// quantity whose per-window maximum across servers is the paper's headline
/// metric.
///
/// # Examples
///
/// ```
/// use geodns_server::UtilizationMonitor;
/// use geodns_simcore::SimTime;
///
/// let mut m = UtilizationMonitor::new(SimTime::ZERO);
/// m.set_busy(SimTime::from_secs(2.0), true);
/// m.set_busy(SimTime::from_secs(6.0), false);
/// let u = m.close_window(SimTime::from_secs(8.0));
/// assert!((u - 0.5).abs() < 1e-12, "busy 4 s of an 8 s window");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationMonitor {
    window_start: SimTime,
    busy_accum: f64,
    busy_since: Option<SimTime>,
    lifetime_busy: f64,
    lifetime_start: SimTime,
}

impl UtilizationMonitor {
    /// Creates a monitor whose first window starts at `start`, with the
    /// server idle.
    #[must_use]
    pub fn new(start: SimTime) -> Self {
        UtilizationMonitor {
            window_start: start,
            busy_accum: 0.0,
            busy_since: None,
            lifetime_busy: 0.0,
            lifetime_start: start,
        }
    }

    /// Records a busy/idle transition at time `now`. Redundant transitions
    /// (busy→busy) are ignored.
    pub fn set_busy(&mut self, now: SimTime, busy: bool) {
        match (self.busy_since, busy) {
            (None, true) => self.busy_since = Some(now),
            (Some(since), false) => {
                let span = now.since(since);
                self.busy_accum += span;
                self.lifetime_busy += span;
                self.busy_since = None;
            }
            _ => {}
        }
    }

    /// Whether the server is currently marked busy.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Closes the current window at `now`, returning its utilization and
    /// starting the next window. Returns the current busy state as
    /// utilization when the window has zero length.
    pub fn close_window(&mut self, now: SimTime) -> f64 {
        let window = now.since(self.window_start);
        // Fold any in-progress busy period into the window.
        if let Some(since) = self.busy_since {
            let span = now.since(since);
            self.busy_accum += span;
            self.lifetime_busy += span;
            self.busy_since = Some(now);
        }
        let util = if window > 0.0 {
            (self.busy_accum / window).clamp(0.0, 1.0)
        } else if self.busy_since.is_some() {
            1.0
        } else {
            0.0
        };
        self.window_start = now;
        self.busy_accum = 0.0;
        util
    }

    /// The lifetime average utilization since construction (or the last
    /// [`reset_lifetime`](Self::reset_lifetime)).
    #[must_use]
    pub fn lifetime_utilization(&self, now: SimTime) -> f64 {
        let span = now.since(self.lifetime_start);
        if span <= 0.0 {
            return if self.busy_since.is_some() { 1.0 } else { 0.0 };
        }
        let in_progress = self.busy_since.map_or(0.0, |s| now.since(s));
        ((self.lifetime_busy + in_progress) / span).clamp(0.0, 1.0)
    }

    /// Restarts lifetime accounting at `now` (used to discard warm-up).
    pub fn reset_lifetime(&mut self, now: SimTime) {
        self.lifetime_busy = 0.0;
        self.lifetime_start = now;
        if self.busy_since.is_some() {
            self.busy_since = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn idle_window_is_zero() {
        let mut m = UtilizationMonitor::new(t(0.0));
        assert_eq!(m.close_window(t(8.0)), 0.0);
    }

    #[test]
    fn fully_busy_window_is_one() {
        let mut m = UtilizationMonitor::new(t(0.0));
        m.set_busy(t(0.0), true);
        assert_eq!(m.close_window(t(8.0)), 1.0);
        // Still busy: the next window is fully busy too.
        assert_eq!(m.close_window(t(16.0)), 1.0);
    }

    #[test]
    fn partial_busy_fraction() {
        let mut m = UtilizationMonitor::new(t(0.0));
        m.set_busy(t(1.0), true);
        m.set_busy(t(3.0), false);
        m.set_busy(t(5.0), true);
        m.set_busy(t(6.0), false);
        let u = m.close_window(t(8.0));
        assert!((u - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn busy_period_spanning_windows_splits() {
        let mut m = UtilizationMonitor::new(t(0.0));
        m.set_busy(t(6.0), true);
        assert!((m.close_window(t(8.0)) - 0.25).abs() < 1e-12);
        m.set_busy(t(12.0), false);
        assert!((m.close_window(t(16.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn redundant_transitions_ignored() {
        let mut m = UtilizationMonitor::new(t(0.0));
        m.set_busy(t(1.0), true);
        m.set_busy(t(2.0), true); // ignored: stays anchored at t=1
        m.set_busy(t(4.0), false);
        m.set_busy(t(5.0), false); // ignored
        assert!((m.close_window(t(8.0)) - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn lifetime_utilization_spans_windows() {
        let mut m = UtilizationMonitor::new(t(0.0));
        m.set_busy(t(0.0), true);
        m.set_busy(t(4.0), false);
        let _ = m.close_window(t(8.0));
        let _ = m.close_window(t(16.0));
        assert!((m.lifetime_utilization(t(16.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reset_lifetime_discards_history() {
        let mut m = UtilizationMonitor::new(t(0.0));
        m.set_busy(t(0.0), true);
        m.set_busy(t(10.0), false);
        m.reset_lifetime(t(10.0));
        assert_eq!(m.lifetime_utilization(t(20.0)), 0.0);
    }

    #[test]
    fn is_busy_reflects_state() {
        let mut m = UtilizationMonitor::new(t(0.0));
        assert!(!m.is_busy());
        m.set_busy(t(1.0), true);
        assert!(m.is_busy());
    }
}
