//! Server capacities and the paper's heterogeneity presets (Table 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one Web server. Servers are numbered in decreasing
/// processing capacity, as in the paper (`S_1` is the most powerful).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ServerId(pub usize);

impl ServerId {
    /// The server's index (0 = most powerful).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// The paper's four heterogeneity levels (Table 2), defined as the maximum
/// difference among relative server capacities, plus the homogeneous
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityLevel {
    /// Homogeneous servers (0% difference).
    H0,
    /// 20% maximum difference: `{1, 1, 1, 0.8, 0.8, 0.8, 0.8}`.
    H20,
    /// 35% maximum difference: `{1, 1, 0.8, 0.8, 0.65, 0.65, 0.65}`.
    H35,
    /// 50% maximum difference: `{1, 1, 0.8, 0.8, 0.5, 0.5, 0.5}`.
    H50,
    /// 65% maximum difference: `{1, 1, 0.8, 0.8, 0.35, 0.35, 0.35}`.
    H65,
}

impl HeterogeneityLevel {
    /// All levels in increasing order of heterogeneity.
    pub const ALL: [HeterogeneityLevel; 5] = [
        HeterogeneityLevel::H0,
        HeterogeneityLevel::H20,
        HeterogeneityLevel::H35,
        HeterogeneityLevel::H50,
        HeterogeneityLevel::H65,
    ];

    /// The paper's relative capacities `α_i` for N = 7 servers.
    #[must_use]
    pub fn relative_capacities(self) -> Vec<f64> {
        match self {
            HeterogeneityLevel::H0 => vec![1.0; 7],
            HeterogeneityLevel::H20 => vec![1.0, 1.0, 1.0, 0.8, 0.8, 0.8, 0.8],
            HeterogeneityLevel::H35 => vec![1.0, 1.0, 0.8, 0.8, 0.65, 0.65, 0.65],
            HeterogeneityLevel::H50 => vec![1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.5],
            HeterogeneityLevel::H65 => vec![1.0, 1.0, 0.8, 0.8, 0.35, 0.35, 0.35],
        }
    }

    /// The level as the paper's percentage (maximum capacity difference).
    #[must_use]
    pub fn percent(self) -> u32 {
        match self {
            HeterogeneityLevel::H0 => 0,
            HeterogeneityLevel::H20 => 20,
            HeterogeneityLevel::H35 => 35,
            HeterogeneityLevel::H50 => 50,
            HeterogeneityLevel::H65 => 65,
        }
    }
}

impl fmt::Display for HeterogeneityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

/// The capacity layout of the distributed Web site: relative capacities
/// `α_i` and absolute capacities `C_i` (hits/s) scaled to a fixed total.
///
/// # Examples
///
/// ```
/// use geodns_server::{CapacityPlan, HeterogeneityLevel};
///
/// let plan = CapacityPlan::from_level(HeterogeneityLevel::H50, 500.0);
/// assert_eq!(plan.num_servers(), 7);
/// assert!((plan.total_capacity() - 500.0).abs() < 1e-9);
/// assert!((plan.power_ratio() - 2.0).abs() < 1e-12, "ρ = C1/CN = 1/0.5");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityPlan {
    relative: Vec<f64>,
    absolute: Vec<f64>,
}

impl CapacityPlan {
    /// Builds a plan from relative capacities, scaling absolute capacities
    /// so they sum to `total_capacity` (the paper holds this at 500 hits/s
    /// for fair comparisons).
    ///
    /// # Errors
    ///
    /// Returns an error if `relative` is empty, contains values outside
    /// `(0, 1]`, is not sorted in decreasing order, does not start at 1.0,
    /// or `total_capacity` is not positive.
    pub fn from_relative(relative: Vec<f64>, total_capacity: f64) -> Result<Self, String> {
        if relative.is_empty() {
            return Err("need at least one server".into());
        }
        if !(total_capacity.is_finite() && total_capacity > 0.0) {
            return Err(format!("total capacity must be > 0, got {total_capacity}"));
        }
        if relative.iter().any(|&a| !a.is_finite() || a <= 0.0 || a > 1.0) {
            return Err("relative capacities must lie in (0, 1]".into());
        }
        if (relative[0] - 1.0).abs() > 1e-12 {
            return Err("the most powerful server must have relative capacity 1.0".into());
        }
        if relative.windows(2).any(|w| w[1] > w[0] + 1e-12) {
            return Err("servers must be numbered in decreasing capacity".into());
        }
        let sum: f64 = relative.iter().sum();
        let absolute = relative.iter().map(|a| a / sum * total_capacity).collect();
        Ok(CapacityPlan { relative, absolute })
    }

    /// Builds the paper's Table 2 preset for a heterogeneity level.
    ///
    /// # Panics
    ///
    /// Never panics: presets are valid by construction.
    #[must_use]
    pub fn from_level(level: HeterogeneityLevel, total_capacity: f64) -> Self {
        Self::from_relative(level.relative_capacities(), total_capacity).expect("presets are valid")
    }

    /// A homogeneous plan with `n` servers.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `total_capacity <= 0`.
    pub fn homogeneous(n: usize, total_capacity: f64) -> Result<Self, String> {
        Self::from_relative(vec![1.0; n], total_capacity)
    }

    /// Number of servers `N`.
    #[must_use]
    pub fn num_servers(&self) -> usize {
        self.relative.len()
    }

    /// Relative capacity `α_i` of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn relative(&self, i: usize) -> f64 {
        self.relative[i]
    }

    /// All relative capacities.
    #[must_use]
    pub fn relatives(&self) -> &[f64] {
        &self.relative
    }

    /// Absolute capacity `C_i` of server `i` in hits/s.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn absolute(&self, i: usize) -> f64 {
        self.absolute[i]
    }

    /// All absolute capacities.
    #[must_use]
    pub fn absolutes(&self) -> &[f64] {
        &self.absolute
    }

    /// Total site capacity (hits/s).
    #[must_use]
    pub fn total_capacity(&self) -> f64 {
        self.absolute.iter().sum()
    }

    /// The processor power ratio `ρ = C_1 / C_N` of Menascé et al., the
    /// degree-of-heterogeneity factor in the deterministic TTL formula.
    #[must_use]
    pub fn power_ratio(&self) -> f64 {
        self.absolute[0] / self.absolute[self.absolute.len() - 1]
    }

    /// The paper's heterogeneity measure: maximum difference among relative
    /// capacities, as a fraction (e.g. 0.5 for the 50% level).
    #[must_use]
    pub fn max_difference(&self) -> f64 {
        1.0 - self.relative[self.relative.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let plan = CapacityPlan::from_level(HeterogeneityLevel::H35, 500.0);
        assert_eq!(plan.relatives(), &[1.0, 1.0, 0.8, 0.8, 0.65, 0.65, 0.65]);
        assert!((plan.max_difference() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn total_capacity_constant_across_levels() {
        for level in HeterogeneityLevel::ALL {
            let plan = CapacityPlan::from_level(level, 500.0);
            assert!(
                (plan.total_capacity() - 500.0).abs() < 1e-9,
                "level {level}: total = {}",
                plan.total_capacity()
            );
        }
    }

    #[test]
    fn absolute_capacities_proportional_to_relative() {
        let plan = CapacityPlan::from_level(HeterogeneityLevel::H20, 500.0);
        // Σα = 3·1 + 4·0.8 = 6.2 → C1 = 500/6.2 ≈ 80.6
        assert!((plan.absolute(0) - 500.0 / 6.2).abs() < 1e-9);
        assert!((plan.absolute(3) - 0.8 * 500.0 / 6.2).abs() < 1e-9);
    }

    #[test]
    fn power_ratios() {
        assert!(
            (CapacityPlan::from_level(HeterogeneityLevel::H0, 500.0).power_ratio() - 1.0).abs()
                < 1e-12
        );
        assert!(
            (CapacityPlan::from_level(HeterogeneityLevel::H20, 500.0).power_ratio() - 1.25).abs()
                < 1e-12
        );
        assert!(
            (CapacityPlan::from_level(HeterogeneityLevel::H65, 500.0).power_ratio() - 1.0 / 0.35)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn homogeneous_plan() {
        let plan = CapacityPlan::homogeneous(5, 100.0).unwrap();
        for i in 0..5 {
            assert!((plan.absolute(i) - 20.0).abs() < 1e-12);
        }
        assert_eq!(plan.max_difference(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(CapacityPlan::from_relative(vec![], 500.0).is_err());
        assert!(CapacityPlan::from_relative(vec![1.0], 0.0).is_err());
        assert!(CapacityPlan::from_relative(vec![0.8, 0.8], 500.0).is_err(), "must start at 1.0");
        assert!(CapacityPlan::from_relative(vec![1.0, 1.2], 500.0).is_err(), "out of (0,1]");
        assert!(CapacityPlan::from_relative(vec![1.0, 0.5, 0.8], 500.0).is_err(), "not decreasing");
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServerId(0).to_string(), "S1");
        assert_eq!(HeterogeneityLevel::H50.to_string(), "50%");
    }

    #[test]
    fn level_percent_round_trip() {
        for level in HeterogeneityLevel::ALL {
            let plan = CapacityPlan::from_level(level, 500.0);
            assert!((plan.max_difference() * 100.0 - f64::from(level.percent())).abs() < 1e-9);
        }
    }
}
