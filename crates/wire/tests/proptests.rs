//! Property-based tests for the DNS wire codec.

use geodns_wire::{Message, Name, QClass, QType, Question, Rcode, ResourceRecord};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::from_labels(labels).expect("short labels always fit"))
}

fn arb_question() -> impl Strategy<Value = Question> {
    (arb_name(), 0u16..300, prop_oneof![Just(1u16), 0u16..10]).prop_map(|(name, t, c)| Question {
        name,
        qtype: QType::from_code(t),
        qclass: QClass::from_code(c),
    })
}

fn arb_rr() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), 0u16..300, 0u32..1_000_000, prop::collection::vec(any::<u8>(), 0..32)).prop_map(
        |(name, t, ttl, rdata)| ResourceRecord {
            name,
            rtype: QType::from_code(t),
            rclass: QClass::In,
            ttl,
            rdata,
        },
    )
}

proptest! {
    /// Any message we can build encodes and parses back identically.
    #[test]
    fn message_round_trip(
        id in any::<u16>(),
        questions in prop::collection::vec(arb_question(), 0..3),
        answers in prop::collection::vec(arb_rr(), 0..4),
        authority in prop::collection::vec(arb_rr(), 0..2),
        additional in prop::collection::vec(arb_rr(), 0..2),
        rd in any::<bool>(),
    ) {
        let mut m = Message::query(id, Question::a("placeholder.test"));
        m.questions = questions;
        m.answers = answers;
        m.authority = authority;
        m.additional = additional;
        m.header.recursion_desired = rd;
        m.header.response = true;
        m.header.rcode = Rcode::NoError;

        let bytes = m.to_bytes();
        let parsed = Message::parse(&bytes);
        prop_assert_eq!(parsed.as_ref(), Ok(&m));
    }

    /// The parser never panics on arbitrary bytes (it may error).
    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::parse(&bytes);
    }

    /// Re-encoding a successfully parsed arbitrary message parses again to
    /// the same structure (idempotent normal form).
    #[test]
    fn reencode_is_stable(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(m) = Message::parse(&bytes) {
            let re = m.to_bytes();
            let again = Message::parse(&re);
            prop_assert_eq!(again.as_ref(), Ok(&m));
        }
    }

    /// Names survive the text ↔ struct ↔ wire journey.
    #[test]
    fn name_round_trip(name in arb_name()) {
        let text = name.to_string();
        let back: Name = text.parse().unwrap();
        prop_assert_eq!(&back, &name);
        // And through a question on the wire.
        let m = Message::query(1, Question { name: name.clone(), qtype: QType::A, qclass: QClass::In });
        let parsed = Message::parse(&m.to_bytes()).unwrap();
        prop_assert_eq!(&parsed.questions[0].name, &name);
    }
}
