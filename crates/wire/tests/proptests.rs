//! Property-based tests for the DNS wire codec and the serving front end.

use geodns_wire::{
    AuthoritativeServer, Message, Name, QClass, QType, Question, Rcode, ResourceRecord,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9-]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::from_labels(labels).expect("short labels always fit"))
}

fn arb_question() -> impl Strategy<Value = Question> {
    (arb_name(), 0u16..300, prop_oneof![Just(1u16), 0u16..10]).prop_map(|(name, t, c)| Question {
        name,
        qtype: QType::from_code(t),
        qclass: QClass::from_code(c),
    })
}

fn arb_rr() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), 0u16..300, 0u32..1_000_000, prop::collection::vec(any::<u8>(), 0..32)).prop_map(
        |(name, t, ttl, rdata)| ResourceRecord {
            name,
            rtype: QType::from_code(t),
            rclass: QClass::In,
            ttl,
            rdata,
        },
    )
}

proptest! {
    /// Any message we can build encodes and parses back identically.
    #[test]
    fn message_round_trip(
        id in any::<u16>(),
        questions in prop::collection::vec(arb_question(), 0..3),
        answers in prop::collection::vec(arb_rr(), 0..4),
        authority in prop::collection::vec(arb_rr(), 0..2),
        additional in prop::collection::vec(arb_rr(), 0..2),
        rd in any::<bool>(),
    ) {
        let mut m = Message::query(id, Question::a("placeholder.test"));
        m.questions = questions;
        m.answers = answers;
        m.authority = authority;
        m.additional = additional;
        m.header.recursion_desired = rd;
        m.header.response = true;
        m.header.rcode = Rcode::NoError;

        let bytes = m.to_bytes();
        let parsed = Message::parse(&bytes);
        prop_assert_eq!(parsed.as_ref(), Ok(&m));
    }

    /// The parser never panics on arbitrary bytes (it may error).
    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::parse(&bytes);
    }

    /// Re-encoding a successfully parsed arbitrary message parses again to
    /// the same structure (idempotent normal form).
    #[test]
    fn reencode_is_stable(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(m) = Message::parse(&bytes) {
            let re = m.to_bytes();
            let again = Message::parse(&re);
            prop_assert_eq!(again.as_ref(), Ok(&m));
        }
    }

    /// `AuthoritativeServer::handle` never panics on arbitrary datagrams,
    /// and its error/response split is principled: datagrams shorter than
    /// a header (12 bytes) are always `Err` (no id to echo), and whenever
    /// it answers `Ok` the output is a parseable *response* that echoes
    /// the query's transaction id and RD bit with RA clear.
    #[test]
    fn handle_never_panics_and_answers_are_well_formed(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        src in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
    ) {
        let mut server = AuthoritativeServer::example();
        match server.handle(&bytes, [src.0, src.1, src.2, src.3], 1.0) {
            Err(_) => {} // fine: too mangled to answer
            Ok(resp) => {
                prop_assert!(bytes.len() >= 12, "Ok for a {}-byte datagram", bytes.len());
                let parsed = Message::parse(&resp).expect("responses must parse");
                prop_assert!(parsed.header.response);
                prop_assert_eq!(parsed.header.id, u16::from_be_bytes([bytes[0], bytes[1]]));
                let rd = u16::from_be_bytes([bytes[2], bytes[3]]) & 0x0100 != 0;
                prop_assert_eq!(parsed.header.recursion_desired, rd, "RD must be echoed");
                prop_assert!(!parsed.header.recursion_available, "RA must stay clear");
            }
        }
    }

    /// Sub-header datagrams can never be answered.
    #[test]
    fn short_datagrams_are_rejected(bytes in prop::collection::vec(any::<u8>(), 0..12)) {
        let mut server = AuthoritativeServer::example();
        prop_assert!(server.handle(&bytes, [10, 0, 0, 1], 1.0).is_err());
    }

    /// A datagram that parses as a *response* (QR bit set) is never
    /// answered — answering responses is how reflection loops start.
    #[test]
    fn response_datagrams_are_rejected(
        id in any::<u16>(),
        questions in prop::collection::vec(arb_question(), 0..3),
        rd in any::<bool>(),
    ) {
        let mut m = Message::query(id, Question::a("www.example.org"));
        m.questions = questions;
        m.header.recursion_desired = rd;
        m.header.response = true;
        let mut server = AuthoritativeServer::example();
        prop_assert!(server.handle(&m.to_bytes(), [10, 0, 0, 1], 1.0).is_err());
    }

    /// Garbage past a readable header still gets an answer (FORMERR), and
    /// that answer carries the garbage's id — the "readable header,
    /// unreadable body" contract of the FORMERR fallback.
    #[test]
    fn garbage_bodies_get_formerr(
        id in any::<u16>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // QDCOUNT=1 with a body that rarely parses as a question; QR clear.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&id.to_be_bytes());
        bytes.extend_from_slice(&[0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0]);
        bytes.extend_from_slice(&body);
        let mut server = AuthoritativeServer::example();
        if let Ok(resp) = server.handle(&bytes, [10, 0, 0, 1], 1.0) {
            let parsed = Message::parse(&resp).expect("responses must parse");
            prop_assert_eq!(parsed.header.id, id);
            prop_assert!(parsed.header.response);
            prop_assert!(parsed.header.recursion_desired, "RD was set in the query");
        }
    }

    /// Names survive the text ↔ struct ↔ wire journey.
    #[test]
    fn name_round_trip(name in arb_name()) {
        let text = name.to_string();
        let back: Name = text.parse().unwrap();
        prop_assert_eq!(&back, &name);
        // And through a question on the wire.
        let m = Message::query(1, Question { name: name.clone(), qtype: QType::A, qclass: QClass::In });
        let parsed = Message::parse(&m.to_bytes()).unwrap();
        prop_assert_eq!(&parsed.questions[0].name, &name);
    }
}
