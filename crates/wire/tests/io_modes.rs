//! Differential test: `IoMode::Uring`, `IoMode::Batched`, and
//! `IoMode::Single` must be observationally identical — same queries in,
//! byte-identical responses out. The io mode is purely a transport
//! optimization (reuseport sharding, `recvmmsg`/`sendmmsg` arenas,
//! io_uring submission rings); if a single answer byte shifts between
//! modes, a transport path has leaked into serving semantics.
//!
//! Determinism argument: with one worker the daemon is a FIFO — each
//! socket delivers datagrams in send order, the worker serves them in
//! arrival order, and the example topology's `DRR2-TTL/S_K` scheme is
//! round-robin with static TTL tables, so the response sequence is a
//! pure function of the query sequence (no RNG draw, no wall-clock
//! dependence). The same 200-query script therefore must produce the
//! same 200 answers in both modes.

use std::collections::BTreeMap;
use std::net::UdpSocket;
use std::time::Duration;

use geodns_wire::{AuthoritativeServer, Daemon, DaemonConfig, IoMode, Message, Question};

/// Queries 0..200 in bursts of 5: ids are sequential, every third query
/// varies the name's case (the matcher is case-insensitive; the echoed
/// question — and therefore the response bytes — still follow the query
/// verbatim, identically in both modes).
fn query_script() -> Vec<Vec<u8>> {
    (0..200u16)
        .map(|id| {
            let name = if id % 3 == 0 { "WWW.Example.ORG" } else { "www.example.org" };
            Message::query(id, Question::a(name)).to_bytes()
        })
        .collect()
}

/// Runs the full script against a fresh 1-worker daemon in `io_mode` and
/// returns every response keyed by query id.
fn serve_script(io_mode: IoMode) -> BTreeMap<u16, Vec<u8>> {
    let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("loopback addr"));
    cfg.io_mode = io_mode;
    let shards = vec![AuthoritativeServer::example_shard(0, 1998)];
    let daemon = Daemon::spawn(&cfg, shards).expect("daemon spawns");
    if cfg!(target_os = "linux") {
        // On Linux the requested mode must actually take effect (uring
        // degrades to batched and batched to single; silently comparing a
        // mode against itself would vacuously pass). Uring is only ever
        // requested here after a positive support probe.
        assert_eq!(daemon.io_mode(), io_mode, "requested io mode is effective");
    }

    let socket = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    socket.connect(daemon.local_addr()).expect("connect to daemon");
    socket.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");

    let mut responses = BTreeMap::new();
    let mut buf = [0u8; 512];
    for burst in query_script().chunks(5) {
        // A burst of distinct ids in one go gives the batched worker a
        // real multi-datagram recvmmsg/sendmmsg round to chew on.
        for q in burst {
            socket.send(q).expect("send query");
        }
        for _ in burst {
            let n = socket.recv(&mut buf).expect("response arrives");
            assert!(n >= 2, "response has a header");
            let id = u16::from_be_bytes([buf[0], buf[1]]);
            let prev = responses.insert(id, buf[..n].to_vec());
            assert!(prev.is_none(), "no duplicate response for id {id}");
        }
    }

    let report = daemon.shutdown();
    let totals = report.totals();
    assert_eq!(totals.answered, 200, "every query answered ({io_mode})");
    assert_eq!(totals.tx_errors, 0, "clean transmit ({io_mode})");
    responses
}

/// Byte-compares two full response maps from different io modes.
fn assert_identical(
    reference: &BTreeMap<u16, Vec<u8>>,
    other: &BTreeMap<u16, Vec<u8>>,
    mode: &str,
) {
    assert_eq!(other.len(), 200, "{mode} answered all 200 distinct ids");
    for (id, r) in reference {
        assert_eq!(&other[id], r, "response bytes for query id {id} differ in {mode} mode");
    }
}

#[test]
fn all_io_modes_serve_byte_identical_responses() {
    let single = serve_script(IoMode::Single);
    assert_eq!(single.len(), 200, "single answered all 200 distinct ids");

    let batched = serve_script(IoMode::Batched);
    assert_identical(&single, &batched, "batched");

    // The uring leg runs only where the kernel can actually grant a ring
    // (the support probe is the same one `Daemon::spawn` uses); elsewhere
    // the comparison would degrade to batched-vs-single, already covered.
    if geodns_wire::uring::supported() {
        let uring = serve_script(IoMode::Uring);
        assert_identical(&single, &uring, "uring");
    } else {
        eprintln!("skipping the uring leg: io_uring unavailable on this kernel");
    }
}
