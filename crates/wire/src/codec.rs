//! Low-level wire reading/writing: big-endian integers, names with
//! compression-pointer decoding.

use std::fmt;

use crate::Name;

/// Errors raised while encoding or parsing DNS messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure did.
    Truncated,
    /// A domain name violated RFC 1035 limits or syntax.
    BadName(String),
    /// A compression pointer pointed forward or looped.
    BadPointer,
    /// A label had the reserved `10`/`01` type bits.
    BadLabelType(u8),
    /// A count field promised more records than the buffer holds.
    BadCount,
    /// The message used a feature outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadName(msg) => write!(f, "bad name: {msg}"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabelType(b) => write!(f, "unsupported label type bits {b:#04x}"),
            WireError::BadCount => write!(f, "record count exceeds message"),
            WireError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an incoming message.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    #[cfg(test)]
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let hi = self.u8()?;
        let lo = self.u8()?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let a = self.u16()?;
        let b = self.u16()?;
        Ok((u32::from(a) << 16) | u32::from(b))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a possibly-compressed name (RFC 1035 §4.1.4). Pointers must
    /// point strictly backwards, which also bounds the loop.
    pub(crate) fn name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut jumped = false;
        let mut cursor = self.pos;
        let mut guard = 0usize;

        loop {
            guard += 1;
            if guard > 128 {
                return Err(WireError::BadPointer);
            }
            let len = *self.buf.get(cursor).ok_or(WireError::Truncated)?;
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        cursor += 1;
                        if !jumped {
                            self.pos = cursor;
                        }
                        return Name::from_labels(labels);
                    }
                    let start = cursor + 1;
                    let end = start + len as usize;
                    let bytes = self.buf.get(start..end).ok_or(WireError::Truncated)?;
                    let label = String::from_utf8_lossy(bytes).into_owned();
                    labels.push(label);
                    cursor = end;
                }
                0xC0 => {
                    let second = *self.buf.get(cursor + 1).ok_or(WireError::Truncated)?;
                    let target = (usize::from(len & 0x3F) << 8) | usize::from(second);
                    if target >= cursor {
                        return Err(WireError::BadPointer);
                    }
                    if !jumped {
                        self.pos = cursor + 2;
                        jumped = true;
                    }
                    cursor = target;
                }
                other => return Err(WireError::BadLabelType(other)),
            }
        }
    }
}

/// A writer appending wire bytes to a caller-owned buffer, so encoding
/// can reuse one allocation across messages (the daemon's tx buffer).
#[derive(Debug)]
pub(crate) struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    /// Wraps `buf`, appending after its current contents.
    pub(crate) fn new(buf: &'a mut Vec<u8>) -> Self {
        Writer { buf }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a name uncompressed (always legal on the wire).
    pub(crate) fn name(&mut self, name: &Name) {
        for label in name.labels() {
            self.u8(label.len() as u8);
            self.bytes(label.as_bytes());
        }
        self.u8(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip() {
        let mut bytes = Vec::new();
        let mut w = Writer::new(&mut bytes);
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn plain_name_round_trip() {
        let name: Name = "www.example.org".parse().unwrap();
        let mut bytes = Vec::new();
        Writer::new(&mut bytes).name(&name);
        assert_eq!(bytes[0], 3); // "www"
        assert_eq!(*bytes.last().unwrap(), 0);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.name().unwrap(), name);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn compression_pointer_decodes() {
        // "example.org" at offset 0, then "www" + pointer to offset 0.
        let mut buf = Vec::new();
        buf.extend_from_slice(&[7]);
        buf.extend_from_slice(b"example");
        buf.extend_from_slice(&[3]);
        buf.extend_from_slice(b"org");
        buf.push(0);
        let www_at = buf.len();
        buf.extend_from_slice(&[3]);
        buf.extend_from_slice(b"www");
        buf.extend_from_slice(&[0xC0, 0x00]); // pointer to offset 0

        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap().to_string(), "example.org");
        assert_eq!(r.pos(), www_at);
        let compressed = r.name().unwrap();
        assert_eq!(compressed.to_string(), "www.example.org");
        assert_eq!(r.remaining(), 0, "reader resumes after the pointer");
    }

    #[test]
    fn forward_pointer_rejected() {
        let buf = [0xC0u8, 0x05, 0, 0, 0, 0];
        let mut r = Reader::new(&buf);
        assert_eq!(r.name(), Err(WireError::BadPointer));
    }

    #[test]
    fn pointer_loop_rejected() {
        // Pointer at offset 2 pointing to offset 0, offset 0 pointing to 2.
        let buf = [0xC0u8, 0x02, 0xC0, 0x00];
        let mut r = Reader::new(&buf);
        r.pos = 2;
        assert!(matches!(r.name(), Err(WireError::BadPointer)));
    }

    #[test]
    fn truncated_label_rejected() {
        let buf = [5u8, b'a', b'b']; // promises 5 bytes, has 2
        let mut r = Reader::new(&buf);
        assert_eq!(r.name(), Err(WireError::Truncated));
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let buf = [0x40u8, 0x00];
        let mut r = Reader::new(&buf);
        assert_eq!(r.name(), Err(WireError::BadLabelType(0x40)));
    }
}
