//! CPU pinning for the worker×core scaling study: hand-written
//! `sched_setaffinity(2)` / `sched_getaffinity(2)` bindings (this
//! workspace vendors no libc crate, matching the [`crate::mmsg`]
//! precedent).
//!
//! `SO_REUSEPORT` shards inbound datagrams across worker sockets by flow
//! hash, but the *scheduler* still decides which core each worker thread
//! runs on — and on a busy box it migrates them, smearing cache state and
//! making a scaling measurement partly a measurement of migration luck.
//! [`pin_to_core`] pins the calling thread to one CPU so a 1/2/4/8-worker
//! sweep measures reuseport parallelism, not placement noise; the
//! unpinned rows of the wall-chart are the control.
//!
//! The affinity mask is passed as an array of `u64` words (the kernel
//! accepts any mask length in bytes), sized for up to [`MAX_CPUS`] CPUs.

#![allow(unsafe_code)]

use std::io;

/// Upper bound on addressable CPUs (16 mask words × 64 bits); far above
/// any box this workload meets, and the kernel ignores trailing zeros.
pub const MAX_CPUS: usize = 1024;

const MASK_WORDS: usize = MAX_CPUS / 64;

#[cfg(target_os = "linux")]
mod sys {
    extern "C" {
        /// glibc wrappers around the affinity syscalls: pid 0 means the
        /// calling thread.
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        pub fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }
}

/// Pins the **calling thread** to `core` (a zero-based CPU index).
///
/// # Errors
///
/// `InvalidInput` if `core ≥` [`MAX_CPUS`], the `sched_setaffinity` error
/// (typically `EINVAL` when the core does not exist or is excluded by the
/// process's cpuset), or `Unsupported` off Linux.
pub fn pin_to_core(core: usize) -> io::Result<()> {
    if core >= MAX_CPUS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("core {core} out of range (max {MAX_CPUS})"),
        ));
    }
    #[cfg(target_os = "linux")]
    {
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        // SAFETY: the mask outlives the call and the length matches it.
        let rc = unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
    #[cfg(not(target_os = "linux"))]
    {
        Err(io::Error::new(io::ErrorKind::Unsupported, "CPU pinning is Linux-only"))
    }
}

/// How many CPUs the calling thread may run on (the population count of
/// its affinity mask). Falls back to
/// [`std::thread::available_parallelism`] when the syscall is unavailable.
#[must_use]
pub fn online_cpus() -> usize {
    #[cfg(target_os = "linux")]
    {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: the mask outlives the call and the length matches it.
        let rc =
            unsafe { sys::sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
        if rc == 0 {
            let cpus = mask.iter().map(|w| w.count_ones() as usize).sum();
            if cpus > 0 {
                return cpus;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_cpus_is_positive() {
        assert!(online_cpus() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_restricts_the_calling_thread() {
        // Pin a scratch thread (not the test harness thread) to core 0 —
        // always present — and observe its own view shrink to one CPU.
        std::thread::spawn(|| {
            pin_to_core(0).expect("pin to core 0");
            assert_eq!(online_cpus(), 1, "affinity mask shrank to one core");
        })
        .join()
        .expect("pinned thread exits cleanly");
    }

    #[test]
    fn out_of_range_core_is_rejected() {
        assert!(pin_to_core(MAX_CPUS).is_err());
        assert!(pin_to_core(usize::MAX).is_err());
    }
}
