//! DNS message model and the top-level codec.

use crate::codec::{Reader, WireError, Writer};
use crate::Name;

/// Query/record types in the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QType {
    /// IPv4 address record.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name.
    Cname,
    /// Anything else, carried numerically (parsed but not interpreted).
    Other(u16),
}

impl QType {
    /// The wire value.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Other(v) => v,
        }
    }

    /// From the wire value.
    #[must_use]
    pub fn from_code(v: u16) -> Self {
        match v {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            other => QType::Other(other),
        }
    }
}

/// Query/record classes (only IN is interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QClass {
    /// The Internet.
    In,
    /// Anything else, carried numerically.
    Other(u16),
}

impl QClass {
    /// The wire value.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Other(v) => v,
        }
    }

    /// From the wire value.
    #[must_use]
    pub fn from_code(v: u16) -> Self {
        if v == 1 {
            QClass::In
        } else {
            QClass::Other(v)
        }
    }
}

/// Response codes used by the authoritative server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist in the zone.
    NxDomain,
    /// Query kind not implemented.
    NotImp,
    /// Query refused (e.g. not our zone).
    Refused,
}

impl Rcode {
    /// The wire value (low 4 bits of the flags word).
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// From the wire value (values above 5 are reported as `ServFail`).
    #[must_use]
    pub fn from_code(v: u16) -> Self {
        match v & 0xF {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => Rcode::ServFail,
        }
    }
}

/// The fixed 12-byte message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction id, echoed in responses.
    pub id: u16,
    /// Query (false) or response (true).
    pub response: bool,
    /// Opcode (only 0 = QUERY is answered).
    pub opcode: u8,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation flag (never set by this library).
    pub truncated: bool,
    /// Recursion desired (echoed).
    pub recursion_desired: bool,
    /// Recursion available (always false: we are authoritative-only).
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    fn flags_word(self) -> u16 {
        let mut w = 0u16;
        if self.response {
            w |= 0x8000;
        }
        w |= u16::from(self.opcode & 0x0F) << 11;
        if self.authoritative {
            w |= 0x0400;
        }
        if self.truncated {
            w |= 0x0200;
        }
        if self.recursion_desired {
            w |= 0x0100;
        }
        if self.recursion_available {
            w |= 0x0080;
        }
        w |= self.rcode.code();
        w
    }

    fn from_flags(id: u16, w: u16) -> Self {
        Header {
            id,
            response: w & 0x8000 != 0,
            opcode: ((w >> 11) & 0x0F) as u8,
            authoritative: w & 0x0400 != 0,
            truncated: w & 0x0200 != 0,
            recursion_desired: w & 0x0100 != 0,
            recursion_available: w & 0x0080 != 0,
            rcode: Rcode::from_code(w),
        }
    }
}

/// One question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The queried name.
    pub name: Name,
    /// The queried type.
    pub qtype: QType,
    /// The queried class.
    pub qclass: QClass,
}

impl Question {
    /// Convenience: an `IN A` question for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid domain name.
    #[must_use]
    pub fn a(name: &str) -> Self {
        Question {
            name: name.parse().expect("valid name literal"),
            qtype: QType::A,
            qclass: QClass::In,
        }
    }
}

/// One resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: Name,
    /// Record type.
    pub rtype: QType,
    /// Record class.
    pub rclass: QClass,
    /// Time to live, seconds — *the* field this whole repository is about.
    pub ttl: u32,
    /// Uninterpreted record data (4 bytes for `A`).
    pub rdata: Vec<u8>,
}

impl ResourceRecord {
    /// An `IN A` record.
    #[must_use]
    pub fn a(name: Name, addr: [u8; 4], ttl: u32) -> Self {
        ResourceRecord { name, rtype: QType::A, rclass: QClass::In, ttl, rdata: addr.to_vec() }
    }

    /// The IPv4 address of an `A` record, if this is one.
    #[must_use]
    pub fn a_addr(&self) -> Option<[u8; 4]> {
        (self.rtype == QType::A && self.rdata.len() == 4)
            .then(|| [self.rdata[0], self.rdata[1], self.rdata[2], self.rdata[3]])
    }
}

/// A whole DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authority: Vec<ResourceRecord>,
    /// Additional section.
    pub additional: Vec<ResourceRecord>,
}

impl Message {
    /// Builds a standard query with one question.
    #[must_use]
    pub fn query(id: u16, question: Question) -> Self {
        Message {
            header: Header {
                id,
                response: false,
                opcode: 0,
                authoritative: false,
                truncated: false,
                recursion_desired: true,
                recursion_available: false,
                rcode: Rcode::NoError,
            },
            questions: vec![question],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Builds the response skeleton for a query: id and question echoed,
    /// QR/AA set.
    #[must_use]
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                opcode: query.header.opcode,
                authoritative: true,
                truncated: false,
                recursion_desired: query.header.recursion_desired,
                recursion_available: false,
                rcode,
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Encodes to wire format (names uncompressed).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(128);
        self.write_bytes(&mut bytes);
        bytes
    }

    /// Encodes to wire format into a caller-owned buffer, clearing it
    /// first. Once the buffer has grown to the steady-state message size
    /// this path performs no allocation, which is what the daemon's
    /// per-worker tx buffers rely on.
    ///
    /// # Examples
    ///
    /// ```
    /// use geodns_wire::{Message, Question};
    ///
    /// let m = Message::query(7, Question::a("www.example.org"));
    /// let mut buf = Vec::new();
    /// m.write_bytes(&mut buf);
    /// assert_eq!(buf, m.to_bytes());
    /// ```
    pub fn write_bytes(&self, buf: &mut Vec<u8>) {
        buf.clear();
        let mut w = Writer::new(buf);
        w.u16(self.header.id);
        w.u16(self.header.flags_word());
        w.u16(self.questions.len() as u16);
        w.u16(self.answers.len() as u16);
        w.u16(self.authority.len() as u16);
        w.u16(self.additional.len() as u16);
        for q in &self.questions {
            w.name(&q.name);
            w.u16(q.qtype.code());
            w.u16(q.qclass.code());
        }
        for rr in self.answers.iter().chain(&self.authority).chain(&self.additional) {
            w.name(&rr.name);
            w.u16(rr.rtype.code());
            w.u16(rr.rclass.code());
            w.u32(rr.ttl);
            w.u16(rr.rdata.len() as u16);
            w.bytes(&rr.rdata);
        }
    }

    /// Parses a message from wire format (handles compressed names).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    pub fn parse(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let id = r.u16()?;
        let flags = r.u16()?;
        let qd = r.u16()? as usize;
        let an = r.u16()? as usize;
        let ns = r.u16()? as usize;
        let ar = r.u16()? as usize;
        if qd + an + ns + ar > buf.len() {
            return Err(WireError::BadCount);
        }

        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = r.name()?;
            let qtype = QType::from_code(r.u16()?);
            let qclass = QClass::from_code(r.u16()?);
            questions.push(Question { name, qtype, qclass });
        }

        let read_rrs = |r: &mut Reader<'_>, n: usize| -> Result<Vec<ResourceRecord>, WireError> {
            let mut rrs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.name()?;
                let rtype = QType::from_code(r.u16()?);
                let rclass = QClass::from_code(r.u16()?);
                let ttl = r.u32()?;
                let rdlen = r.u16()? as usize;
                let rdata = r.bytes(rdlen)?.to_vec();
                rrs.push(ResourceRecord { name, rtype, rclass, ttl, rdata });
            }
            Ok(rrs)
        };
        let answers = read_rrs(&mut r, an)?;
        let authority = read_rrs(&mut r, ns)?;
        let additional = read_rrs(&mut r, ar)?;

        Ok(Message {
            header: Header::from_flags(id, flags),
            questions,
            answers,
            authority,
            additional,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips() {
        let q = Message::query(0xBEEF, Question::a("www.example.org"));
        let bytes = q.to_bytes();
        assert_eq!(bytes.len(), 12 + 17 + 4, "header + name + type/class");
        let parsed = Message::parse(&bytes).unwrap();
        assert_eq!(parsed, q);
        assert!(!parsed.header.response);
        assert!(parsed.header.recursion_desired);
    }

    #[test]
    fn golden_query_bytes() {
        // Hand-assembled: id 0x0102, RD, one IN A question for "a.b".
        let q = Message::query(0x0102, Question::a("a.b"));
        let bytes = q.to_bytes();
        #[rustfmt::skip]
        let expect = [
            0x01, 0x02, // id
            0x01, 0x00, // flags: RD
            0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // counts
            0x01, b'a', 0x01, b'b', 0x00, // name
            0x00, 0x01, // type A
            0x00, 0x01, // class IN
        ];
        assert_eq!(bytes, expect);
    }

    #[test]
    fn response_with_answer_round_trips() {
        let q = Message::query(7, Question::a("site.test"));
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::a(q.questions[0].name.clone(), [192, 0, 2, 1], 43));
        let parsed = Message::parse(&resp.to_bytes()).unwrap();
        assert!(parsed.header.response);
        assert!(parsed.header.authoritative);
        assert_eq!(parsed.header.rcode, Rcode::NoError);
        assert_eq!(parsed.answers[0].ttl, 43);
        assert_eq!(parsed.answers[0].a_addr(), Some([192, 0, 2, 1]));
    }

    #[test]
    fn flags_word_round_trips_all_bits() {
        let h = Header {
            id: 1,
            response: true,
            opcode: 2,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            rcode: Rcode::Refused,
        };
        let back = Header::from_flags(1, h.flags_word());
        assert_eq!(back, h);
    }

    #[test]
    fn qtype_qclass_codes() {
        assert_eq!(QType::from_code(1), QType::A);
        assert_eq!(QType::from_code(28), QType::Other(28)); // AAAA: parsed, not interpreted
        assert_eq!(QType::Other(28).code(), 28);
        assert_eq!(QClass::from_code(1), QClass::In);
        assert_eq!(QClass::from_code(3), QClass::Other(3));
    }

    #[test]
    fn truncated_messages_rejected() {
        let q = Message::query(1, Question::a("x.y"));
        let bytes = q.to_bytes();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(Message::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn absurd_counts_rejected() {
        let mut bytes = Message::query(1, Question::a("x.y")).to_bytes();
        bytes[4] = 0xFF; // qdcount = 0xFF01
        bytes[5] = 0xFF;
        assert!(Message::parse(&bytes).is_err());
    }
}
