//! `geodnsd`: the multi-threaded UDP front end that puts the adaptive-TTL
//! scheduler on a live network path.
//!
//! # Threading model: share-nothing scheduler shards
//!
//! N worker threads, each owning a full [`AuthoritativeServer`] **shard**
//! — its own `DnsScheduler`, RNG stream, and backlog snapshot — so the
//! per-query path takes no lock and touches no shared cache line. The
//! alternative (one scheduler behind a sharded mutex) would keep the RR
//! pointers globally exact, but serializes every decision; with
//! share-nothing shards each worker's round-robin state advances
//! independently, and because the kernel spreads datagrams across workers
//! without regard to domain, the *aggregate* assignment over any window is
//! the same interleaving of per-shard rotations — the paper's policies
//! only need proportional shares, not a single global pointer. This is the
//! documented trade: exactness of the aggregate rotation within one TTL
//! window is sacrificed for linear scalability.
//!
//! # I/O model: batched reuseport sockets, with a single-datagram fallback
//!
//! How datagrams reach the shards is selected by [`DaemonConfig::io_mode`]:
//!
//! * [`IoMode::Batched`] (default on Linux) — every worker binds its
//!   **own** `SO_REUSEPORT` socket to the same address, so the kernel
//!   shards inbound queries across workers by flow hash with no shared
//!   socket contention; each loop iteration drains up to
//!   [`DaemonConfig::batch`] datagrams with one `recvmmsg`, serves each
//!   through the same fast path, and flushes every response with one
//!   `sendmmsg` (see [`crate::mmsg`]). Two syscalls per *batch* instead of
//!   two per query. If reuseport setup fails (or the target is not
//!   Linux), spawning transparently degrades to `Single`; the effective
//!   mode is reported by [`DaemonHandle::io_mode`].
//! * [`IoMode::Single`] — the classic path: workers share one bound
//!   [`UdpSocket`] (each holds a `try_clone`d handle; the kernel wakes
//!   exactly one blocked reader per datagram) and pay one `recv_from` +
//!   one `send_to` per query. Kept selectable on Linux for debugging and
//!   for the differential test that pins both modes byte-identical.
//!
//! # Buffer discipline
//!
//! Each worker reuses its buffers for its whole life: one rx buffer and
//! one tx `Vec<u8>` in `Single` mode, the preallocated
//! [`RecvBatch`](crate::mmsg::RecvBatch)/[`SendBatch`](crate::mmsg::SendBatch)
//! arenas in `Batched` mode. Either steady-state loop (receive →
//! fast-path handle → send) is allocation-free once the tx buffers have
//! grown to the answer size (see `tests/alloc_free_wire.rs` for the
//! pinned half of that claim).
//!
//! # Control protocol and shutdown
//!
//! Datagrams beginning with [`CTL_MAGIC`], accepted **only from loopback
//! sources**, are control messages rather than DNS:
//!
//! * `GDNSCTL1 shutdown` — begin graceful shutdown; acks `GDNSCTL1 ok`.
//! * `GDNSCTL1 backlogs <f64,f64,…>` — install a new backlog snapshot
//!   (one value per Web server) that every shard picks up before its next
//!   decision, feeding the backlog-aware policies; acks `GDNSCTL1 ok`.
//!
//! Shutdown is flag-based: the socket carries a short read timeout, so
//! every worker re-checks the shutdown flag at least once per timeout and
//! exits its loop cleanly; [`DaemonHandle::shutdown`] (or the ctl message)
//! sets the flag, and joining the workers yields the final report.

use std::io::ErrorKind;
use std::net::{IpAddr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geodns_core::{ObsCounters, ObsSnapshot};

use crate::mmsg;
use crate::AuthoritativeServer;

/// Prefix of a control datagram (with the trailing space separator).
pub const CTL_MAGIC: &[u8] = b"GDNSCTL1 ";

/// How worker threads move datagrams (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Per-worker `SO_REUSEPORT` sockets drained with `recvmmsg` and
    /// flushed with `sendmmsg` — two syscalls per batch. Linux-only;
    /// spawning falls back to [`Single`](Self::Single) elsewhere or when
    /// reuseport setup fails.
    Batched,
    /// One shared socket, one `recv_from` + one `send_to` per query.
    Single,
}

impl Default for IoMode {
    /// [`Batched`](Self::Batched) on Linux, [`Single`](Self::Single)
    /// elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            IoMode::Batched
        } else {
            IoMode::Single
        }
    }
}

impl std::fmt::Display for IoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoMode::Batched => "batched",
            IoMode::Single => "single",
        })
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "batched" => Ok(IoMode::Batched),
            "single" => Ok(IoMode::Single),
            other => Err(format!("unknown io mode {other:?} (expected batched|single)")),
        }
    }
}

/// Daemon-level settings (the site/scheduler configuration lives in the
/// per-worker [`AuthoritativeServer`] shards passed to [`Daemon::spawn`]).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (use port 0 to let the kernel pick; the bound
    /// address is available from [`DaemonHandle::local_addr`]).
    pub bind: SocketAddr,
    /// Socket read timeout — the upper bound on how long a worker can go
    /// without re-checking the shutdown flag. Also the shutdown latency
    /// floor for idle workers. Applies to both io modes (`recvmmsg`
    /// honours `SO_RCVTIMEO` for its initial blocking wait).
    pub read_timeout: Duration,
    /// Receive buffer size per worker rx slot; datagrams longer than this
    /// are truncated by the kernel (512 covers every query we answer).
    pub max_datagram: usize,
    /// Requested I/O mode; the effective mode (after any fallback) is
    /// [`DaemonHandle::io_mode`].
    pub io_mode: IoMode,
    /// Datagrams per `recvmmsg`/`sendmmsg` batch in [`IoMode::Batched`]
    /// (clamped to `1..=`[`mmsg::MAX_BATCH`]). 32 is the measured knee:
    /// syscall cost is already amortized ~30× while the arena stays
    /// cache-resident (EXPERIMENTS.md X15). Ignored in `Single` mode.
    pub batch: usize,
}

impl DaemonConfig {
    /// Sensible defaults for `bind`: 20 ms shutdown poll, 512-byte rx,
    /// the target's default [`IoMode`], batch 32.
    #[must_use]
    pub fn new(bind: SocketAddr) -> Self {
        DaemonConfig {
            bind,
            read_timeout: Duration::from_millis(20),
            max_datagram: 512,
            io_mode: IoMode::default(),
            batch: 32,
        }
    }
}

/// Shared mutable state between the workers and the handle.
struct Control {
    shutdown: AtomicBool,
    /// Bumped on every accepted `backlogs` ctl message; workers re-sync
    /// their shard when the epoch moves (a relaxed load per loop
    /// iteration, no lock on the hot path).
    backlog_epoch: AtomicU64,
    backlogs: Mutex<Vec<f64>>,
}

/// Per-worker datagram accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Datagrams received (DNS and control).
    pub received: u64,
    /// DNS responses sent.
    pub answered: u64,
    /// Control datagrams processed (including rejected ones).
    pub ctl: u64,
    /// Datagrams too mangled to answer (no extractable transaction id).
    pub dropped: u64,
    /// Transmissions the kernel refused: DNS responses (either io mode)
    /// *and* control acks — the shutdown/backlogs ack path used to
    /// discard its `send_to` result, silently under-reporting.
    pub tx_errors: u64,
    /// Receive errors other than the poll timeout.
    pub recv_errors: u64,
}

impl WorkerStats {
    fn add(&mut self, other: &WorkerStats) {
        self.received += other.received;
        self.answered += other.answered;
        self.ctl += other.ctl;
        self.dropped += other.dropped;
        self.tx_errors += other.tx_errors;
        self.recv_errors += other.recv_errors;
    }
}

/// What one worker hands back when it exits.
#[derive(Debug)]
pub struct WorkerReport {
    /// Datagram accounting.
    pub stats: WorkerStats,
    /// The worker's scheduler-decision counters (TTL min/mean/max,
    /// decisions, constrained decisions) through the observability layer.
    pub obs: ObsSnapshot,
}

/// The daemon's final report: one entry per worker, in worker order.
#[derive(Debug)]
pub struct DaemonReport {
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
}

impl DaemonReport {
    /// Datagram accounting summed over the workers.
    #[must_use]
    pub fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.workers {
            t.add(&w.stats);
        }
        t
    }

    /// Total DNS scheduling decisions (i.e. `A` answers) across workers.
    #[must_use]
    pub fn dns_decisions(&self) -> u64 {
        self.workers.iter().map(|w| w.obs.dns_decisions).sum()
    }
}

/// The daemon entry point. See the [module docs](self) for the threading
/// model, buffer discipline, and control protocol.
pub struct Daemon;

impl Daemon {
    /// Binds the socket and spawns one worker thread per shard.
    ///
    /// Every shard must front the same number of Web servers (they are
    /// shards of *one* site, so anything else is a configuration bug).
    ///
    /// # Errors
    ///
    /// Returns a message if there are no shards, the shards disagree on
    /// the server count, or any socket operation fails. A failure to set
    /// up `SO_REUSEPORT` sockets is **not** an error: the daemon degrades
    /// to [`IoMode::Single`] on one shared socket (check
    /// [`DaemonHandle::io_mode`] for the effective mode).
    pub fn spawn(
        cfg: &DaemonConfig,
        shards: Vec<AuthoritativeServer>,
    ) -> Result<DaemonHandle, String> {
        if shards.is_empty() {
            return Err("geodnsd needs at least one worker shard".into());
        }
        let n_servers = shards[0].num_servers();
        if let Some(bad) = shards.iter().position(|s| s.num_servers() != n_servers) {
            return Err(format!(
                "shard {bad} fronts {} servers but shard 0 fronts {n_servers}",
                shards[bad].num_servers()
            ));
        }

        // One socket per worker. Batched mode tries per-worker reuseport
        // sockets (the first bind resolves port 0; the rest bind the same
        // concrete address); any reuseport failure degrades to Single on
        // one shared socket, so `Batched` is always safe to request.
        let mut io_mode = cfg.io_mode;
        let mut sockets: Vec<UdpSocket> = Vec::with_capacity(shards.len());
        if io_mode == IoMode::Batched {
            match Self::bind_reuseport_set(cfg.bind, shards.len()) {
                Ok(set) => sockets = set,
                Err(_) => io_mode = IoMode::Single,
            }
        }
        if io_mode == IoMode::Single {
            let socket =
                UdpSocket::bind(cfg.bind).map_err(|e| format!("bind {}: {e}", cfg.bind))?;
            sockets.push(socket);
            for _ in 1..shards.len() {
                let clone = sockets[0].try_clone().map_err(|e| format!("clone socket: {e}"))?;
                sockets.push(clone);
            }
        }
        for socket in &sockets {
            socket
                .set_read_timeout(Some(cfg.read_timeout))
                .map_err(|e| format!("set_read_timeout: {e}"))?;
        }
        let local_addr = sockets[0].local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let control = Arc::new(Control {
            shutdown: AtomicBool::new(false),
            backlog_epoch: AtomicU64::new(0),
            backlogs: Mutex::new(vec![0.0; n_servers]),
        });
        let start = Instant::now();

        let mut workers = Vec::with_capacity(shards.len());
        for ((index, shard), socket) in shards.into_iter().enumerate().zip(sockets) {
            let control = Arc::clone(&control);
            let max_datagram = cfg.max_datagram;
            let batch = cfg.batch;
            let handle = std::thread::Builder::new()
                .name(format!("geodnsd-worker-{index}"))
                .spawn(move || match io_mode {
                    IoMode::Batched => {
                        worker_loop_batched(&socket, shard, &control, start, max_datagram, batch)
                    }
                    IoMode::Single => {
                        worker_loop_single(&socket, shard, &control, start, max_datagram)
                    }
                })
                .map_err(|e| format!("spawn worker {index}: {e}"))?;
            workers.push(handle);
        }
        Ok(DaemonHandle { local_addr, io_mode, control, workers })
    }

    /// Binds `count` `SO_REUSEPORT` sockets to the same address (the
    /// first resolves a port-0 bind; the rest reuse the concrete port).
    fn bind_reuseport_set(bind: SocketAddr, count: usize) -> std::io::Result<Vec<UdpSocket>> {
        let first = mmsg::bind_reuseport(bind)?;
        let concrete = first.local_addr()?;
        let mut sockets = vec![first];
        for _ in 1..count {
            sockets.push(mmsg::bind_reuseport(concrete)?);
        }
        Ok(sockets)
    }
}

/// A running daemon: the handle to query, stop, and reap it.
pub struct DaemonHandle {
    local_addr: SocketAddr,
    io_mode: IoMode,
    control: Arc<Control>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

impl DaemonHandle {
    /// The bound address (resolves port 0 binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The **effective** I/O mode: what was requested, unless reuseport
    /// setup failed (or the target is not Linux) and the daemon fell back
    /// to [`IoMode::Single`].
    #[must_use]
    pub fn io_mode(&self) -> IoMode {
        self.io_mode
    }

    /// Whether shutdown has been requested (by this handle or a ctl
    /// message); workers drain within one read timeout of it turning true.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.control.shutdown.load(Ordering::Relaxed)
    }

    /// Installs a new backlog snapshot, exactly as the `backlogs` ctl
    /// message does: every worker applies it to its shard before its next
    /// decision.
    ///
    /// # Errors
    ///
    /// Returns a message if the length does not match the server count.
    pub fn set_backlogs(&self, backlogs: &[f64]) -> Result<(), String> {
        let mut shared = self.control.backlogs.lock().expect("backlog lock poisoned");
        if backlogs.len() != shared.len() {
            return Err(format!("{} backlog values for {} servers", backlogs.len(), shared.len()));
        }
        shared.copy_from_slice(backlogs);
        drop(shared);
        self.control.backlog_epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Requests graceful shutdown and joins every worker, returning the
    /// final per-worker reports. Idempotent with a ctl-message shutdown:
    /// whichever arrives first starts the drain.
    #[must_use]
    pub fn shutdown(self) -> DaemonReport {
        self.control.shutdown.store(true, Ordering::Relaxed);
        let workers =
            self.workers.into_iter().map(|w| w.join().expect("geodnsd worker panicked")).collect();
        DaemonReport { workers }
    }
}

/// Copies a fresh backlog snapshot into the shard when the epoch moved
/// (one relaxed-ish atomic load per loop iteration; the lock is only
/// taken on an actual change).
fn sync_backlogs(
    shard: &mut AuthoritativeServer,
    control: &Control,
    local: &mut [f64],
    seen_epoch: &mut u64,
) {
    let epoch = control.backlog_epoch.load(Ordering::Acquire);
    if epoch != *seen_epoch {
        local.copy_from_slice(&control.backlogs.lock().expect("backlog lock poisoned"));
        shard.set_backlogs(local);
        *seen_epoch = epoch;
    }
}

/// The scheduler's view of a peer: v4 octets (v6 peers fall to the
/// fallback domain — the prefix table is v4).
fn src_octets(peer: SocketAddr) -> [u8; 4] {
    match peer.ip() {
        IpAddr::V4(v4) => v4.octets(),
        IpAddr::V6(_) => [0, 0, 0, 0],
    }
}

/// One worker's life in [`IoMode::Single`]: receive one datagram,
/// dispatch, send, repeat until shutdown.
fn worker_loop_single(
    socket: &UdpSocket,
    mut shard: AuthoritativeServer,
    control: &Control,
    start: Instant,
    max_datagram: usize,
) -> WorkerReport {
    let mut rx = vec![0u8; max_datagram];
    let mut tx = Vec::with_capacity(max_datagram);
    let mut local_backlogs = vec![0.0; shard.num_servers()];
    let mut seen_epoch = 0u64;
    let mut counters = ObsCounters::new();
    let mut stats = WorkerStats::default();

    loop {
        if control.shutdown.load(Ordering::Relaxed) {
            break;
        }
        sync_backlogs(&mut shard, control, &mut local_backlogs, &mut seen_epoch);
        let (len, peer) = match socket.recv_from(&mut rx) {
            Ok(x) => x,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => {
                stats.recv_errors += 1;
                continue;
            }
        };
        stats.received += 1;
        let datagram = &rx[..len];

        if datagram.starts_with(CTL_MAGIC) {
            stats.ctl += 1;
            if !handle_ctl(socket, &datagram[CTL_MAGIC.len()..], peer, control) {
                stats.tx_errors += 1;
            }
            continue;
        }

        let now_s = start.elapsed().as_secs_f64();
        match shard.handle_into_probed(datagram, src_octets(peer), now_s, &mut tx, &mut counters) {
            Ok(()) => {
                if socket.send_to(&tx, peer).is_ok() {
                    stats.answered += 1;
                } else {
                    stats.tx_errors += 1;
                }
            }
            Err(_) => stats.dropped += 1,
        }
    }
    WorkerReport { stats, obs: counters.snapshot(0, 0) }
}

/// One worker's life in [`IoMode::Batched`]: drain a batch with one
/// `recvmmsg`, serve every datagram through the same fast path, flush all
/// responses with one `sendmmsg`, repeat until shutdown.
///
/// Control datagrams are handled inline, ahead of the batch flush, on the
/// plain `send_to` path: they are rare, and a shutdown ack must not wait
/// behind the data plane. The shutdown flag is still polled once per
/// batch, bounded by the read timeout when idle — identical shutdown
/// semantics to the single-datagram loop.
fn worker_loop_batched(
    socket: &UdpSocket,
    mut shard: AuthoritativeServer,
    control: &Control,
    start: Instant,
    max_datagram: usize,
    batch: usize,
) -> WorkerReport {
    let mut rx = mmsg::RecvBatch::new(batch, max_datagram);
    let mut tx = mmsg::SendBatch::new(batch, max_datagram);
    let mut local_backlogs = vec![0.0; shard.num_servers()];
    let mut seen_epoch = 0u64;
    let mut counters = ObsCounters::new();
    let mut stats = WorkerStats::default();

    loop {
        if control.shutdown.load(Ordering::Relaxed) {
            break;
        }
        sync_backlogs(&mut shard, control, &mut local_backlogs, &mut seen_epoch);
        let n = match mmsg::recv_batch(socket, &mut rx) {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => {
                stats.recv_errors += 1;
                continue;
            }
        };
        stats.received += n as u64;
        // One timestamp per batch: the whole burst was on the wire
        // together, and amortizing the clock read is part of the point.
        let now_s = start.elapsed().as_secs_f64();
        for i in 0..n {
            let (datagram, peer) = rx.datagram(i);
            if datagram.starts_with(CTL_MAGIC) {
                stats.ctl += 1;
                if !handle_ctl(socket, &datagram[CTL_MAGIC.len()..], peer, control) {
                    stats.tx_errors += 1;
                }
                continue;
            }
            match shard.handle_into_probed(
                datagram,
                src_octets(peer),
                now_s,
                tx.buffer(),
                &mut counters,
            ) {
                Ok(()) => tx.commit(peer),
                Err(_) => stats.dropped += 1,
            }
        }
        let outcome = mmsg::send_batch(socket, &mut tx);
        stats.answered += outcome.sent;
        stats.tx_errors += outcome.errors;
    }
    WorkerReport { stats, obs: counters.snapshot(0, 0) }
}

/// Processes one control payload (already stripped of [`CTL_MAGIC`]).
/// Non-loopback senders are ignored outright — no parse, no ack.
///
/// Returns `false` only when an ack was owed and the kernel refused to
/// send it, so callers can count it as a tx error (the ack itself stays
/// best-effort: the sender may have already gone away).
fn handle_ctl(socket: &UdpSocket, payload: &[u8], peer: SocketAddr, control: &Control) -> bool {
    if !peer.ip().is_loopback() {
        return true;
    }
    let reply: &[u8] = match ctl_command(payload, control) {
        Ok(()) => b"GDNSCTL1 ok",
        Err(()) => b"GDNSCTL1 err",
    };
    socket.send_to(reply, peer).is_ok()
}

/// Parses and applies one ctl command; `Err` means "unrecognized or
/// malformed" (the sender gets a generic error ack either way).
fn ctl_command(payload: &[u8], control: &Control) -> Result<(), ()> {
    let text = std::str::from_utf8(payload).map_err(|_| ())?;
    let text = text.trim();
    if text == "shutdown" {
        control.shutdown.store(true, Ordering::Relaxed);
        return Ok(());
    }
    if let Some(csv) = text.strip_prefix("backlogs ") {
        let mut shared = control.backlogs.lock().expect("backlog lock poisoned");
        let n = shared.len();
        let mut parsed = 0usize;
        for (slot, field) in shared.iter_mut().zip(csv.split(',')) {
            *slot = field.trim().parse().map_err(|_| ())?;
            parsed += 1;
        }
        if parsed != n || csv.split(',').count() != n {
            return Err(());
        }
        drop(shared);
        control.backlog_epoch.fetch_add(1, Ordering::Release);
        return Ok(());
    }
    Err(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, Question, Rcode};

    fn loopback_daemon_mode(workers: usize, io_mode: IoMode) -> DaemonHandle {
        let shards = (0..workers).map(|_| AuthoritativeServer::example()).collect();
        let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        cfg.io_mode = io_mode;
        Daemon::spawn(&cfg, shards).expect("daemon spawns")
    }

    fn loopback_daemon(workers: usize) -> DaemonHandle {
        loopback_daemon_mode(workers, IoMode::default())
    }

    fn client() -> UdpSocket {
        let s = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        s.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        s
    }

    #[test]
    fn answers_real_udp_queries() {
        // Both io modes answer identically-shaped traffic; `Batched`
        // additionally exercises the reuseport + mmsg path on Linux (and
        // the documented fallback to `Single` elsewhere).
        for io_mode in [IoMode::Batched, IoMode::Single] {
            let daemon = loopback_daemon_mode(2, io_mode);
            let client = client();
            let mut buf = [0u8; 512];
            for id in 0..20u16 {
                let q = Message::query(id, Question::a("www.example.org"));
                client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send");
                let (n, _) = client.recv_from(&mut buf).expect("a response arrives");
                let resp = Message::parse(&buf[..n]).expect("well-formed response");
                assert_eq!(resp.header.id, id);
                assert_eq!(resp.header.rcode, Rcode::NoError);
                assert_eq!(resp.answers.len(), 1);
                assert!(resp.answers[0].ttl >= 1);
            }
            let report = daemon.shutdown();
            let totals = report.totals();
            assert_eq!(totals.answered, 20, "{io_mode} mode");
            assert_eq!(report.dns_decisions(), 20, "{io_mode} mode");
            assert_eq!(totals.dropped, 0, "{io_mode} mode");
            assert_eq!(totals.tx_errors, 0, "{io_mode} mode");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_mode_is_effective_on_linux() {
        let daemon = loopback_daemon_mode(2, IoMode::Batched);
        assert_eq!(daemon.io_mode(), IoMode::Batched, "no fallback expected on Linux");
        drop(daemon.shutdown());
        let daemon = loopback_daemon_mode(2, IoMode::Single);
        assert_eq!(daemon.io_mode(), IoMode::Single);
        drop(daemon.shutdown());
    }

    #[test]
    fn ctl_shutdown_drains_all_workers() {
        for io_mode in [IoMode::Batched, IoMode::Single] {
            let daemon = loopback_daemon_mode(3, io_mode);
            let client = client();
            client.send_to(b"GDNSCTL1 shutdown", daemon.local_addr()).expect("send ctl");
            let mut buf = [0u8; 64];
            let (n, _) = client.recv_from(&mut buf).expect("ack");
            assert_eq!(&buf[..n], b"GDNSCTL1 ok");
            // The flag is set; joining must complete promptly (read timeout).
            assert!(daemon.shutdown_requested());
            let report = daemon.shutdown();
            assert_eq!(report.workers.len(), 3, "{io_mode} mode");
            assert_eq!(report.totals().ctl, 1, "{io_mode} mode");
            assert_eq!(report.totals().tx_errors, 0, "{io_mode} mode: the ack went out");
        }
    }

    #[test]
    fn worker_stats_aggregation_includes_tx_errors() {
        // `tx_errors` must survive both aggregation layers: WorkerStats
        // addition and the DaemonReport totals over per-worker reports
        // (the old `send_errors` was counted per worker but the ctl-ack
        // path silently discarded its failures before reaching either).
        let a = WorkerStats {
            received: 5,
            answered: 3,
            ctl: 1,
            dropped: 1,
            tx_errors: 2,
            recv_errors: 1,
        };
        let b = WorkerStats {
            received: 7,
            answered: 6,
            ctl: 0,
            dropped: 0,
            tx_errors: 3,
            recv_errors: 0,
        };
        let obs = || ObsCounters::new().snapshot(0, 0);
        let report = DaemonReport {
            workers: vec![
                WorkerReport { stats: a, obs: obs() },
                WorkerReport { stats: b, obs: obs() },
            ],
        };
        let totals = report.totals();
        assert_eq!(totals.tx_errors, 5, "tx errors sum across workers");
        assert_eq!(
            totals,
            WorkerStats {
                received: 12,
                answered: 9,
                ctl: 1,
                dropped: 1,
                tx_errors: 5,
                recv_errors: 1
            }
        );
    }

    #[test]
    fn ctl_backlogs_reach_every_shard() {
        let daemon = loopback_daemon(2);
        let client = client();
        let csv: Vec<String> = (0..7).map(|i| format!("0.{i}")).collect();
        let msg = format!("GDNSCTL1 backlogs {}", csv.join(","));
        client.send_to(msg.as_bytes(), daemon.local_addr()).expect("send ctl");
        let mut buf = [0u8; 64];
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 ok");
        // Malformed updates are rejected: wrong count…
        client.send_to(b"GDNSCTL1 backlogs 1.0,2.0", daemon.local_addr()).expect("send");
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 err");
        // …and non-numeric fields.
        client.send_to(b"GDNSCTL1 backlogs a,b,c,d,e,f,g", daemon.local_addr()).expect("send");
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 err");
        // Queries still answered afterwards.
        let q = Message::query(1, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let (n, _) = client.recv_from(&mut buf).expect("answer");
        assert!(Message::parse(&buf[..n]).is_ok());
        drop(daemon.shutdown());
    }

    #[test]
    fn handle_set_backlogs_validates_length() {
        let daemon = loopback_daemon(1);
        assert!(daemon.set_backlogs(&[0.0; 3]).is_err());
        assert!(daemon.set_backlogs(&[0.1; 7]).is_ok());
        drop(daemon.shutdown());
    }

    #[test]
    fn mangled_datagrams_are_dropped_not_answered() {
        let daemon = loopback_daemon(1);
        let client = client();
        client.send_to(&[1, 2, 3], daemon.local_addr()).expect("send junk");
        // Follow with a real query; the only response must be its answer.
        let q = Message::query(77, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let mut buf = [0u8; 512];
        let (n, _) = client.recv_from(&mut buf).expect("answer");
        let resp = Message::parse(&buf[..n]).expect("parses");
        assert_eq!(resp.header.id, 77);
        let report = daemon.shutdown();
        assert_eq!(report.totals().dropped, 1);
        assert_eq!(report.totals().answered, 1);
    }

    #[test]
    fn spawn_rejects_empty_shards() {
        let cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        assert!(Daemon::spawn(&cfg, Vec::new()).is_err());
    }
}
