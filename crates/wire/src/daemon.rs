//! `geodnsd`: the multi-threaded UDP front end that puts the adaptive-TTL
//! scheduler on a live network path.
//!
//! # Threading model: share-nothing scheduler shards
//!
//! N worker threads, each owning a full [`AuthoritativeServer`] **shard**
//! — its own `DnsScheduler`, RNG stream, and backlog snapshot — so the
//! per-query path takes no lock and touches no shared cache line. The
//! alternative (one scheduler behind a sharded mutex) would keep the RR
//! pointers globally exact, but serializes every decision; with
//! share-nothing shards each worker's round-robin state advances
//! independently, and because the kernel spreads datagrams across workers
//! without regard to domain, the *aggregate* assignment over any window is
//! the same interleaving of per-shard rotations — the paper's policies
//! only need proportional shares, not a single global pointer. This is the
//! documented trade: exactness of the aggregate rotation within one TTL
//! window is sacrificed for linear scalability.
//!
//! # I/O model: one worker loop, three transports
//!
//! Every worker runs the same drain → serve → flush loop over an
//! `IoBackend` seam; [`DaemonConfig::io_mode`] selects which transport
//! implements it:
//!
//! * [`IoMode::Uring`] — every worker binds its **own** `SO_REUSEPORT`
//!   socket and drives it through an io_uring (see [`crate::uring`]):
//!   receive ops for the whole arena are parked in the kernel, responses
//!   are staged as send ops in shared-memory rings, and **one**
//!   `io_uring_enter` per loop iteration submits everything staged and
//!   waits for the next completion — one syscall per batch, covering
//!   both directions.
//! * [`IoMode::Batched`] (default on Linux) — the same reuseport
//!   sockets, drained with one `recvmmsg` and flushed with one
//!   `sendmmsg` per iteration (see [`crate::mmsg`]). Two syscalls per
//!   *batch* instead of two per query.
//! * [`IoMode::Single`] — the classic path: workers share one bound
//!   [`UdpSocket`] (each holds a `try_clone`d handle; the kernel wakes
//!   exactly one blocked reader per datagram) and pay one `recv_from` +
//!   one `send_to` per query. Kept selectable on Linux for debugging and
//!   for the differential test that pins all modes byte-identical.
//!
//! Degrade ladder: requesting `Uring` on a kernel (or sandbox) without
//! io_uring falls back to `Batched`; requesting `Batched` (directly or
//! via that fallback) where reuseport setup fails falls back to
//! `Single`. Spawning never fails over transport choice — the effective
//! mode is reported by [`DaemonHandle::io_mode`], the requested one by
//! [`DaemonHandle::requested_io_mode`].
//!
//! # Buffer discipline
//!
//! Each worker reuses its buffers for its whole life: one rx buffer and
//! one tx `Vec<u8>` in `Single` mode, the preallocated
//! [`RecvBatch`](crate::mmsg::RecvBatch)/[`SendBatch`](crate::mmsg::SendBatch)
//! arenas in `Batched` mode, the ring-registered arenas of
//! [`UringIo`](crate::uring::UringIo) in `Uring` mode. Every
//! steady-state loop (receive → fast-path handle → send) is
//! allocation-free once the tx buffers have grown to the answer size
//! (see `tests/alloc_free_wire.rs` for the pinned half of that claim).
//!
//! # The live §3 control loop
//!
//! With [`DaemonConfig::collect_interval`] set, the daemon runs the
//! paper's estimation loop against its **own** query stream instead of
//! being spoon-fed precomputed state:
//!
//! 1. **Accounting (fast path, per shard):** every scheduling decision
//!    bumps a plain per-domain counter inside the worker's own
//!    [`AuthoritativeServer`] — no atomics, no lock, no allocation (the
//!    increment rides the path pinned by `tests/alloc_free_wire.rs`).
//!    Once per batch the worker copies its cumulative counters into a
//!    per-worker slab of relaxed atomics — the only cross-thread traffic
//!    the accounting adds, well off the per-query path.
//! 2. **Collection (control thread):** every `collect_interval` a
//!    collector thread sums the slabs into cumulative per-domain totals,
//!    measures the real elapsed interval, and publishes both under the
//!    shared-state mutex, bumping the epoch.
//! 3. **Application (per shard, off the fast path):** each worker polls
//!    the epoch (one relaxed-ish atomic load per loop iteration) and, on
//!    a change, deltas the published totals against the last totals it
//!    ingested and feeds `DnsScheduler::ingest` — re-running the hidden
//!    load estimator, the γ = 1/K two-tier classifier, and the TTL table
//!    build. A worker that misses an epoch (it was mid-batch) folds the
//!    missed collections into its next delta: slightly coarser smoothing,
//!    never lost counts. Every shard ingests the same cumulative stream,
//!    so shard estimators converge to identical states.
//!
//! # Control protocol and shutdown
//!
//! Datagrams beginning with [`CTL_MAGIC`], accepted **only from loopback
//! sources**, are control messages rather than DNS. Stateless commands:
//!
//! * `GDNSCTL1 shutdown` — begin graceful shutdown; acks `GDNSCTL1 ok`.
//! * `GDNSCTL1 weights` — report the answering shard's current relative
//!   weight estimates; acks `GDNSCTL1 ok <f64,f64,…>`.
//!
//! Stateful commands carry a strictly increasing sequence number (the
//! transport is UDP: a delayed or duplicated datagram must not overwrite
//! newer state with stale state — a reordered `normal` after a fresher
//! `alarm` would silently re-admit an overloaded server). The daemon
//! tracks the highest sequence applied and acks anything at or below it
//! with `GDNSCTL1 err stale`, applying nothing:
//!
//! * `GDNSCTL1 backlogs <seq> <f64,f64,…>` — install a backlog snapshot
//!   (one value per Web server) that every shard picks up before its
//!   next decision; acks `GDNSCTL1 ok`.
//! * `GDNSCTL1 alarm <seq> <server>` / `GDNSCTL1 normal <seq> <server>`
//!   — the paper's asynchronous alarm feedback: mark one Web server
//!   overloaded (excluded from scheduling) or recovered; acks
//!   `GDNSCTL1 ok`.
//!
//! Malformed commands ack `GDNSCTL1 err`; sequence numbers are consumed
//! only by accepted commands.
//!
//! Shutdown is flag-based: the socket carries a short read timeout, so
//! every worker re-checks the shutdown flag at least once per timeout and
//! exits its loop cleanly; [`DaemonHandle::shutdown`] (or the ctl message)
//! sets the flag, and joining the workers yields the final report.

use std::io::ErrorKind;
use std::net::{IpAddr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geodns_core::{ObsCounters, ObsSnapshot};
use geodns_server::Signal;

use crate::mmsg;
use crate::AuthoritativeServer;

/// Prefix of a control datagram (with the trailing space separator).
pub const CTL_MAGIC: &[u8] = b"GDNSCTL1 ";

/// How worker threads move datagrams (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Per-worker `SO_REUSEPORT` sockets driven through io_uring — one
    /// `io_uring_enter` per batch, covering receives and sends. Falls
    /// back to [`Batched`](Self::Batched) when the kernel (or the
    /// sandbox) has no usable io_uring.
    Uring,
    /// Per-worker `SO_REUSEPORT` sockets drained with `recvmmsg` and
    /// flushed with `sendmmsg` — two syscalls per batch. Linux-only;
    /// spawning falls back to [`Single`](Self::Single) elsewhere or when
    /// reuseport setup fails.
    Batched,
    /// One shared socket, one `recv_from` + one `send_to` per query.
    Single,
}

impl Default for IoMode {
    /// [`Batched`](Self::Batched) on Linux, [`Single`](Self::Single)
    /// elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            IoMode::Batched
        } else {
            IoMode::Single
        }
    }
}

impl std::fmt::Display for IoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoMode::Uring => "uring",
            IoMode::Batched => "batched",
            IoMode::Single => "single",
        })
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uring" => Ok(IoMode::Uring),
            "batched" => Ok(IoMode::Batched),
            "single" => Ok(IoMode::Single),
            other => Err(format!("unknown io mode {other:?} (expected uring|batched|single)")),
        }
    }
}

/// Daemon-level settings (the site/scheduler configuration lives in the
/// per-worker [`AuthoritativeServer`] shards passed to [`Daemon::spawn`]).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (use port 0 to let the kernel pick; the bound
    /// address is available from [`DaemonHandle::local_addr`]).
    pub bind: SocketAddr,
    /// Socket read timeout — the upper bound on how long a worker can go
    /// without re-checking the shutdown flag. Also the shutdown latency
    /// floor for idle workers. Applies to both io modes (`recvmmsg`
    /// honours `SO_RCVTIMEO` for its initial blocking wait).
    pub read_timeout: Duration,
    /// Receive buffer size per worker rx slot; datagrams longer than this
    /// are truncated by the kernel (512 covers every query we answer).
    pub max_datagram: usize,
    /// Requested I/O mode; the effective mode (after any fallback) is
    /// [`DaemonHandle::io_mode`].
    pub io_mode: IoMode,
    /// Datagrams per `recvmmsg`/`sendmmsg` batch in [`IoMode::Batched`]
    /// (clamped to `1..=`[`mmsg::MAX_BATCH`]). 32 is the measured knee:
    /// syscall cost is already amortized ~30× while the arena stays
    /// cache-resident (EXPERIMENTS.md X15). Ignored in `Single` mode.
    pub batch: usize,
    /// When set, a collector thread merges the per-worker per-domain
    /// query counters every such interval and publishes them for the
    /// shards to ingest — the live §3 control loop (see the
    /// [module docs](self)). `None` (the default) runs no collector:
    /// the shards keep whatever estimator state they were built with
    /// (the oracle/backlog-fed configuration).
    pub collect_interval: Option<Duration>,
    /// When set, worker `i` pins itself to CPU `(pin + i) mod
    /// online_cpus` via [`crate::affinity::pin_to_core`] — the pinned
    /// rows of the scaling wall-chart. Best-effort: a failed pin leaves
    /// the worker unpinned rather than failing the spawn.
    pub pin: Option<usize>,
    /// Test hook: pretend the kernel has no io_uring, forcing the
    /// `Uring → Batched` degrade path without needing a pre-5.1 kernel.
    #[doc(hidden)]
    pub force_uring_unsupported: bool,
}

impl DaemonConfig {
    /// Sensible defaults for `bind`: 20 ms shutdown poll, 512-byte rx,
    /// the target's default [`IoMode`], batch 32, no collector thread,
    /// no pinning.
    #[must_use]
    pub fn new(bind: SocketAddr) -> Self {
        DaemonConfig {
            bind,
            read_timeout: Duration::from_millis(20),
            max_datagram: 512,
            io_mode: IoMode::default(),
            batch: 32,
            collect_interval: None,
            pin: None,
            force_uring_unsupported: false,
        }
    }
}

/// The state published to every worker: backlog snapshot, alarm mask,
/// and the collector's cumulative merged counts. One mutex guards it all
/// so a stateful ctl message's sequence check and its state change are
/// atomic (a stale datagram can never slip its payload in after a newer
/// one passed a separate check).
struct SharedState {
    /// Highest sequence number applied from a stateful ctl message.
    ctl_seq: u64,
    /// Per-server backlog snapshot (the backlog-aware policies' input).
    backlogs: Vec<f64>,
    /// Per-server alarm mask (true = alarmed, excluded from scheduling).
    alarmed: Vec<bool>,
    /// Cumulative per-domain query counts merged across the worker slabs
    /// (monotone: each slab is a worker's own monotone counter).
    counts: Vec<u64>,
    /// Cumulative estimation time in seconds: the sum of the real
    /// (measured, not nominal) collection intervals published so far.
    interval_s: f64,
    /// Collections published by the collector thread.
    collections: u64,
}

/// Shared mutable state between the workers, the collector thread, and
/// the handle.
struct Control {
    shutdown: AtomicBool,
    /// Bumped on every publication into [`SharedState`] (accepted ctl
    /// message, handle API call, or collector merge); workers re-sync
    /// their shard when the epoch moves (a relaxed load per loop
    /// iteration, no lock on the hot path).
    epoch: AtomicU64,
    shared: Mutex<SharedState>,
    /// One slab per worker, one slot per domain: the worker's cumulative
    /// per-domain query counts, flushed from its plain shard counters
    /// once per batch with relaxed stores (each slab has exactly one
    /// writer; the collector only reads).
    counts: Vec<Vec<AtomicU64>>,
}

/// Locks the shared state, recovering from poisoning: a worker that
/// panicked while holding the lock must not wedge every other worker's
/// sync (and with it the whole data plane) forever. The guarded data is
/// plain values — every writer either completes its update or leaves the
/// previous snapshot in place — so the poisoned payload is safe to take.
fn lock_shared(shared: &Mutex<SharedState>) -> MutexGuard<'_, SharedState> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-worker datagram accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Datagrams received (DNS and control).
    pub received: u64,
    /// DNS responses sent.
    pub answered: u64,
    /// Control datagrams processed (including rejected ones).
    pub ctl: u64,
    /// Datagrams too mangled to answer (no extractable transaction id).
    pub dropped: u64,
    /// Transmissions the kernel refused: DNS responses (any io mode)
    /// *and* control acks — the shutdown/backlogs ack path used to
    /// discard its `send_to` result, silently under-reporting.
    pub tx_errors: u64,
    /// Receive errors other than the poll timeout.
    pub recv_errors: u64,
    /// Datagrams the kernel dropped from this worker's socket receive
    /// queue (`SO_RXQ_OVFL`, cumulative over the worker's life) — how a
    /// saturated run distinguishes "served everything offered" from
    /// silent loss ahead of the daemon. Control messages ride the
    /// `recvmsg` family only, so `Single` mode always reports 0.
    pub rx_drops: u64,
}

impl WorkerStats {
    fn add(&mut self, other: &WorkerStats) {
        self.received += other.received;
        self.answered += other.answered;
        self.ctl += other.ctl;
        self.dropped += other.dropped;
        self.tx_errors += other.tx_errors;
        self.recv_errors += other.recv_errors;
        self.rx_drops += other.rx_drops;
    }
}

/// What one worker hands back when it exits.
#[derive(Debug)]
pub struct WorkerReport {
    /// Datagram accounting.
    pub stats: WorkerStats,
    /// The worker's scheduler-decision counters (TTL min/mean/max,
    /// decisions, constrained decisions) through the observability layer.
    pub obs: ObsSnapshot,
    /// The shard's relative per-domain weight estimates at exit (sums to
    /// 1). With the oracle estimator these are the configured nominal
    /// shares; with live estimation they are what the shard learned.
    pub weights: Vec<f64>,
    /// Estimator collections this shard ingested (a shard that missed an
    /// epoch mid-batch folds the missed collections into one delta, so
    /// this can lag the collector's publication count without any counts
    /// being lost).
    pub collections: u64,
}

/// The daemon's final report: one entry per worker, in worker order.
#[derive(Debug)]
pub struct DaemonReport {
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
}

impl DaemonReport {
    /// Datagram accounting summed over the workers.
    #[must_use]
    pub fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.workers {
            t.add(&w.stats);
        }
        t
    }

    /// Total DNS scheduling decisions (i.e. `A` answers) across workers.
    #[must_use]
    pub fn dns_decisions(&self) -> u64 {
        self.workers.iter().map(|w| w.obs.dns_decisions).sum()
    }

    /// Estimator collections ingested by the most up-to-date shard
    /// (shards can individually lag by folding missed epochs into one
    /// delta, so the max is the collector's effective publication reach).
    #[must_use]
    pub fn collections(&self) -> u64 {
        self.workers.iter().map(|w| w.collections).max().unwrap_or(0)
    }
}

/// The daemon entry point. See the [module docs](self) for the threading
/// model, buffer discipline, and control protocol.
pub struct Daemon;

impl Daemon {
    /// Binds the socket and spawns one worker thread per shard.
    ///
    /// Every shard must front the same number of Web servers (they are
    /// shards of *one* site, so anything else is a configuration bug).
    ///
    /// # Errors
    ///
    /// Returns a message if there are no shards, the shards disagree on
    /// the server count, or any socket operation fails. A failure to set
    /// up `SO_REUSEPORT` sockets is **not** an error: the daemon degrades
    /// to [`IoMode::Single`] on one shared socket (check
    /// [`DaemonHandle::io_mode`] for the effective mode).
    pub fn spawn(
        cfg: &DaemonConfig,
        shards: Vec<AuthoritativeServer>,
    ) -> Result<DaemonHandle, String> {
        if shards.is_empty() {
            return Err("geodnsd needs at least one worker shard".into());
        }
        let n_servers = shards[0].num_servers();
        if let Some(bad) = shards.iter().position(|s| s.num_servers() != n_servers) {
            return Err(format!(
                "shard {bad} fronts {} servers but shard 0 fronts {n_servers}",
                shards[bad].num_servers()
            ));
        }
        let n_domains = shards[0].num_domains();
        if let Some(bad) = shards.iter().position(|s| s.num_domains() != n_domains) {
            return Err(format!(
                "shard {bad} schedules {} domains but shard 0 schedules {n_domains}",
                shards[bad].num_domains()
            ));
        }

        // Transport selection, top of the degrade ladder first. Uring
        // needs a working io_uring *and* the reuseport sockets below;
        // probing before binding keeps the ladder one-directional.
        let requested = cfg.io_mode;
        let mut io_mode = cfg.io_mode;
        if io_mode == IoMode::Uring && (cfg.force_uring_unsupported || !crate::uring::supported()) {
            io_mode = IoMode::Batched;
        }

        // One socket per worker. Uring/Batched modes try per-worker
        // reuseport sockets (the first bind resolves port 0; the rest
        // bind the same concrete address); any reuseport failure degrades
        // to Single on one shared socket, so every mode is always safe to
        // request.
        let mut sockets: Vec<UdpSocket> = Vec::with_capacity(shards.len());
        if io_mode != IoMode::Single {
            match Self::bind_reuseport_set(cfg.bind, shards.len()) {
                Ok(set) => sockets = set,
                Err(_) => io_mode = IoMode::Single,
            }
        }
        if io_mode == IoMode::Single {
            let socket =
                UdpSocket::bind(cfg.bind).map_err(|e| format!("bind {}: {e}", cfg.bind))?;
            sockets.push(socket);
            for _ in 1..shards.len() {
                let clone = sockets[0].try_clone().map_err(|e| format!("clone socket: {e}"))?;
                sockets.push(clone);
            }
        }
        for socket in &sockets {
            socket
                .set_read_timeout(Some(cfg.read_timeout))
                .map_err(|e| format!("set_read_timeout: {e}"))?;
            if io_mode != IoMode::Single {
                // Drop accounting rides recvmsg control messages; only
                // the batched/uring transports can see them. Best-effort:
                // without it rx_drops just stays 0.
                let _ = mmsg::enable_rxq_ovfl(socket);
            }
        }
        let local_addr = sockets[0].local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let control = Arc::new(Control {
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            shared: Mutex::new(SharedState {
                ctl_seq: 0,
                backlogs: vec![0.0; n_servers],
                alarmed: vec![false; n_servers],
                counts: vec![0; n_domains],
                interval_s: 0.0,
                collections: 0,
            }),
            counts: (0..shards.len())
                .map(|_| (0..n_domains).map(|_| AtomicU64::new(0)).collect())
                .collect(),
        });
        let start = Instant::now();

        let online = crate::affinity::online_cpus().max(1);
        let mut workers = Vec::with_capacity(shards.len());
        for ((index, shard), socket) in shards.into_iter().enumerate().zip(sockets) {
            let control = Arc::clone(&control);
            let max_datagram = cfg.max_datagram;
            let batch = cfg.batch;
            let read_timeout = cfg.read_timeout;
            let pin_core = cfg.pin.map(|base| (base + index) % online);
            let handle = std::thread::Builder::new()
                .name(format!("geodnsd-worker-{index}"))
                .spawn(move || {
                    if let Some(core) = pin_core {
                        // Best-effort: an excluded core (cpuset) leaves
                        // this worker floating, which only costs the
                        // pinned-row measurement its pin.
                        let _ = crate::affinity::pin_to_core(core);
                    }
                    match io_mode {
                        IoMode::Uring => {
                            match crate::uring::UringIo::new(
                                socket,
                                batch,
                                max_datagram,
                                read_timeout,
                            ) {
                                Ok(io) => worker_loop(io, shard, &control, start, index),
                                // The spawn-time probe passed but this
                                // worker's ring still failed (e.g. a
                                // memlock limit hit under load): serve
                                // batched on the same socket rather than
                                // dying.
                                Err((socket, _)) => worker_loop(
                                    BatchedIo::new(socket, batch, max_datagram),
                                    shard,
                                    &control,
                                    start,
                                    index,
                                ),
                            }
                        }
                        IoMode::Batched => worker_loop(
                            BatchedIo::new(socket, batch, max_datagram),
                            shard,
                            &control,
                            start,
                            index,
                        ),
                        IoMode::Single => worker_loop(
                            SingleIo::new(socket, max_datagram),
                            shard,
                            &control,
                            start,
                            index,
                        ),
                    }
                })
                .map_err(|e| format!("spawn worker {index}: {e}"))?;
            workers.push(handle);
        }
        let collector = match cfg.collect_interval {
            Some(interval) => {
                let control = Arc::clone(&control);
                let poll = cfg.read_timeout;
                let handle = std::thread::Builder::new()
                    .name("geodnsd-collector".into())
                    .spawn(move || collector_loop(&control, interval, poll))
                    .map_err(|e| format!("spawn collector: {e}"))?;
                Some(handle)
            }
            None => None,
        };
        Ok(DaemonHandle { local_addr, io_mode, requested, control, workers, collector })
    }

    /// Binds `count` `SO_REUSEPORT` sockets to the same address (the
    /// first resolves a port-0 bind; the rest reuse the concrete port).
    fn bind_reuseport_set(bind: SocketAddr, count: usize) -> std::io::Result<Vec<UdpSocket>> {
        let first = mmsg::bind_reuseport(bind)?;
        let concrete = first.local_addr()?;
        let mut sockets = vec![first];
        for _ in 1..count {
            sockets.push(mmsg::bind_reuseport(concrete)?);
        }
        Ok(sockets)
    }
}

/// A running daemon: the handle to query, stop, and reap it.
pub struct DaemonHandle {
    local_addr: SocketAddr,
    io_mode: IoMode,
    requested: IoMode,
    control: Arc<Control>,
    workers: Vec<JoinHandle<WorkerReport>>,
    collector: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (resolves port 0 binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The **effective** I/O mode after any degrade: `Uring` falls back
    /// to `Batched` without a usable io_uring, and `Batched` falls back
    /// to `Single` when reuseport setup fails (or the target is not
    /// Linux).
    #[must_use]
    pub fn io_mode(&self) -> IoMode {
        self.io_mode
    }

    /// The I/O mode that was requested; differs from
    /// [`io_mode`](Self::io_mode) exactly when the daemon degraded, so
    /// callers can report the fallback in their exit summaries.
    #[must_use]
    pub fn requested_io_mode(&self) -> IoMode {
        self.requested
    }

    /// Whether shutdown has been requested (by this handle or a ctl
    /// message); workers drain within one read timeout of it turning true.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.control.shutdown.load(Ordering::Relaxed)
    }

    /// Installs a new backlog snapshot, exactly as the `backlogs` ctl
    /// message does: every worker applies it to its shard before its next
    /// decision.
    ///
    /// # Errors
    ///
    /// Returns a message if the length does not match the server count.
    pub fn set_backlogs(&self, backlogs: &[f64]) -> Result<(), String> {
        let mut shared = lock_shared(&self.control.shared);
        if backlogs.len() != shared.backlogs.len() {
            return Err(format!(
                "{} backlog values for {} servers",
                backlogs.len(),
                shared.backlogs.len()
            ));
        }
        shared.backlogs.copy_from_slice(backlogs);
        drop(shared);
        self.control.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Requests graceful shutdown and joins every worker (and the
    /// collector thread, if live estimation was on), returning the final
    /// per-worker reports. Idempotent with a ctl-message shutdown:
    /// whichever arrives first starts the drain.
    #[must_use]
    pub fn shutdown(self) -> DaemonReport {
        self.control.shutdown.store(true, Ordering::Relaxed);
        let workers: Vec<WorkerReport> =
            self.workers.into_iter().map(|w| w.join().expect("geodnsd worker panicked")).collect();
        if let Some(collector) = self.collector {
            collector.join().expect("geodnsd collector panicked");
        }
        DaemonReport { workers }
    }
}

/// One worker's view of the shared control state: the last epoch it
/// applied, the alarm mask it has signalled into its shard, the last
/// cumulative counts/interval it ingested, and preallocated scratch so
/// the sync path allocates nothing in steady state.
struct ShardSync {
    epoch: u64,
    /// Scratch: backlog snapshot copied out under the lock.
    backlogs: Vec<f64>,
    /// Scratch: published alarm mask copied out under the lock.
    alarm_now: Vec<bool>,
    /// The alarm mask this shard has actually signalled (diffed against
    /// `alarm_now` so each transition becomes exactly one `signal` call).
    alarmed: Vec<bool>,
    /// Scratch: published cumulative counts copied out under the lock.
    counts: Vec<u64>,
    /// Scratch: per-domain count delta handed to `ingest`.
    delta: Vec<u64>,
    /// Cumulative counts as of this shard's last accepted ingest.
    last_counts: Vec<u64>,
    /// Cumulative interval as of this shard's last accepted ingest.
    last_interval: f64,
    /// Accepted ingests (reported as [`WorkerReport::collections`]).
    collections: u64,
}

impl ShardSync {
    fn new(n_servers: usize, n_domains: usize) -> Self {
        ShardSync {
            epoch: 0,
            backlogs: vec![0.0; n_servers],
            alarm_now: vec![false; n_servers],
            alarmed: vec![false; n_servers],
            counts: vec![0; n_domains],
            delta: vec![0; n_domains],
            last_counts: vec![0; n_domains],
            last_interval: 0.0,
            collections: 0,
        }
    }
}

/// Applies any pending shared-state publication to the shard: backlog
/// snapshot, alarm transitions (as [`Signal`]s), and estimator
/// collections (as cumulative-count deltas). One relaxed-ish atomic load
/// per loop iteration; the lock is only taken when the epoch moved, and
/// shard updates run *after* the lock is dropped.
fn sync_control(shard: &mut AuthoritativeServer, control: &Control, sync: &mut ShardSync) {
    let epoch = control.epoch.load(Ordering::Acquire);
    if epoch == sync.epoch {
        return;
    }
    sync.epoch = epoch;
    let interval = {
        let shared = lock_shared(&control.shared);
        sync.backlogs.copy_from_slice(&shared.backlogs);
        sync.alarm_now.copy_from_slice(&shared.alarmed);
        sync.counts.copy_from_slice(&shared.counts);
        shared.interval_s
    };
    shard.set_backlogs(&sync.backlogs);
    for server in 0..sync.alarmed.len() {
        if sync.alarm_now[server] != sync.alarmed[server] {
            let signal = if sync.alarm_now[server] { Signal::Alarm } else { Signal::Normal };
            shard.scheduler_mut().signal(server, signal);
            sync.alarmed[server] = sync.alarm_now[server];
        }
    }
    // Delta against what *this shard* last ingested, not the previous
    // publication: a shard that slept through an epoch folds the missed
    // collections into one coarser (but count-preserving) EMA step.
    let dt = interval - sync.last_interval;
    if dt > 0.0 {
        for (d, (c, last)) in sync.delta.iter_mut().zip(sync.counts.iter().zip(&sync.last_counts)) {
            *d = c.saturating_sub(*last);
        }
        if shard.scheduler_mut().ingest(&sync.delta, dt) {
            sync.collections += 1;
        }
        sync.last_counts.copy_from_slice(&sync.counts);
        sync.last_interval = interval;
    }
}

/// Publishes the worker's cumulative per-domain counters into its slab
/// (plain relaxed stores: the slab has one writer — this worker — and
/// one reader — the collector; no read-modify-write needed).
fn flush_counts(shard: &AuthoritativeServer, slab: &[AtomicU64]) {
    for (slot, &count) in slab.iter().zip(shard.domain_queries()) {
        slot.store(count, Ordering::Relaxed);
    }
}

/// The collector thread: every `interval`, sum the worker slabs into
/// cumulative per-domain totals, stamp them with the *measured* elapsed
/// time, publish under the shared lock, and bump the epoch. Sleeps in
/// `poll`-sized steps so shutdown stays responsive.
fn collector_loop(control: &Control, interval: Duration, poll: Duration) {
    let n_domains = control.counts.first().map_or(0, Vec::len);
    let mut merged = vec![0u64; n_domains];
    let mut last = Instant::now();
    loop {
        while last.elapsed() < interval {
            if control.shutdown.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(poll.min(interval.saturating_sub(last.elapsed())));
        }
        let dt = last.elapsed().as_secs_f64();
        last = Instant::now();
        merged.fill(0);
        for slab in &control.counts {
            for (total, slot) in merged.iter_mut().zip(slab) {
                *total += slot.load(Ordering::Relaxed);
            }
        }
        let mut shared = lock_shared(&control.shared);
        shared.counts.copy_from_slice(&merged);
        shared.interval_s += dt;
        shared.collections += 1;
        drop(shared);
        control.epoch.fetch_add(1, Ordering::Release);
    }
}

/// The scheduler's view of a peer: v4 octets (v6 peers fall to the
/// fallback domain — the prefix table is v4).
fn src_octets(peer: SocketAddr) -> [u8; 4] {
    match peer.ip() {
        IpAddr::V4(v4) => v4.octets(),
        IpAddr::V6(_) => [0, 0, 0, 0],
    }
}

/// The transport seam every worker loop runs over: drain a round of
/// datagrams ([`recv`](Self::recv)), inspect each
/// ([`peek`](Self::peek)), answer the DNS ones ([`serve`](Self::serve)),
/// end the round ([`flush`](Self::flush)). Each backend keeps its rx and
/// tx arenas internal, so `serve` can read a received datagram while
/// staging its response without fighting the borrow checker across the
/// seam.
trait IoBackend {
    /// Blocks (bounded by the read timeout) for the next round of
    /// datagrams; returns how many are ready. `Ok(0)` is an idle wakeup.
    fn recv(&mut self) -> std::io::Result<usize>;

    /// The `i`-th ready datagram and its sender, for dispatch (ctl vs
    /// DNS) — serving goes through [`serve`](Self::serve).
    fn peek(&self, i: usize) -> (&[u8], SocketAddr);

    /// Serves the `i`-th ready datagram through the shard's fast path,
    /// staging (or sending) the response. Returns `false` if the
    /// datagram was too mangled to answer.
    fn serve(
        &mut self,
        i: usize,
        shard: &mut AuthoritativeServer,
        now_s: f64,
        counters: &mut ObsCounters,
    ) -> bool;

    /// Ends the round: pushes staged responses toward the kernel and
    /// reports send outcomes observed so far. Backends with asynchronous
    /// sends (uring) may report earlier rounds' outcomes here; the
    /// remainder arrives via [`finish`](Self::finish).
    fn flush(&mut self) -> mmsg::SendOutcome;

    /// Shutdown drain: settles any still-in-flight sends and returns
    /// their outcomes.
    fn finish(&mut self) -> mmsg::SendOutcome {
        mmsg::SendOutcome::default()
    }

    /// The socket control acks go out through (plain `send_to`: ctl is
    /// rare and must not wait behind the data plane).
    fn ctl_sock(&self) -> &UdpSocket;

    /// Cumulative kernel receive-queue drops on this worker's socket.
    fn rx_drops(&self) -> u64 {
        0
    }

    /// Per-op receive failures the backend absorbed and re-armed
    /// (folded into `recv_errors` at exit).
    fn recv_op_errors(&self) -> u64 {
        0
    }
}

/// [`IoMode::Single`]: one `recv_from` + one `send_to` per query on the
/// shared socket; responses go out inside [`serve`](IoBackend::serve),
/// so `flush` only reports.
struct SingleIo {
    socket: UdpSocket,
    rx: Vec<u8>,
    len: usize,
    peer: SocketAddr,
    tx: Vec<u8>,
    outcome: mmsg::SendOutcome,
}

impl SingleIo {
    fn new(socket: UdpSocket, max_datagram: usize) -> Self {
        SingleIo {
            socket,
            rx: vec![0u8; max_datagram.max(1)],
            len: 0,
            peer: SocketAddr::new(IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED), 0),
            tx: Vec::with_capacity(max_datagram),
            outcome: mmsg::SendOutcome::default(),
        }
    }
}

impl IoBackend for SingleIo {
    fn recv(&mut self) -> std::io::Result<usize> {
        let (len, peer) = self.socket.recv_from(&mut self.rx)?;
        self.len = len;
        self.peer = peer;
        Ok(1)
    }

    fn peek(&self, _i: usize) -> (&[u8], SocketAddr) {
        (&self.rx[..self.len], self.peer)
    }

    fn serve(
        &mut self,
        _i: usize,
        shard: &mut AuthoritativeServer,
        now_s: f64,
        counters: &mut ObsCounters,
    ) -> bool {
        let datagram = &self.rx[..self.len];
        match shard.handle_into_probed(
            datagram,
            src_octets(self.peer),
            now_s,
            &mut self.tx,
            counters,
        ) {
            Ok(()) => {
                if self.socket.send_to(&self.tx, self.peer).is_ok() {
                    self.outcome.sent += 1;
                } else {
                    self.outcome.errors += 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    fn flush(&mut self) -> mmsg::SendOutcome {
        std::mem::take(&mut self.outcome)
    }

    fn ctl_sock(&self) -> &UdpSocket {
        &self.socket
    }
}

/// [`IoMode::Batched`]: `recvmmsg`/`sendmmsg` over the
/// [`crate::mmsg`] arenas — two syscalls per round.
struct BatchedIo {
    socket: UdpSocket,
    rx: mmsg::RecvBatch,
    tx: mmsg::SendBatch,
}

impl BatchedIo {
    fn new(socket: UdpSocket, batch: usize, max_datagram: usize) -> Self {
        BatchedIo {
            socket,
            rx: mmsg::RecvBatch::new(batch, max_datagram),
            tx: mmsg::SendBatch::new(batch, max_datagram),
        }
    }
}

impl IoBackend for BatchedIo {
    fn recv(&mut self) -> std::io::Result<usize> {
        mmsg::recv_batch(&self.socket, &mut self.rx)
    }

    fn peek(&self, i: usize) -> (&[u8], SocketAddr) {
        self.rx.datagram(i)
    }

    fn serve(
        &mut self,
        i: usize,
        shard: &mut AuthoritativeServer,
        now_s: f64,
        counters: &mut ObsCounters,
    ) -> bool {
        let (datagram, peer) = self.rx.datagram(i);
        match shard.handle_into_probed(
            datagram,
            src_octets(peer),
            now_s,
            self.tx.buffer(),
            counters,
        ) {
            Ok(()) => {
                self.tx.commit(peer);
                true
            }
            Err(_) => false,
        }
    }

    fn flush(&mut self) -> mmsg::SendOutcome {
        mmsg::send_batch(&self.socket, &mut self.tx)
    }

    fn ctl_sock(&self) -> &UdpSocket {
        &self.socket
    }

    fn rx_drops(&self) -> u64 {
        self.rx.kernel_drops()
    }
}

/// [`IoMode::Uring`]: the [`crate::uring::UringIo`] transport — one
/// `io_uring_enter` per round, covering receives and sends.
impl IoBackend for crate::uring::UringIo {
    fn recv(&mut self) -> std::io::Result<usize> {
        crate::uring::UringIo::recv(self)
    }

    fn peek(&self, i: usize) -> (&[u8], SocketAddr) {
        self.datagram(i)
    }

    fn serve(
        &mut self,
        i: usize,
        shard: &mut AuthoritativeServer,
        now_s: f64,
        counters: &mut ObsCounters,
    ) -> bool {
        // `parts` is None only when every tx slot is in flight; the
        // response is shed and already counted as a tx error.
        let Some((datagram, peer, buf)) = self.parts(i) else { return true };
        match shard.handle_into_probed(datagram, src_octets(peer), now_s, buf, counters) {
            Ok(()) => {
                self.commit(peer);
                true
            }
            Err(_) => false,
        }
    }

    fn flush(&mut self) -> mmsg::SendOutcome {
        crate::uring::UringIo::flush(self)
    }

    fn finish(&mut self) -> mmsg::SendOutcome {
        crate::uring::UringIo::finish(self)
    }

    fn ctl_sock(&self) -> &UdpSocket {
        self.socket()
    }

    fn rx_drops(&self) -> u64 {
        self.kernel_drops()
    }

    fn recv_op_errors(&self) -> u64 {
        crate::uring::UringIo::recv_op_errors(self)
    }
}

/// One worker's life, over any [`IoBackend`]: drain a round, serve every
/// datagram through the same fast path, flush, repeat until shutdown.
///
/// Control datagrams are handled inline, ahead of the round's flush, on
/// the plain `send_to` path: they are rare, and a shutdown ack must not
/// wait behind the data plane. The shutdown flag is polled once per
/// round, bounded by the read timeout when idle — identical shutdown
/// semantics in every mode.
fn worker_loop<B: IoBackend>(
    mut io: B,
    mut shard: AuthoritativeServer,
    control: &Control,
    start: Instant,
    index: usize,
) -> WorkerReport {
    let mut sync = ShardSync::new(shard.num_servers(), shard.num_domains());
    let slab = &control.counts[index];
    let mut counters = ObsCounters::new();
    let mut stats = WorkerStats::default();

    loop {
        if control.shutdown.load(Ordering::Relaxed) {
            break;
        }
        sync_control(&mut shard, control, &mut sync);
        let n = match io.recv() {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => {
                stats.recv_errors += 1;
                continue;
            }
        };
        if n == 0 {
            continue; // idle wakeup (uring's shutdown-poll timeout)
        }
        stats.received += n as u64;
        // One timestamp per round: the whole burst was on the wire
        // together, and amortizing the clock read is part of the point.
        let now_s = start.elapsed().as_secs_f64();
        let mut dispatched_ctl = false;
        for i in 0..n {
            let (datagram, peer) = io.peek(i);
            if datagram.starts_with(CTL_MAGIC) {
                stats.ctl += 1;
                // The counters must be visible to any collection this
                // command triggers or reads (a `weights` query right
                // after a traffic burst expects that burst counted).
                if !dispatched_ctl {
                    flush_counts(&shard, slab);
                    dispatched_ctl = true;
                }
                if !handle_ctl(
                    io.ctl_sock(),
                    &datagram[CTL_MAGIC.len()..],
                    peer,
                    control,
                    &mut shard,
                    &mut sync,
                ) {
                    stats.tx_errors += 1;
                }
            } else if !io.serve(i, &mut shard, now_s, &mut counters) {
                stats.dropped += 1;
            }
        }
        let outcome = io.flush();
        stats.answered += outcome.sent;
        stats.tx_errors += outcome.errors;
        // One slab publication per round: K relaxed stores, no RMW.
        flush_counts(&shard, slab);
    }
    let outcome = io.finish();
    stats.answered += outcome.sent;
    stats.tx_errors += outcome.errors;
    stats.recv_errors += io.recv_op_errors();
    stats.rx_drops = io.rx_drops();
    flush_counts(&shard, slab);
    WorkerReport {
        stats,
        obs: counters.snapshot(0, 0),
        weights: shard.scheduler().estimator().relative_weights(),
        collections: sync.collections,
    }
}

/// A ctl command's outcome, mapped onto the wire ack.
enum CtlReply {
    /// Applied; ack `GDNSCTL1 ok`.
    Ok,
    /// A query with a payload; ack `GDNSCTL1 ok <payload>`.
    OkText(String),
    /// Unrecognized or malformed; ack `GDNSCTL1 err`.
    Err,
    /// A stateful command whose sequence number is not newer than the
    /// last applied one; ack `GDNSCTL1 err stale`, nothing applied.
    Stale,
}

/// Processes one control payload (already stripped of [`CTL_MAGIC`]).
/// Non-loopback senders are ignored outright — no parse, no ack.
///
/// Returns `false` only when an ack was owed and the kernel refused to
/// send it, so callers can count it as a tx error (the ack itself stays
/// best-effort: the sender may have already gone away).
fn handle_ctl(
    socket: &UdpSocket,
    payload: &[u8],
    peer: SocketAddr,
    control: &Control,
    shard: &mut AuthoritativeServer,
    sync: &mut ShardSync,
) -> bool {
    if !peer.ip().is_loopback() {
        return true;
    }
    let text_reply;
    let reply: &[u8] = match ctl_command(payload, control, shard, sync) {
        CtlReply::Ok => b"GDNSCTL1 ok",
        CtlReply::OkText(payload) => {
            text_reply = format!("GDNSCTL1 ok {payload}");
            text_reply.as_bytes()
        }
        CtlReply::Err => b"GDNSCTL1 err",
        CtlReply::Stale => b"GDNSCTL1 err stale",
    };
    socket.send_to(reply, peer).is_ok()
}

/// Parses and applies one ctl command (grammar in the [module docs](self)).
///
/// Stateful commands do their sequence check and their state change under
/// one hold of the shared lock, so a stale payload can never land *after*
/// a newer one passed the check. Parsing happens before the lock: a
/// malformed payload must leave the shared snapshot untouched (the old
/// code wrote `backlogs` fields in place as it parsed, so a half-bad CSV
/// left half-applied garbage behind a not-yet-bumped epoch, published by
/// whatever accepted update came next).
fn ctl_command(
    payload: &[u8],
    control: &Control,
    shard: &mut AuthoritativeServer,
    sync: &mut ShardSync,
) -> CtlReply {
    let Ok(text) = std::str::from_utf8(payload) else { return CtlReply::Err };
    let text = text.trim();
    if text == "shutdown" {
        control.shutdown.store(true, Ordering::Relaxed);
        return CtlReply::Ok;
    }
    if text == "weights" {
        // Apply any pending collection first so the answer reflects the
        // newest published estimate (shards converge on the same
        // cumulative stream, so any shard's answer is representative).
        sync_control(shard, control, sync);
        let csv = shard
            .scheduler()
            .estimator()
            .relative_weights()
            .iter()
            .map(|w| format!("{w:.6}"))
            .collect::<Vec<_>>()
            .join(",");
        return CtlReply::OkText(csv);
    }
    let mut parts = text.splitn(3, ' ');
    let cmd = parts.next().unwrap_or("");
    let Some(Ok(seq)) = parts.next().map(str::parse::<u64>) else { return CtlReply::Err };
    let Some(rest) = parts.next() else { return CtlReply::Err };
    match cmd {
        "backlogs" => {
            let mut values = Vec::new();
            for field in rest.split(',') {
                let Ok(value) = field.trim().parse::<f64>() else { return CtlReply::Err };
                values.push(value);
            }
            let mut shared = lock_shared(&control.shared);
            if values.len() != shared.backlogs.len() {
                return CtlReply::Err;
            }
            if seq <= shared.ctl_seq {
                return CtlReply::Stale;
            }
            shared.ctl_seq = seq;
            shared.backlogs.copy_from_slice(&values);
            drop(shared);
            control.epoch.fetch_add(1, Ordering::Release);
            CtlReply::Ok
        }
        "alarm" | "normal" => {
            let Ok(server) = rest.trim().parse::<usize>() else { return CtlReply::Err };
            let mut shared = lock_shared(&control.shared);
            if server >= shared.alarmed.len() {
                return CtlReply::Err;
            }
            if seq <= shared.ctl_seq {
                return CtlReply::Stale;
            }
            shared.ctl_seq = seq;
            shared.alarmed[server] = cmd == "alarm";
            drop(shared);
            control.epoch.fetch_add(1, Ordering::Release);
            CtlReply::Ok
        }
        _ => CtlReply::Err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, Question, Rcode};
    use geodns_core::EstimatorKind;

    fn loopback_daemon_mode(workers: usize, io_mode: IoMode) -> DaemonHandle {
        let shards = (0..workers).map(|_| AuthoritativeServer::example()).collect();
        let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        cfg.io_mode = io_mode;
        Daemon::spawn(&cfg, shards).expect("daemon spawns")
    }

    fn loopback_daemon(workers: usize) -> DaemonHandle {
        loopback_daemon_mode(workers, IoMode::default())
    }

    fn client() -> UdpSocket {
        let s = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        s.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        s
    }

    #[test]
    fn answers_real_udp_queries() {
        // All io modes answer identically-shaped traffic; `Batched` and
        // `Uring` additionally exercise the reuseport + mmsg/ring paths
        // on Linux (and the documented degrade ladder elsewhere).
        for io_mode in [IoMode::Uring, IoMode::Batched, IoMode::Single] {
            let daemon = loopback_daemon_mode(2, io_mode);
            let client = client();
            let mut buf = [0u8; 512];
            for id in 0..20u16 {
                let q = Message::query(id, Question::a("www.example.org"));
                client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send");
                let (n, _) = client.recv_from(&mut buf).expect("a response arrives");
                let resp = Message::parse(&buf[..n]).expect("well-formed response");
                assert_eq!(resp.header.id, id);
                assert_eq!(resp.header.rcode, Rcode::NoError);
                assert_eq!(resp.answers.len(), 1);
                assert!(resp.answers[0].ttl >= 1);
            }
            let report = daemon.shutdown();
            let totals = report.totals();
            assert_eq!(totals.answered, 20, "{io_mode} mode");
            assert_eq!(report.dns_decisions(), 20, "{io_mode} mode");
            assert_eq!(totals.dropped, 0, "{io_mode} mode");
            assert_eq!(totals.tx_errors, 0, "{io_mode} mode");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn batched_mode_is_effective_on_linux() {
        let daemon = loopback_daemon_mode(2, IoMode::Batched);
        assert_eq!(daemon.io_mode(), IoMode::Batched, "no fallback expected on Linux");
        drop(daemon.shutdown());
        let daemon = loopback_daemon_mode(2, IoMode::Single);
        assert_eq!(daemon.io_mode(), IoMode::Single);
        drop(daemon.shutdown());
    }

    #[test]
    fn uring_answers_queries_or_degrades_cleanly() {
        // Requesting uring must always produce a working daemon: the
        // real transport where the kernel supports it, batched (or
        // single, off Linux) otherwise. Either way the queries are
        // answered identically.
        let daemon = loopback_daemon_mode(2, IoMode::Uring);
        assert_eq!(daemon.requested_io_mode(), IoMode::Uring);
        if crate::uring::supported() {
            assert_eq!(daemon.io_mode(), IoMode::Uring, "no fallback with a working io_uring");
        } else {
            assert_ne!(daemon.io_mode(), IoMode::Uring, "degrade reported honestly");
        }
        let client = client();
        let mut buf = [0u8; 512];
        for id in 0..20u16 {
            let q = Message::query(id, Question::a("www.example.org"));
            client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send");
            let (n, _) = client.recv_from(&mut buf).expect("a response arrives");
            let resp = Message::parse(&buf[..n]).expect("well-formed response");
            assert_eq!(resp.header.id, id);
            assert_eq!(resp.header.rcode, Rcode::NoError);
        }
        let report = daemon.shutdown();
        assert_eq!(report.totals().answered, 20);
        assert_eq!(report.totals().tx_errors, 0);
    }

    #[test]
    fn forced_uring_setup_failure_degrades_to_batched() {
        // The auto-degrade path, without needing a kernel that lacks
        // io_uring: the test hook makes the probe fail, the daemon must
        // land on the next rung (Batched on Linux, Single elsewhere via
        // the reuseport rung) and still serve.
        let shards = vec![AuthoritativeServer::example()];
        let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        cfg.io_mode = IoMode::Uring;
        cfg.force_uring_unsupported = true;
        let daemon = Daemon::spawn(&cfg, shards).expect("daemon spawns despite no uring");
        assert_eq!(daemon.requested_io_mode(), IoMode::Uring);
        let expected = if cfg!(target_os = "linux") { IoMode::Batched } else { IoMode::Single };
        assert_eq!(daemon.io_mode(), expected, "one rung down the ladder");
        let client = client();
        let q = Message::query(3, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send");
        let mut buf = [0u8; 512];
        let (n, _) = client.recv_from(&mut buf).expect("served in the degraded mode");
        assert_eq!(Message::parse(&buf[..n]).expect("parses").header.id, 3);
        let report = daemon.shutdown();
        assert_eq!(report.totals().answered, 1);
    }

    #[test]
    fn ctl_shutdown_drains_all_workers() {
        for io_mode in [IoMode::Uring, IoMode::Batched, IoMode::Single] {
            let daemon = loopback_daemon_mode(3, io_mode);
            let client = client();
            client.send_to(b"GDNSCTL1 shutdown", daemon.local_addr()).expect("send ctl");
            let mut buf = [0u8; 64];
            let (n, _) = client.recv_from(&mut buf).expect("ack");
            assert_eq!(&buf[..n], b"GDNSCTL1 ok");
            // The flag is set; joining must complete promptly (read timeout).
            assert!(daemon.shutdown_requested());
            let report = daemon.shutdown();
            assert_eq!(report.workers.len(), 3, "{io_mode} mode");
            assert_eq!(report.totals().ctl, 1, "{io_mode} mode");
            assert_eq!(report.totals().tx_errors, 0, "{io_mode} mode: the ack went out");
        }
    }

    #[test]
    fn worker_stats_aggregation_includes_tx_errors() {
        // `tx_errors` must survive both aggregation layers: WorkerStats
        // addition and the DaemonReport totals over per-worker reports
        // (the old `send_errors` was counted per worker but the ctl-ack
        // path silently discarded its failures before reaching either).
        let a = WorkerStats {
            received: 5,
            answered: 3,
            ctl: 1,
            dropped: 1,
            tx_errors: 2,
            recv_errors: 1,
            rx_drops: 4,
        };
        let b = WorkerStats {
            received: 7,
            answered: 6,
            ctl: 0,
            dropped: 0,
            tx_errors: 3,
            recv_errors: 0,
            rx_drops: 0,
        };
        let obs = || ObsCounters::new().snapshot(0, 0);
        let report = DaemonReport {
            workers: vec![
                WorkerReport { stats: a, obs: obs(), weights: vec![1.0], collections: 0 },
                WorkerReport { stats: b, obs: obs(), weights: vec![1.0], collections: 0 },
            ],
        };
        let totals = report.totals();
        assert_eq!(totals.tx_errors, 5, "tx errors sum across workers");
        assert_eq!(
            totals,
            WorkerStats {
                received: 12,
                answered: 9,
                ctl: 1,
                dropped: 1,
                tx_errors: 5,
                recv_errors: 1,
                rx_drops: 4,
            }
        );
    }

    /// Sends one ctl message and returns the ack text.
    fn ctl(client: &UdpSocket, daemon: &DaemonHandle, msg: &str) -> String {
        client.send_to(msg.as_bytes(), daemon.local_addr()).expect("send ctl");
        let mut buf = [0u8; 256];
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        String::from_utf8(buf[..n].to_vec()).expect("utf8 ack")
    }

    #[test]
    fn ctl_backlogs_reach_every_shard() {
        let daemon = loopback_daemon(2);
        let client = client();
        let csv: Vec<String> = (0..7).map(|i| format!("0.{i}")).collect();
        assert_eq!(
            ctl(&client, &daemon, &format!("GDNSCTL1 backlogs 1 {}", csv.join(","))),
            "GDNSCTL1 ok"
        );
        // Malformed updates are rejected: wrong count…
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 backlogs 2 1.0,2.0"), "GDNSCTL1 err");
        // …non-numeric fields…
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 backlogs 2 a,b,c,d,e,f,g"), "GDNSCTL1 err");
        // …and a missing sequence number (the pre-sequence grammar).
        assert_eq!(
            ctl(&client, &daemon, "GDNSCTL1 backlogs 1.0,2.0,3.0,4.0,5.0,6.0,7.0"),
            "GDNSCTL1 err"
        );
        // Queries still answered afterwards.
        let q = Message::query(1, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let mut buf = [0u8; 512];
        let (n, _) = client.recv_from(&mut buf).expect("answer");
        assert!(Message::parse(&buf[..n]).is_ok());
        drop(daemon.shutdown());
    }

    #[test]
    fn stale_ctl_sequences_are_rejected() {
        let daemon = loopback_daemon(1);
        let client = client();
        let csv = "0.1,0.2,0.3,0.4,0.5,0.6,0.7";
        assert_eq!(ctl(&client, &daemon, &format!("GDNSCTL1 backlogs 5 {csv}")), "GDNSCTL1 ok");
        // A duplicated datagram (same seq) and a reordered one (older
        // seq) are both refused without touching state.
        assert_eq!(
            ctl(&client, &daemon, &format!("GDNSCTL1 backlogs 5 {csv}")),
            "GDNSCTL1 err stale"
        );
        assert_eq!(
            ctl(&client, &daemon, &format!("GDNSCTL1 backlogs 3 {csv}")),
            "GDNSCTL1 err stale"
        );
        // The sequence space is shared across stateful commands: a
        // delayed `normal` from before a fresher `alarm` must lose.
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 alarm 6 0"), "GDNSCTL1 ok");
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 normal 6 0"), "GDNSCTL1 err stale");
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 normal 2 0"), "GDNSCTL1 err stale");
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 normal 7 0"), "GDNSCTL1 ok");
        // Rejected commands must not consume sequence numbers: an
        // out-of-range server at seq 8 fails, then seq 8 is still free.
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 alarm 8 99"), "GDNSCTL1 err");
        assert_eq!(ctl(&client, &daemon, "GDNSCTL1 alarm 8 1"), "GDNSCTL1 ok");
        // Stateless commands carry no sequence and never go stale.
        assert!(ctl(&client, &daemon, "GDNSCTL1 weights").starts_with("GDNSCTL1 ok "));
        drop(daemon.shutdown());
    }

    #[test]
    fn ctl_alarms_exclude_servers_from_scheduling() {
        // Alarm every server except S_3 (index 2): with one worker, every
        // subsequent decision must land on the only un-alarmed server.
        let daemon = loopback_daemon(1);
        let client = client();
        let mut seq = 0u64;
        for server in [0usize, 1, 3, 4, 5, 6] {
            seq += 1;
            assert_eq!(
                ctl(&client, &daemon, &format!("GDNSCTL1 alarm {seq} {server}")),
                "GDNSCTL1 ok"
            );
        }
        let mut buf = [0u8; 512];
        for id in 0..20u16 {
            let q = Message::query(id, Question::a("www.example.org"));
            client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
            let (n, _) = client.recv_from(&mut buf).expect("answer");
            let resp = Message::parse(&buf[..n]).expect("parses");
            assert_eq!(
                resp.answers[0].a_addr().expect("an A answer"),
                [192, 0, 2, 12],
                "only the un-alarmed server may be scheduled"
            );
        }
        // `normal` re-admits S_1; the rest stay excluded.
        seq += 1;
        assert_eq!(ctl(&client, &daemon, &format!("GDNSCTL1 normal {seq} 0")), "GDNSCTL1 ok");
        let mut seen = std::collections::HashSet::new();
        for id in 0..40u16 {
            let q = Message::query(1000 + id, Question::a("www.example.org"));
            client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
            let (n, _) = client.recv_from(&mut buf).expect("answer");
            let resp = Message::parse(&buf[..n]).expect("parses");
            seen.insert(resp.answers[0].a_addr().expect("an A answer")[3]);
        }
        assert!(seen.contains(&10), "server 0 rejoins after normal: {seen:?}");
        assert!(
            seen.iter().all(|last| [10u8, 12].contains(last)),
            "alarmed servers stay excluded: {seen:?}"
        );
        drop(daemon.shutdown());
    }

    #[test]
    fn poisoned_shared_lock_does_not_cascade() {
        let daemon = loopback_daemon(2);
        // Poison the shared mutex the way a buggy holder would: panic
        // while holding the guard.
        let control = Arc::clone(&daemon.control);
        let poisoner = std::thread::spawn(move || {
            let _guard = control.shared.lock().expect("first locker");
            panic!("deliberate poison");
        });
        assert!(poisoner.join().is_err(), "the poisoner really panicked");
        assert!(daemon.control.shared.lock().is_err(), "the mutex really is poisoned");
        // The handle API, the ctl plane, and the data plane all recover.
        daemon.set_backlogs(&[0.5; 7]).expect("set_backlogs survives poisoning");
        let client = client();
        let csv = "0.1,0.2,0.3,0.4,0.5,0.6,0.7";
        assert_eq!(ctl(&client, &daemon, &format!("GDNSCTL1 backlogs 1 {csv}")), "GDNSCTL1 ok");
        let q = Message::query(7, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let mut buf = [0u8; 512];
        let (n, _) = client.recv_from(&mut buf).expect("answer after poisoning");
        assert_eq!(Message::parse(&buf[..n]).expect("parses").header.id, 7);
        let report = daemon.shutdown();
        assert!(report.totals().answered >= 1);
    }

    #[test]
    fn live_estimation_learns_weights_from_traffic() {
        // One shard, EMA estimator from a uniform cold start, 50 ms
        // collections. Traffic is 3:1 between domain 0 (sources in
        // 127.0.0.0/24) and domain 2 (sources in 127.0.2.0/24); the
        // daemon's own estimates must converge to that ratio.
        let shards = vec![AuthoritativeServer::example_shard_with(
            0,
            7,
            EstimatorKind::Measured { collect_interval_s: 0.05, ema_alpha: 0.5 },
        )];
        let mut cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        cfg.collect_interval = Some(Duration::from_millis(50));
        let daemon = Daemon::spawn(&cfg, shards).expect("daemon spawns");
        let addr = daemon.local_addr();

        let d0 = client(); // binds 127.0.0.1 → domain 0
        let d2 = UdpSocket::bind("127.0.2.1:0").expect("bind 127.0.2.1");
        d2.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let q = Message::query(9, Question::a("www.example.org")).to_bytes();
        let mut buf = [0u8; 512];

        let mut converged = false;
        let mut last_weights: Vec<f64> = Vec::new();
        for _round in 0..40 {
            for i in 0..60 {
                d0.send_to(&q, addr).expect("send");
                if i % 3 == 0 {
                    d2.send_to(&q, addr).expect("send");
                }
            }
            for _ in 0..60 {
                let _ = d0.recv_from(&mut buf);
            }
            for _ in 0..20 {
                let _ = d2.recv_from(&mut buf);
            }
            std::thread::sleep(Duration::from_millis(60));
            let reply = ctl(&d0, &daemon, "GDNSCTL1 weights");
            let csv = reply.strip_prefix("GDNSCTL1 ok ").expect("weights ack");
            last_weights = csv.split(',').map(|f| f.parse().expect("a weight")).collect();
            assert_eq!(last_weights.len(), 4, "one weight per domain");
            let ratio = last_weights[0] / last_weights[2];
            if (2.0..=4.5).contains(&ratio)
                && last_weights[0] > last_weights[1]
                && last_weights[2] > last_weights[3]
            {
                converged = true;
                break;
            }
        }
        let report = daemon.shutdown();
        assert!(converged, "estimates never approached the 3:1 traffic split: {last_weights:?}");
        assert!(report.collections() >= 1, "the collector really published");
        assert!(
            (report.workers[0].weights.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "reported weights are relative shares"
        );
    }

    #[test]
    fn handle_set_backlogs_validates_length() {
        let daemon = loopback_daemon(1);
        assert!(daemon.set_backlogs(&[0.0; 3]).is_err());
        assert!(daemon.set_backlogs(&[0.1; 7]).is_ok());
        drop(daemon.shutdown());
    }

    #[test]
    fn mangled_datagrams_are_dropped_not_answered() {
        let daemon = loopback_daemon(1);
        let client = client();
        client.send_to(&[1, 2, 3], daemon.local_addr()).expect("send junk");
        // Follow with a real query; the only response must be its answer.
        let q = Message::query(77, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let mut buf = [0u8; 512];
        let (n, _) = client.recv_from(&mut buf).expect("answer");
        let resp = Message::parse(&buf[..n]).expect("parses");
        assert_eq!(resp.header.id, 77);
        let report = daemon.shutdown();
        assert_eq!(report.totals().dropped, 1);
        assert_eq!(report.totals().answered, 1);
    }

    #[test]
    fn spawn_rejects_empty_shards() {
        let cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        assert!(Daemon::spawn(&cfg, Vec::new()).is_err());
    }
}
