//! `geodnsd`: the multi-threaded UDP front end that puts the adaptive-TTL
//! scheduler on a live network path.
//!
//! # Threading model: share-nothing scheduler shards
//!
//! N worker threads share one bound [`UdpSocket`] (each holds a
//! `try_clone`d handle; the kernel wakes exactly one blocked reader per
//! datagram). Each worker owns a full [`AuthoritativeServer`] **shard** —
//! its own `DnsScheduler`, RNG stream, and backlog snapshot — so the
//! per-query path takes no lock and touches no shared cache line. The
//! alternative (one scheduler behind a sharded mutex) would keep the RR
//! pointers globally exact, but serializes every decision; with
//! share-nothing shards each worker's round-robin state advances
//! independently, and because the kernel spreads datagrams across workers
//! without regard to domain, the *aggregate* assignment over any window is
//! the same interleaving of per-shard rotations — the paper's policies
//! only need proportional shares, not a single global pointer. This is the
//! documented trade: exactness of the aggregate rotation within one TTL
//! window is sacrificed for linear scalability.
//!
//! # Buffer discipline
//!
//! Each worker reuses one rx buffer and one tx `Vec<u8>` for its whole
//! life; the steady-state loop (receive → fast-path handle → send) is
//! allocation-free once the tx buffer has grown to the answer size (see
//! `tests/alloc_free_wire.rs` for the pinned half of that claim).
//!
//! # Control protocol and shutdown
//!
//! Datagrams beginning with [`CTL_MAGIC`], accepted **only from loopback
//! sources**, are control messages rather than DNS:
//!
//! * `GDNSCTL1 shutdown` — begin graceful shutdown; acks `GDNSCTL1 ok`.
//! * `GDNSCTL1 backlogs <f64,f64,…>` — install a new backlog snapshot
//!   (one value per Web server) that every shard picks up before its next
//!   decision, feeding the backlog-aware policies; acks `GDNSCTL1 ok`.
//!
//! Shutdown is flag-based: the socket carries a short read timeout, so
//! every worker re-checks the shutdown flag at least once per timeout and
//! exits its loop cleanly; [`DaemonHandle::shutdown`] (or the ctl message)
//! sets the flag, and joining the workers yields the final report.

use std::io::ErrorKind;
use std::net::{IpAddr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use geodns_core::{ObsCounters, ObsSnapshot};

use crate::AuthoritativeServer;

/// Prefix of a control datagram (with the trailing space separator).
pub const CTL_MAGIC: &[u8] = b"GDNSCTL1 ";

/// Daemon-level settings (the site/scheduler configuration lives in the
/// per-worker [`AuthoritativeServer`] shards passed to [`Daemon::spawn`]).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (use port 0 to let the kernel pick; the bound
    /// address is available from [`DaemonHandle::local_addr`]).
    pub bind: SocketAddr,
    /// Socket read timeout — the upper bound on how long a worker can go
    /// without re-checking the shutdown flag. Also the shutdown latency
    /// floor for idle workers.
    pub read_timeout: Duration,
    /// Receive buffer size per worker; datagrams longer than this are
    /// truncated by the kernel (512 covers every query we answer).
    pub max_datagram: usize,
}

impl DaemonConfig {
    /// Sensible defaults for `bind`: 20 ms shutdown poll, 512-byte rx.
    #[must_use]
    pub fn new(bind: SocketAddr) -> Self {
        DaemonConfig { bind, read_timeout: Duration::from_millis(20), max_datagram: 512 }
    }
}

/// Shared mutable state between the workers and the handle.
struct Control {
    shutdown: AtomicBool,
    /// Bumped on every accepted `backlogs` ctl message; workers re-sync
    /// their shard when the epoch moves (a relaxed load per loop
    /// iteration, no lock on the hot path).
    backlog_epoch: AtomicU64,
    backlogs: Mutex<Vec<f64>>,
}

/// Per-worker datagram accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Datagrams received (DNS and control).
    pub received: u64,
    /// DNS responses sent.
    pub answered: u64,
    /// Control datagrams processed (including rejected ones).
    pub ctl: u64,
    /// Datagrams too mangled to answer (no extractable transaction id).
    pub dropped: u64,
    /// Responses the kernel refused to send.
    pub send_errors: u64,
    /// Receive errors other than the poll timeout.
    pub recv_errors: u64,
}

impl WorkerStats {
    fn add(&mut self, other: &WorkerStats) {
        self.received += other.received;
        self.answered += other.answered;
        self.ctl += other.ctl;
        self.dropped += other.dropped;
        self.send_errors += other.send_errors;
        self.recv_errors += other.recv_errors;
    }
}

/// What one worker hands back when it exits.
#[derive(Debug)]
pub struct WorkerReport {
    /// Datagram accounting.
    pub stats: WorkerStats,
    /// The worker's scheduler-decision counters (TTL min/mean/max,
    /// decisions, constrained decisions) through the observability layer.
    pub obs: ObsSnapshot,
}

/// The daemon's final report: one entry per worker, in worker order.
#[derive(Debug)]
pub struct DaemonReport {
    /// Per-worker reports.
    pub workers: Vec<WorkerReport>,
}

impl DaemonReport {
    /// Datagram accounting summed over the workers.
    #[must_use]
    pub fn totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.workers {
            t.add(&w.stats);
        }
        t
    }

    /// Total DNS scheduling decisions (i.e. `A` answers) across workers.
    #[must_use]
    pub fn dns_decisions(&self) -> u64 {
        self.workers.iter().map(|w| w.obs.dns_decisions).sum()
    }
}

/// The daemon entry point. See the [module docs](self) for the threading
/// model, buffer discipline, and control protocol.
pub struct Daemon;

impl Daemon {
    /// Binds the socket and spawns one worker thread per shard.
    ///
    /// Every shard must front the same number of Web servers (they are
    /// shards of *one* site, so anything else is a configuration bug).
    ///
    /// # Errors
    ///
    /// Returns a message if there are no shards, the shards disagree on
    /// the server count, or any socket operation fails.
    pub fn spawn(
        cfg: &DaemonConfig,
        shards: Vec<AuthoritativeServer>,
    ) -> Result<DaemonHandle, String> {
        if shards.is_empty() {
            return Err("geodnsd needs at least one worker shard".into());
        }
        let n_servers = shards[0].num_servers();
        if let Some(bad) = shards.iter().position(|s| s.num_servers() != n_servers) {
            return Err(format!(
                "shard {bad} fronts {} servers but shard 0 fronts {n_servers}",
                shards[bad].num_servers()
            ));
        }
        let socket = UdpSocket::bind(cfg.bind).map_err(|e| format!("bind {}: {e}", cfg.bind))?;
        socket
            .set_read_timeout(Some(cfg.read_timeout))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        let local_addr = socket.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        let control = Arc::new(Control {
            shutdown: AtomicBool::new(false),
            backlog_epoch: AtomicU64::new(0),
            backlogs: Mutex::new(vec![0.0; n_servers]),
        });
        let start = Instant::now();

        let mut workers = Vec::with_capacity(shards.len());
        for (index, shard) in shards.into_iter().enumerate() {
            let socket = socket.try_clone().map_err(|e| format!("clone socket: {e}"))?;
            let control = Arc::clone(&control);
            let max_datagram = cfg.max_datagram;
            let handle = std::thread::Builder::new()
                .name(format!("geodnsd-worker-{index}"))
                .spawn(move || worker_loop(socket, shard, &control, start, max_datagram))
                .map_err(|e| format!("spawn worker {index}: {e}"))?;
            workers.push(handle);
        }
        Ok(DaemonHandle { local_addr, control, workers })
    }
}

/// A running daemon: the handle to query, stop, and reap it.
pub struct DaemonHandle {
    local_addr: SocketAddr,
    control: Arc<Control>,
    workers: Vec<JoinHandle<WorkerReport>>,
}

impl DaemonHandle {
    /// The bound address (resolves port 0 binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether shutdown has been requested (by this handle or a ctl
    /// message); workers drain within one read timeout of it turning true.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.control.shutdown.load(Ordering::Relaxed)
    }

    /// Installs a new backlog snapshot, exactly as the `backlogs` ctl
    /// message does: every worker applies it to its shard before its next
    /// decision.
    ///
    /// # Errors
    ///
    /// Returns a message if the length does not match the server count.
    pub fn set_backlogs(&self, backlogs: &[f64]) -> Result<(), String> {
        let mut shared = self.control.backlogs.lock().expect("backlog lock poisoned");
        if backlogs.len() != shared.len() {
            return Err(format!("{} backlog values for {} servers", backlogs.len(), shared.len()));
        }
        shared.copy_from_slice(backlogs);
        drop(shared);
        self.control.backlog_epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Requests graceful shutdown and joins every worker, returning the
    /// final per-worker reports. Idempotent with a ctl-message shutdown:
    /// whichever arrives first starts the drain.
    #[must_use]
    pub fn shutdown(self) -> DaemonReport {
        self.control.shutdown.store(true, Ordering::Relaxed);
        let workers =
            self.workers.into_iter().map(|w| w.join().expect("geodnsd worker panicked")).collect();
        DaemonReport { workers }
    }
}

/// One worker's life: receive, dispatch, repeat until shutdown.
fn worker_loop(
    socket: UdpSocket,
    mut shard: AuthoritativeServer,
    control: &Control,
    start: Instant,
    max_datagram: usize,
) -> WorkerReport {
    let mut rx = vec![0u8; max_datagram];
    let mut tx = Vec::with_capacity(max_datagram);
    let mut local_backlogs = vec![0.0; shard.num_servers()];
    let mut seen_epoch = 0u64;
    let mut counters = ObsCounters::new();
    let mut stats = WorkerStats::default();

    loop {
        if control.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let epoch = control.backlog_epoch.load(Ordering::Acquire);
        if epoch != seen_epoch {
            local_backlogs
                .copy_from_slice(&control.backlogs.lock().expect("backlog lock poisoned"));
            shard.set_backlogs(&local_backlogs);
            seen_epoch = epoch;
        }
        let (len, peer) = match socket.recv_from(&mut rx) {
            Ok(x) => x,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => {
                stats.recv_errors += 1;
                continue;
            }
        };
        stats.received += 1;
        let datagram = &rx[..len];

        if datagram.starts_with(CTL_MAGIC) {
            stats.ctl += 1;
            handle_ctl(&socket, &datagram[CTL_MAGIC.len()..], peer, control);
            continue;
        }

        let src = match peer.ip() {
            IpAddr::V4(v4) => v4.octets(),
            // V6 peers fall to the fallback domain: the prefix table is v4.
            IpAddr::V6(_) => [0, 0, 0, 0],
        };
        let now_s = start.elapsed().as_secs_f64();
        match shard.handle_into_probed(datagram, src, now_s, &mut tx, &mut counters) {
            Ok(()) => {
                if socket.send_to(&tx, peer).is_ok() {
                    stats.answered += 1;
                } else {
                    stats.send_errors += 1;
                }
            }
            Err(_) => stats.dropped += 1,
        }
    }
    WorkerReport { stats, obs: counters.snapshot(0, 0) }
}

/// Processes one control payload (already stripped of [`CTL_MAGIC`]).
/// Non-loopback senders are ignored outright — no parse, no ack.
fn handle_ctl(socket: &UdpSocket, payload: &[u8], peer: SocketAddr, control: &Control) {
    if !peer.ip().is_loopback() {
        return;
    }
    let reply: &[u8] = match ctl_command(payload, control) {
        Ok(()) => b"GDNSCTL1 ok",
        Err(()) => b"GDNSCTL1 err",
    };
    // Best-effort ack; the sender may have already gone away.
    let _ = socket.send_to(reply, peer);
}

/// Parses and applies one ctl command; `Err` means "unrecognized or
/// malformed" (the sender gets a generic error ack either way).
fn ctl_command(payload: &[u8], control: &Control) -> Result<(), ()> {
    let text = std::str::from_utf8(payload).map_err(|_| ())?;
    let text = text.trim();
    if text == "shutdown" {
        control.shutdown.store(true, Ordering::Relaxed);
        return Ok(());
    }
    if let Some(csv) = text.strip_prefix("backlogs ") {
        let mut shared = control.backlogs.lock().expect("backlog lock poisoned");
        let n = shared.len();
        let mut parsed = 0usize;
        for (slot, field) in shared.iter_mut().zip(csv.split(',')) {
            *slot = field.trim().parse().map_err(|_| ())?;
            parsed += 1;
        }
        if parsed != n || csv.split(',').count() != n {
            return Err(());
        }
        drop(shared);
        control.backlog_epoch.fetch_add(1, Ordering::Release);
        return Ok(());
    }
    Err(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, Question, Rcode};

    fn loopback_daemon(workers: usize) -> DaemonHandle {
        let shards = (0..workers).map(|_| AuthoritativeServer::example()).collect();
        let cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        Daemon::spawn(&cfg, shards).expect("daemon spawns")
    }

    fn client() -> UdpSocket {
        let s = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        s.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        s
    }

    #[test]
    fn answers_real_udp_queries() {
        let daemon = loopback_daemon(2);
        let client = client();
        let mut buf = [0u8; 512];
        for id in 0..20u16 {
            let q = Message::query(id, Question::a("www.example.org"));
            client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send");
            let (n, _) = client.recv_from(&mut buf).expect("a response arrives");
            let resp = Message::parse(&buf[..n]).expect("well-formed response");
            assert_eq!(resp.header.id, id);
            assert_eq!(resp.header.rcode, Rcode::NoError);
            assert_eq!(resp.answers.len(), 1);
            assert!(resp.answers[0].ttl >= 1);
        }
        let report = daemon.shutdown();
        let totals = report.totals();
        assert_eq!(totals.answered, 20);
        assert_eq!(report.dns_decisions(), 20);
        assert_eq!(totals.dropped, 0);
    }

    #[test]
    fn ctl_shutdown_drains_all_workers() {
        let daemon = loopback_daemon(3);
        let client = client();
        client.send_to(b"GDNSCTL1 shutdown", daemon.local_addr()).expect("send ctl");
        let mut buf = [0u8; 64];
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 ok");
        // The flag is set; joining must complete promptly (read timeout).
        assert!(daemon.shutdown_requested());
        let report = daemon.shutdown();
        assert_eq!(report.workers.len(), 3);
        assert_eq!(report.totals().ctl, 1);
    }

    #[test]
    fn ctl_backlogs_reach_every_shard() {
        let daemon = loopback_daemon(2);
        let client = client();
        let csv: Vec<String> = (0..7).map(|i| format!("0.{i}")).collect();
        let msg = format!("GDNSCTL1 backlogs {}", csv.join(","));
        client.send_to(msg.as_bytes(), daemon.local_addr()).expect("send ctl");
        let mut buf = [0u8; 64];
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 ok");
        // Malformed updates are rejected: wrong count…
        client.send_to(b"GDNSCTL1 backlogs 1.0,2.0", daemon.local_addr()).expect("send");
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 err");
        // …and non-numeric fields.
        client.send_to(b"GDNSCTL1 backlogs a,b,c,d,e,f,g", daemon.local_addr()).expect("send");
        let (n, _) = client.recv_from(&mut buf).expect("ack");
        assert_eq!(&buf[..n], b"GDNSCTL1 err");
        // Queries still answered afterwards.
        let q = Message::query(1, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let (n, _) = client.recv_from(&mut buf).expect("answer");
        assert!(Message::parse(&buf[..n]).is_ok());
        drop(daemon.shutdown());
    }

    #[test]
    fn handle_set_backlogs_validates_length() {
        let daemon = loopback_daemon(1);
        assert!(daemon.set_backlogs(&[0.0; 3]).is_err());
        assert!(daemon.set_backlogs(&[0.1; 7]).is_ok());
        drop(daemon.shutdown());
    }

    #[test]
    fn mangled_datagrams_are_dropped_not_answered() {
        let daemon = loopback_daemon(1);
        let client = client();
        client.send_to(&[1, 2, 3], daemon.local_addr()).expect("send junk");
        // Follow with a real query; the only response must be its answer.
        let q = Message::query(77, Question::a("www.example.org"));
        client.send_to(&q.to_bytes(), daemon.local_addr()).expect("send query");
        let mut buf = [0u8; 512];
        let (n, _) = client.recv_from(&mut buf).expect("answer");
        let resp = Message::parse(&buf[..n]).expect("parses");
        assert_eq!(resp.header.id, 77);
        let report = daemon.shutdown();
        assert_eq!(report.totals().dropped, 1);
        assert_eq!(report.totals().answered, 1);
    }

    #[test]
    fn spawn_rejects_empty_shards() {
        let cfg = DaemonConfig::new("127.0.0.1:0".parse().expect("valid addr"));
        assert!(Daemon::spawn(&cfg, Vec::new()).is_err());
    }
}
