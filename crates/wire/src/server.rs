//! The authoritative front end: query bytes in, adaptive-TTL answers out.

use geodns_core::{
    Algorithm, DnsScheduler, EstimatorKind, HiddenLoadEstimator, LatencyModel, LatencySpec,
    NoopProbe, PolicyKind, Probe,
};
use geodns_server::CapacityPlan;
use geodns_simcore::{RngStreams, SimTime};

use crate::codec::Writer;
use crate::{Header, Message, Name, QClass, QType, Rcode, ResourceRecord, WireError};

/// Converts a scheduler TTL (seconds; possibly zero or subsecond under
/// extreme hidden-load skews) to the wire `u32`: ceiling, clamped to
/// `1..=u32::MAX`. A TTL of 0 on the wire would forbid caching entirely
/// — every hit would re-resolve, which is never what the adaptive
/// schemes mean by "a very short TTL" — so the floor is 1 s, matching
/// `NsCache`'s documented rule that only a zero/negative TTL means "do
/// not cache".
fn wire_ttl(ttl_s: f64) -> u32 {
    // NaN-safe: `NaN.ceil()` is NaN and `NaN.max(1.0)` is 1.0.
    ttl_s.ceil().max(1.0).min(f64::from(u32::MAX)) as u32
}

/// Maps client source addresses to the scheduler's *domain* index — the
/// operational equivalent of "identifying the source domain of the client
/// requests" (in reality the querying entity is the domain's local name
/// server, so one prefix per customer network).
///
/// Longest-prefix match over IPv4 prefixes.
///
/// # Examples
///
/// ```
/// use geodns_wire::ClientMap;
///
/// let mut map = ClientMap::new();
/// map.add_prefix([10, 1, 0, 0], 16, 3).unwrap();
/// map.add_prefix([10, 1, 2, 0], 24, 7).unwrap();
/// assert_eq!(map.domain_of([10, 1, 2, 9]), Some(7), "longest prefix wins");
/// assert_eq!(map.domain_of([10, 1, 9, 9]), Some(3));
/// assert_eq!(map.domain_of([192, 0, 2, 1]), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientMap {
    prefixes: Vec<(u32, u8, usize)>, // (network, prefix length, domain)
}

impl ClientMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ClientMap::default()
    }

    /// Registers `addr/len → domain`.
    ///
    /// Lookup is longest-prefix-first; among prefixes of equal length no
    /// tie-break is needed, because two *distinct* networks of the same
    /// length are disjoint — an address can match at most one. The only
    /// possible tie is an exact duplicate (same network, same length),
    /// which would silently shadow whichever mapping sorted later, so
    /// duplicates are rejected instead.
    ///
    /// # Errors
    ///
    /// Returns a message if `len > 32` or the exact prefix is already
    /// registered (even for the same domain).
    pub fn add_prefix(&mut self, addr: [u8; 4], len: u8, domain: usize) -> Result<(), String> {
        if len > 32 {
            return Err(format!("prefix length {len} exceeds 32"));
        }
        let network = u32::from_be_bytes(addr) & Self::mask(len);
        if let Some(&(_, _, existing)) =
            self.prefixes.iter().find(|&&(net, l, _)| net == network && l == len)
        {
            let [a, b, c, d] = network.to_be_bytes();
            return Err(format!(
                "prefix {a}.{b}.{c}.{d}/{len} is already mapped to domain {existing}"
            ));
        }
        self.prefixes.push((network, len, domain));
        // Longest prefix first.
        self.prefixes.sort_by_key(|p| std::cmp::Reverse(p.1));
        Ok(())
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The domain of a source address, if any prefix matches.
    #[must_use]
    pub fn domain_of(&self, addr: [u8; 4]) -> Option<usize> {
        let ip = u32::from_be_bytes(addr);
        self.prefixes.iter().find(|(net, len, _)| ip & Self::mask(*len) == *net).map(|&(_, _, d)| d)
    }

    /// The largest domain index any prefix maps to (`None` when empty) —
    /// what a server must size its per-domain accounting for.
    #[must_use]
    pub fn max_domain(&self) -> Option<usize> {
        self.prefixes.iter().map(|&(_, _, d)| d).max()
    }

    /// Number of registered prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// An authoritative DNS server for one Web-site name, answering `IN A`
/// queries with the adaptive-TTL scheduler's `(server, TTL)` decision.
///
/// Byte-in/byte-out: the caller owns sockets (or a simulator owns time via
/// the `now_s` argument).
pub struct AuthoritativeServer {
    site_name: Name,
    /// `site_name` pre-encoded in uncompressed wire form, so the fast
    /// path can match the question without parsing it into a [`Name`].
    site_wire: Vec<u8>,
    zone: Name,
    server_addrs: Vec<[u8; 4]>,
    scheduler: DnsScheduler,
    clients: ClientMap,
    fallback_domain: usize,
    backlogs: Vec<f64>,
    /// Cumulative queries answered per client domain — the §3.1 "servers
    /// count incoming hits per domain" accounting, kept at the DNS itself
    /// (the daemon sees every query the Web servers will receive). Plain
    /// counters, no atomics: each daemon worker owns its shard and
    /// publishes a snapshot off the fast path.
    domain_queries: Vec<u64>,
}

impl AuthoritativeServer {
    /// Creates the server.
    ///
    /// * `site_name` — the name being load-balanced (`www.example.org`).
    /// * `zone` — the zone of authority (`example.org`); queries outside
    ///   it are `REFUSED`, other names inside it get `NXDOMAIN`.
    /// * `server_addrs` — the Web servers' A records, `S_1` first (must
    ///   match the scheduler's capacity plan order).
    /// * `fallback_domain` — the scheduling domain for sources no prefix
    ///   matches.
    ///
    /// # Errors
    ///
    /// Returns a message if the address count differs from the scheduler's
    /// server count, `site_name` is not inside `zone`, or the client map
    /// (or `fallback_domain`) names a domain index the scheduler was not
    /// configured with — previously such a mapping answered fine until
    /// the first matching query indexed past the classifier tables and
    /// panicked the worker.
    pub fn new(
        site_name: Name,
        zone: Name,
        server_addrs: Vec<[u8; 4]>,
        scheduler: DnsScheduler,
        clients: ClientMap,
        fallback_domain: usize,
    ) -> Result<Self, String> {
        let n = scheduler.availability().len();
        if server_addrs.len() != n {
            return Err(format!(
                "{} server addresses for a {n}-server scheduler",
                server_addrs.len()
            ));
        }
        let k = scheduler.num_domains();
        if fallback_domain >= k {
            return Err(format!("fallback domain {fallback_domain} for a {k}-domain scheduler"));
        }
        if let Some(max) = clients.max_domain() {
            if max >= k {
                return Err(format!("client map names domain {max} for a {k}-domain scheduler"));
            }
        }
        let site_labels = site_name.labels();
        let zone_labels = zone.labels();
        if site_labels.len() < zone_labels.len()
            || !site_labels[site_labels.len() - zone_labels.len()..]
                .iter()
                .zip(zone_labels)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            return Err(format!("site {site_name} is not inside zone {zone}"));
        }
        let mut site_wire = Vec::with_capacity(site_name.wire_len());
        Writer::new(&mut site_wire).name(&site_name);
        Ok(AuthoritativeServer {
            site_name,
            site_wire,
            zone,
            server_addrs,
            clients,
            fallback_domain,
            backlogs: vec![0.0; n],
            domain_queries: vec![0; k],
            scheduler,
        })
    }

    /// A small ready-made instance for examples and tests: 7 servers
    /// (Table-2 H35 capacities) behind `www.example.org`, 4 client
    /// domains on `10.{0..3}.0.0/16`, running `DRR2-TTL/S_K`.
    ///
    /// # Panics
    ///
    /// Never panics — the configuration is valid by construction.
    #[must_use]
    pub fn example() -> Self {
        Self::example_shard(0, 1998)
    }

    /// The [`example`](Self::example) configuration as the `worker`-th
    /// daemon shard: identical topology, but a distinct RNG stream per
    /// worker (so shards don't rotate in lock-step) and loopback client
    /// prefixes `127.0.{0..3}.0/24 → domain {0..3}` alongside the
    /// `10.{d}.0.0/16` ones. The loopback prefixes are what lets a local
    /// load generator present itself as domain `d` by binding its source
    /// socket to `127.0.{d}.1` — every `127.0.0.0/8` address is locally
    /// bindable.
    ///
    /// # Panics
    ///
    /// Never panics — the configuration is valid by construction.
    #[must_use]
    pub fn example_shard(worker: u64, seed: u64) -> Self {
        Self::example_shard_with(worker, seed, EstimatorKind::Oracle)
    }

    /// The [`example_shard`](Self::example_shard) topology with an
    /// explicit hidden-load estimator kind. [`EstimatorKind::Oracle`] gets
    /// the spoon-fed nominal weights (40:20:10:5 — the paper's baseline
    /// assumption); the adaptive kinds start from a **uniform** cold-start
    /// belief and must learn the real per-domain shares from the query
    /// stream via periodic `ingest` collections (the live §3 control
    /// loop).
    ///
    /// # Panics
    ///
    /// Never panics — the configuration is valid by construction.
    #[must_use]
    pub fn example_shard_with(worker: u64, seed: u64, estimator: EstimatorKind) -> Self {
        Self::example_shard_with_algorithm(worker, seed, estimator, Algorithm::drr2_ttl_s_k())
    }

    /// The [`example_shard_with`](Self::example_shard_with) topology with
    /// an explicit scheduling algorithm on top of the estimator choice.
    /// When the algorithm is the RTT-band policy, the per-(class, server)
    /// SRTT tables are primed from the example geography
    /// ([`LatencySpec::example_enabled`]) so the daemon answers
    /// proximity-aware from the first query instead of spending its
    /// opening moves on exploration.
    ///
    /// # Panics
    ///
    /// Never panics — the configuration is valid by construction.
    #[must_use]
    pub fn example_shard_with_algorithm(
        worker: u64,
        seed: u64,
        estimator: EstimatorKind,
        algorithm: Algorithm,
    ) -> Self {
        let plan = CapacityPlan::from_level(geodns_server::HeterogeneityLevel::H35, 500.0);
        let weights = match estimator {
            EstimatorKind::Oracle => [40.0, 20.0, 10.0, 5.0],
            _ => [1.0; 4],
        };
        let prime_rtt = matches!(algorithm.policy, PolicyKind::RttBand { .. });
        let estimator = HiddenLoadEstimator::new(estimator, &weights);
        let streams = RngStreams::new(seed);
        let mut scheduler = DnsScheduler::new(
            algorithm,
            &plan,
            estimator,
            0.25,
            240.0,
            true,
            streams.stream_indexed("wire", worker),
        );
        if prime_rtt {
            // Same geography on every shard: the "latency" stream is keyed
            // by seed only, not worker, so all workers agree on who is
            // near whom.
            let spec = LatencySpec::example_enabled();
            let model = LatencyModel::generate(&spec, 4, 7, &mut streams.stream("latency"));
            for domain in 0..4 {
                for server in 0..7 {
                    scheduler.observe_rtt(domain, server, model.rtt_s(domain, server));
                }
            }
        }
        let mut clients = ClientMap::new();
        for d in 0..4u8 {
            clients.add_prefix([10, d, 0, 0], 16, usize::from(d)).expect("valid prefix");
            clients.add_prefix([127, 0, d, 0], 24, usize::from(d)).expect("valid prefix");
        }
        let server_addrs = (0..7).map(|i| [192, 0, 2, 10 + i as u8]).collect();
        Self::new(
            "www.example.org".parse().expect("valid name"),
            "example.org".parse().expect("valid name"),
            server_addrs,
            scheduler,
            clients,
            3,
        )
        .expect("example configuration is valid")
    }

    /// The scheduler, e.g. to feed alarm signals or estimator collections.
    pub fn scheduler_mut(&mut self) -> &mut DnsScheduler {
        &mut self.scheduler
    }

    /// The scheduler, read-only (estimator weights, classes, TTL tables).
    #[must_use]
    pub fn scheduler(&self) -> &DnsScheduler {
        &self.scheduler
    }

    /// Cumulative queries answered per client domain since construction
    /// (both the fast and the slow serving path count; refused/NXDOMAIN
    /// responses don't — no scheduling decision was made for them).
    /// Monotone, so a collector can difference successive snapshots.
    #[must_use]
    pub fn domain_queries(&self) -> &[u64] {
        &self.domain_queries
    }

    /// Number of client domains the scheduler is configured with (the
    /// length of [`domain_queries`](Self::domain_queries)).
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.domain_queries.len()
    }

    /// Updates the backlog snapshot used by backlog-aware policies.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the server count.
    pub fn set_backlogs(&mut self, backlogs: &[f64]) {
        assert_eq!(backlogs.len(), self.backlogs.len(), "backlog length mismatch");
        self.backlogs.copy_from_slice(backlogs);
    }

    fn in_zone(&self, name: &Name) -> bool {
        let n = name.labels();
        let z = self.zone.labels();
        n.len() >= z.len()
            && n[n.len() - z.len()..].iter().zip(z).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Number of Web servers behind the site (the length `set_backlogs`
    /// expects).
    #[must_use]
    pub fn num_servers(&self) -> usize {
        self.server_addrs.len()
    }

    /// Handles one query datagram from `src` at time `now_s` seconds,
    /// returning the response datagram.
    ///
    /// Allocates the returned buffer; the daemon hot loop uses
    /// [`handle_into`](Self::handle_into) with a reusable buffer instead.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] only when the datagram is too mangled to
    /// extract a transaction id (otherwise malformed queries get a
    /// `FORMERR`/`NOTIMP`/`REFUSED` response as appropriate).
    pub fn handle(&mut self, query: &[u8], src: [u8; 4], now_s: f64) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(128);
        self.handle_into(query, src, now_s, &mut out)?;
        Ok(out)
    }

    /// Like [`handle`](Self::handle), but writes the response into a
    /// caller-owned buffer (cleared first). The steady-state case — a
    /// well-formed `IN A` query for the site name — takes a fast path
    /// that never parses into a [`Message`] and performs **zero
    /// allocations** once `out` has grown to the response size; anything
    /// unusual falls back to the general parse-based path, whose output
    /// is byte-identical for queries both paths accept.
    ///
    /// # Errors
    ///
    /// Same contract as [`handle`](Self::handle).
    pub fn handle_into(
        &mut self,
        query: &[u8],
        src: [u8; 4],
        now_s: f64,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        self.handle_into_probed(query, src, now_s, out, &mut NoopProbe)
    }

    /// Like [`handle_into`](Self::handle_into), reporting each DNS
    /// decision to `probe` (the daemon attaches per-worker
    /// [`ObsCounters`](geodns_core::ObsCounters)). The probe observes
    /// only: responses are bit-identical whichever probe is attached.
    ///
    /// # Errors
    ///
    /// Same contract as [`handle`](Self::handle).
    pub fn handle_into_probed(
        &mut self,
        query: &[u8],
        src: [u8; 4],
        now_s: f64,
        out: &mut Vec<u8>,
        probe: &mut dyn Probe,
    ) -> Result<(), WireError> {
        out.clear();
        if self.try_fast_path(query, src, now_s, out, probe) {
            return Ok(());
        }
        self.handle_slow(query, src, now_s, out, probe)
    }

    /// The allocation-free fast path: matches a plain single-question
    /// `IN A` query for the site name directly on the wire bytes and
    /// writes the answer. Returns `false` (with `out` untouched) for
    /// anything else — compressed names, other names/types/classes,
    /// extra sections, malformed datagrams — which the slow path then
    /// classifies properly.
    fn try_fast_path(
        &mut self,
        query: &[u8],
        src: [u8; 4],
        now_s: f64,
        out: &mut Vec<u8>,
        probe: &mut dyn Probe,
    ) -> bool {
        if query.len() < 12 {
            return false;
        }
        let flags = u16::from_be_bytes([query[2], query[3]]);
        // QR clear and opcode 0 (the top five flag bits), QDCOUNT 1, the
        // other three sections empty.
        if flags & 0xF800 != 0 || query[4..12] != [0, 1, 0, 0, 0, 0, 0, 0] {
            return false;
        }
        // Walk the question name: plain labels only (a query's first name
        // cannot legally be compressed anyway — pointers must point
        // strictly backwards).
        let mut pos = 12usize;
        loop {
            let Some(&len) = query.get(pos) else { return false };
            if len == 0 {
                pos += 1;
                break;
            }
            if len & 0xC0 != 0 {
                return false;
            }
            pos += 1 + usize::from(len);
        }
        let name = &query[12..pos];
        // QTYPE A, QCLASS IN, and the datagram ends exactly there.
        if query.len() != pos + 4 || query[pos..] != [0, 1, 0, 1] {
            return false;
        }
        if !name.eq_ignore_ascii_case(&self.site_wire) {
            return false;
        }

        let domain = self.clients.domain_of(src).unwrap_or(self.fallback_domain);
        self.domain_queries[domain] += 1;
        let (server, ttl_s) = self.scheduler.resolve_probed(
            domain,
            SimTime::from_secs(now_s.max(0.0)),
            &self.backlogs,
            probe,
        );
        // Header: id echoed, QR|AA set, RD echoed, RA clear, NOERROR;
        // one question (echoed verbatim), one answer.
        out.extend_from_slice(&query[0..2]);
        let rflags = 0x8400 | (flags & 0x0100);
        out.extend_from_slice(&rflags.to_be_bytes());
        out.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 0]);
        out.extend_from_slice(&query[12..pos + 4]);
        // Answer: owner name uncompressed (byte-identical to the slow
        // path), IN A, clamped TTL, the chosen server's address.
        out.extend_from_slice(name);
        out.extend_from_slice(&[0, 1, 0, 1]);
        out.extend_from_slice(&wire_ttl(ttl_s).to_be_bytes());
        out.extend_from_slice(&[0, 4]);
        out.extend_from_slice(&self.server_addrs[server]);
        true
    }

    /// The general parse-based path for everything the fast path declines.
    fn handle_slow(
        &mut self,
        query: &[u8],
        src: [u8; 4],
        now_s: f64,
        out: &mut Vec<u8>,
        probe: &mut dyn Probe,
    ) -> Result<(), WireError> {
        let parsed = match Message::parse(query) {
            Ok(m) => m,
            Err(_) if query.len() >= 12 => {
                // Readable header, unreadable body: FORMERR. The response
                // header is built directly — id and opcode echoed from the
                // raw header, RD copied from the query's actual bit, RA
                // clear (RFC 1035 §4.1.1: we are authoritative-only).
                let flags = u16::from_be_bytes([query[2], query[3]]);
                let resp = Message {
                    header: Header {
                        id: u16::from_be_bytes([query[0], query[1]]),
                        response: true,
                        opcode: ((flags >> 11) & 0x0F) as u8,
                        authoritative: true,
                        truncated: false,
                        recursion_desired: flags & 0x0100 != 0,
                        recursion_available: false,
                        rcode: Rcode::FormErr,
                    },
                    questions: Vec::new(),
                    answers: Vec::new(),
                    authority: Vec::new(),
                    additional: Vec::new(),
                };
                resp.write_bytes(out);
                return Ok(());
            }
            Err(e) => return Err(e),
        };

        if parsed.header.response {
            return Err(WireError::Unsupported("got a response, not a query".into()));
        }
        let refuse = |rcode: Rcode, out: &mut Vec<u8>| {
            Message::response_to(&parsed, rcode).write_bytes(out);
            Ok(())
        };
        if parsed.header.opcode != 0 {
            return refuse(Rcode::NotImp, out);
        }
        if parsed.questions.len() != 1 {
            return refuse(Rcode::FormErr, out);
        }

        let q = &parsed.questions[0];
        if q.qclass != QClass::In {
            return refuse(Rcode::Refused, out);
        }
        if !self.in_zone(&q.name) {
            return refuse(Rcode::Refused, out);
        }
        if q.name != self.site_name {
            return refuse(Rcode::NxDomain, out);
        }
        if q.qtype != QType::A {
            // NODATA: the name exists, this type has no records.
            return refuse(Rcode::NoError, out);
        }

        let domain = self.clients.domain_of(src).unwrap_or(self.fallback_domain);
        self.domain_queries[domain] += 1;
        let (server, ttl_s) = self.scheduler.resolve_probed(
            domain,
            SimTime::from_secs(now_s.max(0.0)),
            &self.backlogs,
            probe,
        );

        let mut resp = Message::response_to(&parsed, Rcode::NoError);
        resp.answers.push(ResourceRecord::a(
            q.name.clone(),
            self.server_addrs[server],
            wire_ttl(ttl_s),
        ));
        resp.write_bytes(out);
        Ok(())
    }
}

impl std::fmt::Debug for AuthoritativeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthoritativeServer")
            .field("site", &self.site_name.to_string())
            .field("zone", &self.zone.to_string())
            .field("servers", &self.server_addrs.len())
            .field("prefixes", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Question;

    fn ask(server: &mut AuthoritativeServer, name: &str, src: [u8; 4]) -> Message {
        let q = Message::query(42, Question::a(name));
        let bytes = server.handle(&q.to_bytes(), src, 0.0).unwrap();
        Message::parse(&bytes).unwrap()
    }

    #[test]
    fn answers_site_queries_with_a_record() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "www.example.org", [10, 0, 0, 1]);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.header.authoritative);
        assert_eq!(resp.answers.len(), 1);
        let addr = resp.answers[0].a_addr().unwrap();
        assert_eq!(addr[..3], [192, 0, 2]);
        assert!(resp.answers[0].ttl > 0);
    }

    #[test]
    fn adaptive_ttl_differs_by_source_domain() {
        let mut s = AuthoritativeServer::example();
        // Domain 0 carries 8× domain 3's weight → much shorter TTLs.
        // Collect a full RR cycle to smooth the per-server factor.
        let avg = |s: &mut AuthoritativeServer, src: [u8; 4]| -> f64 {
            (0..7).map(|_| f64::from(ask(s, "www.example.org", src).answers[0].ttl)).sum::<f64>()
                / 7.0
        };
        let hot = avg(&mut s, [10, 0, 0, 1]);
        let cold = avg(&mut s, [10, 3, 0, 1]);
        assert!(cold / hot > 4.0, "hot domain avg TTL {hot}, cold {cold} — expected ≈8× spread");
    }

    #[test]
    fn unknown_name_in_zone_is_nxdomain() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "ftp.example.org", [10, 0, 0, 1]);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn out_of_zone_is_refused() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "www.other.test", [10, 0, 0, 1]);
        assert_eq!(resp.header.rcode, Rcode::Refused);
    }

    #[test]
    fn non_a_query_is_nodata() {
        let mut s = AuthoritativeServer::example();
        let mut q = Message::query(9, Question::a("www.example.org"));
        q.questions[0].qtype = QType::Ns;
        let resp = Message::parse(&s.handle(&q.to_bytes(), [10, 0, 0, 1], 0.0).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn unmapped_source_uses_fallback_domain() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "www.example.org", [203, 0, 113, 7]);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn garbage_with_readable_header_gets_formerr() {
        let mut s = AuthoritativeServer::example();
        let mut garbage = vec![0u8; 20];
        garbage[0] = 0xAA;
        garbage[1] = 0xBB;
        garbage[5] = 1; // qdcount = 1 but body is zeros → parse still ok? zeros parse as root name + truncated
        garbage.truncate(13);
        let out = s.handle(&garbage, [10, 0, 0, 1], 0.0).unwrap();
        let resp = Message::parse(&out).unwrap();
        assert_eq!(resp.header.id, 0xAABB);
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn hopeless_garbage_is_an_error() {
        let mut s = AuthoritativeServer::example();
        assert!(s.handle(&[1, 2, 3], [10, 0, 0, 1], 0.0).is_err());
    }

    #[test]
    fn alarm_feedback_steers_answers_away() {
        use geodns_server::Signal;
        let mut s = AuthoritativeServer::example();
        // Alarm all but server 5.
        for srv in [0usize, 1, 2, 3, 4, 6] {
            s.scheduler_mut().signal(srv, Signal::Alarm);
        }
        for _ in 0..10 {
            let resp = ask(&mut s, "www.example.org", [10, 1, 0, 1]);
            assert_eq!(resp.answers[0].a_addr().unwrap()[3], 10 + 5);
        }
    }

    #[test]
    fn multi_question_queries_are_formerr() {
        let mut s = AuthoritativeServer::example();
        let mut q = Message::query(5, Question::a("www.example.org"));
        q.questions.push(Question::a("www.example.org"));
        let resp = Message::parse(&s.handle(&q.to_bytes(), [10, 0, 0, 1], 0.0).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn wire_ttl_clamps_to_at_least_one_second() {
        assert_eq!(wire_ttl(0.0), 1, "zero would forbid caching");
        assert_eq!(wire_ttl(0.2), 1, "subsecond rounds up");
        assert_eq!(wire_ttl(-5.0), 1, "negative is clamped, not wrapped");
        assert_eq!(wire_ttl(f64::NAN), 1, "NaN cannot reach the wire");
        assert_eq!(wire_ttl(5.1), 6, "ordinary TTLs still ceil");
        assert_eq!(wire_ttl(240.0), 240);
        assert_eq!(wire_ttl(1e12), u32::MAX, "huge TTLs saturate");
    }

    #[test]
    fn answers_never_carry_ttl_zero() {
        // Whatever the scheduler proposes, the wire TTL is ≥ 1 s on both
        // the fast and the slow path (the slow path is forced with a
        // trailing garbage byte, which the fast path refuses).
        let mut s = AuthoritativeServer::example();
        let query = Message::query(3, Question::a("www.example.org")).to_bytes();
        let mut padded = query.clone();
        padded.push(0);
        for i in 0..50u16 {
            for bytes in [&query, &padded] {
                let resp =
                    Message::parse(&s.handle(bytes, [10, 0, 0, 1], f64::from(i)).unwrap()).unwrap();
                assert!(resp.answers[0].ttl >= 1, "TTL 0 answer escaped");
            }
        }
    }

    #[test]
    fn duplicate_prefixes_are_rejected() {
        let mut map = ClientMap::new();
        map.add_prefix([10, 1, 0, 0], 16, 3).unwrap();
        // Same prefix, different domain: would shadow the first mapping.
        let err = map.add_prefix([10, 1, 0, 0], 16, 7).unwrap_err();
        assert!(err.contains("10.1.0.0/16"), "error names the prefix: {err}");
        assert!(err.contains("domain 3"), "error names the existing mapping: {err}");
        // Same prefix after host-bit masking is still a duplicate.
        assert!(map.add_prefix([10, 1, 99, 7], 16, 7).is_err());
        // Same domain is rejected too — a silent no-op would hide config bugs.
        assert!(map.add_prefix([10, 1, 0, 0], 16, 3).is_err());
        // Different length or different network at the same length: fine.
        map.add_prefix([10, 1, 0, 0], 24, 5).unwrap();
        map.add_prefix([10, 2, 0, 0], 16, 4).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map.domain_of([10, 1, 0, 9]), Some(5), "longest prefix still wins");
        assert_eq!(map.domain_of([10, 1, 5, 9]), Some(3));
        assert_eq!(map.domain_of([10, 2, 5, 9]), Some(4));
    }

    #[test]
    fn longest_prefix_match_prefers_the_most_specific_prefix() {
        // Nested and overlapping prefixes: /8 ⊃ /16 ⊃ /24 ⊃ /32. The most
        // specific registered prefix must win for every address, and the
        // default route (/0) must catch only what nothing else does.
        let mut map = ClientMap::new();
        map.add_prefix([10, 0, 0, 0], 8, 0).unwrap();
        map.add_prefix([10, 1, 0, 0], 16, 1).unwrap();
        map.add_prefix([10, 1, 2, 0], 24, 2).unwrap();
        map.add_prefix([10, 1, 2, 3], 32, 3).unwrap();
        map.add_prefix([0, 0, 0, 0], 0, 9).unwrap();

        assert_eq!(map.domain_of([10, 9, 9, 9]), Some(0), "only the /8 covers this");
        assert_eq!(map.domain_of([10, 1, 9, 9]), Some(1), "/16 beats the /8");
        assert_eq!(map.domain_of([10, 1, 2, 9]), Some(2), "/24 beats /16 and /8");
        assert_eq!(map.domain_of([10, 1, 2, 3]), Some(3), "/32 exact host beats everything");
        assert_eq!(map.domain_of([192, 0, 2, 1]), Some(9), "default route catches the rest");
        assert_eq!(map.max_domain(), Some(9));
    }

    #[test]
    fn longest_prefix_match_is_insertion_order_independent() {
        // The same nested prefix set registered in every order must give
        // the same answer for every probe address: specificity, not
        // `add_prefix` ordering, decides.
        let prefixes: [([u8; 4], u8, usize); 4] = [
            ([172, 16, 0, 0], 12, 0),
            ([172, 16, 0, 0], 16, 1),
            ([172, 16, 5, 0], 24, 2),
            ([172, 20, 0, 0], 16, 3),
        ];
        let probes: [([u8; 4], Option<usize>); 5] = [
            ([172, 17, 0, 1], Some(0)),   // /12 only
            ([172, 16, 9, 1], Some(1)),   // /16 inside the /12
            ([172, 16, 5, 200], Some(2)), // /24 inside both
            ([172, 20, 3, 4], Some(3)),   // sibling /16
            ([172, 32, 0, 1], None),      // outside the /12 (172.32 = next /12 block)
        ];
        // All 24 permutations of 4 insertions.
        let orders = [
            [0, 1, 2, 3],
            [0, 1, 3, 2],
            [0, 2, 1, 3],
            [0, 2, 3, 1],
            [0, 3, 1, 2],
            [0, 3, 2, 1],
            [1, 0, 2, 3],
            [1, 0, 3, 2],
            [1, 2, 0, 3],
            [1, 2, 3, 0],
            [1, 3, 0, 2],
            [1, 3, 2, 0],
            [2, 0, 1, 3],
            [2, 0, 3, 1],
            [2, 1, 0, 3],
            [2, 1, 3, 0],
            [2, 3, 0, 1],
            [2, 3, 1, 0],
            [3, 0, 1, 2],
            [3, 0, 2, 1],
            [3, 1, 0, 2],
            [3, 1, 2, 0],
            [3, 2, 0, 1],
            [3, 2, 1, 0],
        ];
        for order in orders {
            let mut map = ClientMap::new();
            for i in order {
                let (addr, len, dom) = prefixes[i];
                map.add_prefix(addr, len, dom).unwrap();
            }
            for &(probe, want) in &probes {
                assert_eq!(
                    map.domain_of(probe),
                    want,
                    "probe {probe:?} under insertion order {order:?}"
                );
            }
        }
    }

    #[test]
    fn domain_queries_count_per_source_domain() {
        let mut s = AuthoritativeServer::example();
        assert_eq!(s.num_domains(), 4);
        assert_eq!(s.domain_queries(), &[0; 4]);
        for _ in 0..3 {
            let _ = ask(&mut s, "www.example.org", [10, 0, 0, 1]);
        }
        let _ = ask(&mut s, "www.example.org", [10, 2, 0, 1]);
        // Unmapped source lands on the fallback domain (3).
        let _ = ask(&mut s, "www.example.org", [203, 0, 113, 7]);
        // Refused/NXDOMAIN make no scheduling decision and count nowhere.
        let _ = ask(&mut s, "ftp.example.org", [10, 1, 0, 1]);
        let _ = ask(&mut s, "www.other.test", [10, 1, 0, 1]);
        assert_eq!(s.domain_queries(), &[3, 0, 1, 1]);
    }

    #[test]
    fn construction_rejects_out_of_range_domains() {
        // The example scheduler knows 4 domains; a client map (or
        // fallback) naming domain 4 must be a constructor error, not a
        // worker panic on the first matching query.
        let mut clients = ClientMap::new();
        clients.add_prefix([10, 0, 0, 0], 16, 4).unwrap();
        let err = AuthoritativeServer::new(
            "www.example.org".parse().unwrap(),
            "example.org".parse().unwrap(),
            (0..7).map(|i| [192, 0, 2, 10 + i as u8]).collect(),
            AuthoritativeServer::example().scheduler,
            clients,
            0,
        )
        .unwrap_err();
        assert!(err.contains("domain 4"), "{err}");
        let err = AuthoritativeServer::new(
            "www.example.org".parse().unwrap(),
            "example.org".parse().unwrap(),
            (0..7).map(|i| [192, 0, 2, 10 + i as u8]).collect(),
            AuthoritativeServer::example().scheduler,
            ClientMap::new(),
            7,
        )
        .unwrap_err();
        assert!(err.contains("fallback domain 7"), "{err}");
    }

    #[test]
    fn formerr_fallback_echoes_flags_golden_bytes() {
        let mut s = AuthoritativeServer::example();
        // A 13-byte datagram with a readable header: id 0xAABB, opcode 0,
        // RD *clear*, qdcount 1, truncated body.
        let mut garbage = vec![0u8; 13];
        garbage[0] = 0xAA;
        garbage[1] = 0xBB;
        garbage[5] = 1;
        let out = s.handle(&garbage, [10, 0, 0, 1], 0.0).unwrap();
        #[rustfmt::skip]
        let expect = [
            0xAA, 0xBB, // id echoed
            0x84, 0x01, // QR|AA, RD clear, RA clear, rcode FORMERR
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // empty sections
        ];
        assert_eq!(out, expect);

        // Same datagram with RD set: the echo copies the query's actual
        // bit (the old fallback unconditionally asserted RD).
        garbage[2] = 0x01; // RD lives in bit 8 of the flags word
        let out = s.handle(&garbage, [10, 0, 0, 1], 0.0).unwrap();
        assert_eq!(out[2..4], [0x85, 0x01], "QR|AA|RD, rcode FORMERR");
    }

    #[test]
    fn refused_response_golden_bytes() {
        let mut s = AuthoritativeServer::example();
        let mut q = Message::query(0x0102, Question::a("www.other.test"));
        q.header.recursion_desired = false;
        let out = s.handle(&q.to_bytes(), [10, 0, 0, 1], 0.0).unwrap();
        #[rustfmt::skip]
        let expect = [
            0x01, 0x02, // id echoed
            0x84, 0x05, // QR|AA, RD clear (echoed), RA clear, rcode REFUSED
            0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // question echoed
            0x03, b'w', b'w', b'w', 0x05, b'o', b't', b'h', b'e', b'r',
            0x04, b't', b'e', b's', b't', 0x00,
            0x00, 0x01, // type A
            0x00, 0x01, // class IN
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn every_response_path_echoes_rd_and_clears_ra() {
        // RFC 1035 flag audit across all response paths: RD must mirror
        // the query, RA must always be clear (authoritative-only server).
        let mut s = AuthoritativeServer::example();
        let cases: Vec<(Message, Rcode)> = vec![
            (Message::query(1, Question::a("www.example.org")), Rcode::NoError),
            (Message::query(2, Question::a("nope.example.org")), Rcode::NxDomain),
            (Message::query(3, Question::a("www.other.test")), Rcode::Refused),
            (
                {
                    let mut q = Message::query(4, Question::a("www.example.org"));
                    q.questions[0].qclass = QClass::Other(3);
                    q
                },
                Rcode::Refused,
            ),
            (
                {
                    let mut q = Message::query(5, Question::a("www.example.org"));
                    q.header.opcode = 2;
                    q
                },
                Rcode::NotImp,
            ),
            (
                {
                    let mut q = Message::query(6, Question::a("www.example.org"));
                    q.questions.push(Question::a("www.example.org"));
                    q
                },
                Rcode::FormErr,
            ),
            (
                {
                    let mut q = Message::query(7, Question::a("www.example.org"));
                    q.questions[0].qtype = QType::Ns;
                    q
                },
                Rcode::NoError,
            ),
        ];
        for (mut q, want_rcode) in cases {
            for rd in [false, true] {
                q.header.recursion_desired = rd;
                let resp =
                    Message::parse(&s.handle(&q.to_bytes(), [10, 0, 0, 1], 0.0).unwrap()).unwrap();
                let id = q.header.id;
                assert_eq!(resp.header.rcode, want_rcode, "id {id}");
                assert_eq!(resp.header.recursion_desired, rd, "id {id}: RD must mirror the query");
                assert!(!resp.header.recursion_available, "id {id}: RA must be clear");
                assert!(resp.header.response && resp.header.authoritative, "id {id}");
            }
        }
    }

    #[test]
    fn fast_and_slow_paths_produce_identical_bytes() {
        // Two deterministic twins: drive one through the public entry
        // (fast path) and the other through the forced slow path; every
        // answer must match byte for byte, including case-odd names and
        // every client domain.
        let mut fast = AuthoritativeServer::example();
        let mut slow = AuthoritativeServer::example();
        let mut fast_out = Vec::new();
        let mut slow_out = Vec::new();
        let mut t = 0.0;
        for i in 0..200u16 {
            let name = if i % 3 == 0 { "WWW.Example.ORG" } else { "www.example.org" };
            let mut q = Message::query(i, Question::a(name));
            q.header.recursion_desired = i % 2 == 0;
            let bytes = q.to_bytes();
            let src = [10, (i % 5) as u8, 0, 1]; // domains 0–3 plus unmapped
            let mut probe = NoopProbe;
            fast.handle_into(&bytes, src, t, &mut fast_out).unwrap();
            slow.handle_slow(&bytes, src, t, &mut slow_out, &mut probe).unwrap();
            assert_eq!(fast_out, slow_out, "query {i} diverged");
            t += 0.5;
        }
    }

    #[test]
    fn fast_path_declines_unusual_queries() {
        // Each of these must fall through to the slow path, not be
        // answered (or mangled) by the fast path.
        let mut s = AuthoritativeServer::example();
        let mut scratch = Vec::new();
        let mut probe = NoopProbe;
        let base = Message::query(9, Question::a("www.example.org"));

        // Trailing garbage byte.
        let mut padded = base.to_bytes();
        padded.push(0xFF);
        assert!(!s.try_fast_path(&padded, [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        // Non-A qtype.
        let mut q = base.clone();
        q.questions[0].qtype = QType::Ns;
        assert!(!s.try_fast_path(&q.to_bytes(), [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        // Non-IN class.
        let mut q = base.clone();
        q.questions[0].qclass = QClass::Other(3);
        assert!(!s.try_fast_path(&q.to_bytes(), [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        // A different name of the same length.
        let q = Message::query(9, Question::a("www.example.oRh"));
        assert!(!s.try_fast_path(&q.to_bytes(), [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        // Queries with answers attached.
        let mut q = base.clone();
        q.answers.push(ResourceRecord::a("www.example.org".parse().unwrap(), [1, 2, 3, 4], 60));
        assert!(!s.try_fast_path(&q.to_bytes(), [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        // The response bit.
        let mut q = base.clone();
        q.header.response = true;
        assert!(!s.try_fast_path(&q.to_bytes(), [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        // Truncated datagrams.
        let bytes = base.to_bytes();
        for cut in [0, 5, 11, 12, bytes.len() - 1] {
            assert!(!s.try_fast_path(&bytes[..cut], [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        }
        assert!(scratch.is_empty(), "declined fast paths must not write");

        // And the one shape it does take:
        assert!(s.try_fast_path(&bytes, [10, 0, 0, 1], 0.0, &mut scratch, &mut probe));
        assert!(!scratch.is_empty());
    }

    #[test]
    fn handle_into_reuses_the_buffer() {
        let mut s = AuthoritativeServer::example();
        let query = Message::query(11, Question::a("www.example.org")).to_bytes();
        let mut out = Vec::new();
        s.handle_into(&query, [10, 0, 0, 1], 0.0, &mut out).unwrap();
        let first_len = out.len();
        let cap = out.capacity();
        for i in 1..100 {
            s.handle_into(&query, [10, 0, 0, 1], f64::from(i), &mut out).unwrap();
            assert_eq!(out.len(), first_len);
            assert_eq!(out.capacity(), cap, "steady state must not regrow the buffer");
        }
    }
}
