//! The authoritative front end: query bytes in, adaptive-TTL answers out.

use geodns_core::{Algorithm, DnsScheduler, EstimatorKind, HiddenLoadEstimator};
use geodns_server::CapacityPlan;
use geodns_simcore::{RngStreams, SimTime};

use crate::{Message, Name, QClass, QType, Rcode, ResourceRecord, WireError};

/// Maps client source addresses to the scheduler's *domain* index — the
/// operational equivalent of "identifying the source domain of the client
/// requests" (in reality the querying entity is the domain's local name
/// server, so one prefix per customer network).
///
/// Longest-prefix match over IPv4 prefixes.
///
/// # Examples
///
/// ```
/// use geodns_wire::ClientMap;
///
/// let mut map = ClientMap::new();
/// map.add_prefix([10, 1, 0, 0], 16, 3).unwrap();
/// map.add_prefix([10, 1, 2, 0], 24, 7).unwrap();
/// assert_eq!(map.domain_of([10, 1, 2, 9]), Some(7), "longest prefix wins");
/// assert_eq!(map.domain_of([10, 1, 9, 9]), Some(3));
/// assert_eq!(map.domain_of([192, 0, 2, 1]), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientMap {
    prefixes: Vec<(u32, u8, usize)>, // (network, prefix length, domain)
}

impl ClientMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ClientMap::default()
    }

    /// Registers `addr/len → domain`.
    ///
    /// # Errors
    ///
    /// Returns a message if `len > 32`.
    pub fn add_prefix(&mut self, addr: [u8; 4], len: u8, domain: usize) -> Result<(), String> {
        if len > 32 {
            return Err(format!("prefix length {len} exceeds 32"));
        }
        let network = u32::from_be_bytes(addr) & Self::mask(len);
        self.prefixes.push((network, len, domain));
        // Longest prefix first.
        self.prefixes.sort_by_key(|p| std::cmp::Reverse(p.1));
        Ok(())
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The domain of a source address, if any prefix matches.
    #[must_use]
    pub fn domain_of(&self, addr: [u8; 4]) -> Option<usize> {
        let ip = u32::from_be_bytes(addr);
        self.prefixes.iter().find(|(net, len, _)| ip & Self::mask(*len) == *net).map(|&(_, _, d)| d)
    }

    /// Number of registered prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// An authoritative DNS server for one Web-site name, answering `IN A`
/// queries with the adaptive-TTL scheduler's `(server, TTL)` decision.
///
/// Byte-in/byte-out: the caller owns sockets (or a simulator owns time via
/// the `now_s` argument).
pub struct AuthoritativeServer {
    site_name: Name,
    zone: Name,
    server_addrs: Vec<[u8; 4]>,
    scheduler: DnsScheduler,
    clients: ClientMap,
    fallback_domain: usize,
    backlogs: Vec<f64>,
}

impl AuthoritativeServer {
    /// Creates the server.
    ///
    /// * `site_name` — the name being load-balanced (`www.example.org`).
    /// * `zone` — the zone of authority (`example.org`); queries outside
    ///   it are `REFUSED`, other names inside it get `NXDOMAIN`.
    /// * `server_addrs` — the Web servers' A records, `S_1` first (must
    ///   match the scheduler's capacity plan order).
    /// * `fallback_domain` — the scheduling domain for sources no prefix
    ///   matches.
    ///
    /// # Errors
    ///
    /// Returns a message if the address count differs from the scheduler's
    /// server count, or `site_name` is not inside `zone`.
    pub fn new(
        site_name: Name,
        zone: Name,
        server_addrs: Vec<[u8; 4]>,
        scheduler: DnsScheduler,
        clients: ClientMap,
        fallback_domain: usize,
    ) -> Result<Self, String> {
        let n = scheduler.availability().len();
        if server_addrs.len() != n {
            return Err(format!(
                "{} server addresses for a {n}-server scheduler",
                server_addrs.len()
            ));
        }
        let site_labels = site_name.labels();
        let zone_labels = zone.labels();
        if site_labels.len() < zone_labels.len()
            || !site_labels[site_labels.len() - zone_labels.len()..]
                .iter()
                .zip(zone_labels)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            return Err(format!("site {site_name} is not inside zone {zone}"));
        }
        Ok(AuthoritativeServer {
            site_name,
            zone,
            server_addrs,
            clients,
            fallback_domain,
            backlogs: vec![0.0; n],
            scheduler,
        })
    }

    /// A small ready-made instance for examples and tests: 7 servers
    /// (Table-2 H35 capacities) behind `www.example.org`, 4 client
    /// domains on `10.{0..3}.0.0/16`, running `DRR2-TTL/S_K`.
    ///
    /// # Panics
    ///
    /// Never panics — the configuration is valid by construction.
    #[must_use]
    pub fn example() -> Self {
        let plan = CapacityPlan::from_level(geodns_server::HeterogeneityLevel::H35, 500.0);
        let weights = [40.0, 20.0, 10.0, 5.0];
        let estimator = HiddenLoadEstimator::new(EstimatorKind::Oracle, &weights);
        let scheduler = DnsScheduler::new(
            Algorithm::drr2_ttl_s_k(),
            &plan,
            estimator,
            0.25,
            240.0,
            true,
            RngStreams::new(1998).stream("wire"),
        );
        let mut clients = ClientMap::new();
        for d in 0..4u8 {
            clients.add_prefix([10, d, 0, 0], 16, usize::from(d)).expect("valid prefix");
        }
        let server_addrs = (0..7).map(|i| [192, 0, 2, 10 + i as u8]).collect();
        Self::new(
            "www.example.org".parse().expect("valid name"),
            "example.org".parse().expect("valid name"),
            server_addrs,
            scheduler,
            clients,
            3,
        )
        .expect("example configuration is valid")
    }

    /// The scheduler, e.g. to feed alarm signals or estimator collections.
    pub fn scheduler_mut(&mut self) -> &mut DnsScheduler {
        &mut self.scheduler
    }

    /// Updates the backlog snapshot used by backlog-aware policies.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the server count.
    pub fn set_backlogs(&mut self, backlogs: &[f64]) {
        assert_eq!(backlogs.len(), self.backlogs.len(), "backlog length mismatch");
        self.backlogs.copy_from_slice(backlogs);
    }

    fn in_zone(&self, name: &Name) -> bool {
        let n = name.labels();
        let z = self.zone.labels();
        n.len() >= z.len()
            && n[n.len() - z.len()..].iter().zip(z).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Handles one query datagram from `src` at time `now_s` seconds,
    /// returning the response datagram.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] only when the datagram is too mangled to
    /// extract a transaction id (otherwise malformed queries get a
    /// `FORMERR`/`NOTIMP`/`REFUSED` response as appropriate).
    pub fn handle(&mut self, query: &[u8], src: [u8; 4], now_s: f64) -> Result<Vec<u8>, WireError> {
        let parsed = match Message::parse(query) {
            Ok(m) => m,
            Err(_) if query.len() >= 12 => {
                // Readable header, unreadable body: answer FORMERR.
                let id = u16::from_be_bytes([query[0], query[1]]);
                let mut m = Message::query(id, crate::Question::a("invalid.invalid"));
                m.questions.clear();
                let mut resp = Message::response_to(&m, Rcode::FormErr);
                resp.questions.clear();
                return Ok(resp.to_bytes());
            }
            Err(e) => return Err(e),
        };

        if parsed.header.response {
            return Err(WireError::Unsupported("got a response, not a query".into()));
        }
        if parsed.header.opcode != 0 {
            return Ok(Message::response_to(&parsed, Rcode::NotImp).to_bytes());
        }
        if parsed.questions.len() != 1 {
            return Ok(Message::response_to(&parsed, Rcode::FormErr).to_bytes());
        }

        let q = &parsed.questions[0];
        if q.qclass != QClass::In {
            return Ok(Message::response_to(&parsed, Rcode::Refused).to_bytes());
        }
        if !self.in_zone(&q.name) {
            return Ok(Message::response_to(&parsed, Rcode::Refused).to_bytes());
        }
        if q.name != self.site_name {
            return Ok(Message::response_to(&parsed, Rcode::NxDomain).to_bytes());
        }
        if q.qtype != QType::A {
            // NODATA: the name exists, this type has no records.
            return Ok(Message::response_to(&parsed, Rcode::NoError).to_bytes());
        }

        let domain = self.clients.domain_of(src).unwrap_or(self.fallback_domain);
        let (server, ttl_s) =
            self.scheduler.resolve(domain, SimTime::from_secs(now_s.max(0.0)), &self.backlogs);
        let ttl = ttl_s.ceil().min(f64::from(u32::MAX)) as u32;

        let mut resp = Message::response_to(&parsed, Rcode::NoError);
        resp.answers.push(ResourceRecord::a(q.name.clone(), self.server_addrs[server], ttl));
        Ok(resp.to_bytes())
    }
}

impl std::fmt::Debug for AuthoritativeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthoritativeServer")
            .field("site", &self.site_name.to_string())
            .field("zone", &self.zone.to_string())
            .field("servers", &self.server_addrs.len())
            .field("prefixes", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Question;

    fn ask(server: &mut AuthoritativeServer, name: &str, src: [u8; 4]) -> Message {
        let q = Message::query(42, Question::a(name));
        let bytes = server.handle(&q.to_bytes(), src, 0.0).unwrap();
        Message::parse(&bytes).unwrap()
    }

    #[test]
    fn answers_site_queries_with_a_record() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "www.example.org", [10, 0, 0, 1]);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.header.authoritative);
        assert_eq!(resp.answers.len(), 1);
        let addr = resp.answers[0].a_addr().unwrap();
        assert_eq!(addr[..3], [192, 0, 2]);
        assert!(resp.answers[0].ttl > 0);
    }

    #[test]
    fn adaptive_ttl_differs_by_source_domain() {
        let mut s = AuthoritativeServer::example();
        // Domain 0 carries 8× domain 3's weight → much shorter TTLs.
        // Collect a full RR cycle to smooth the per-server factor.
        let avg = |s: &mut AuthoritativeServer, src: [u8; 4]| -> f64 {
            (0..7).map(|_| f64::from(ask(s, "www.example.org", src).answers[0].ttl)).sum::<f64>()
                / 7.0
        };
        let hot = avg(&mut s, [10, 0, 0, 1]);
        let cold = avg(&mut s, [10, 3, 0, 1]);
        assert!(cold / hot > 4.0, "hot domain avg TTL {hot}, cold {cold} — expected ≈8× spread");
    }

    #[test]
    fn unknown_name_in_zone_is_nxdomain() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "ftp.example.org", [10, 0, 0, 1]);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn out_of_zone_is_refused() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "www.other.test", [10, 0, 0, 1]);
        assert_eq!(resp.header.rcode, Rcode::Refused);
    }

    #[test]
    fn non_a_query_is_nodata() {
        let mut s = AuthoritativeServer::example();
        let mut q = Message::query(9, Question::a("www.example.org"));
        q.questions[0].qtype = QType::Ns;
        let resp = Message::parse(&s.handle(&q.to_bytes(), [10, 0, 0, 1], 0.0).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn unmapped_source_uses_fallback_domain() {
        let mut s = AuthoritativeServer::example();
        let resp = ask(&mut s, "www.example.org", [203, 0, 113, 7]);
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn garbage_with_readable_header_gets_formerr() {
        let mut s = AuthoritativeServer::example();
        let mut garbage = vec![0u8; 20];
        garbage[0] = 0xAA;
        garbage[1] = 0xBB;
        garbage[5] = 1; // qdcount = 1 but body is zeros → parse still ok? zeros parse as root name + truncated
        garbage.truncate(13);
        let out = s.handle(&garbage, [10, 0, 0, 1], 0.0).unwrap();
        let resp = Message::parse(&out).unwrap();
        assert_eq!(resp.header.id, 0xAABB);
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn hopeless_garbage_is_an_error() {
        let mut s = AuthoritativeServer::example();
        assert!(s.handle(&[1, 2, 3], [10, 0, 0, 1], 0.0).is_err());
    }

    #[test]
    fn alarm_feedback_steers_answers_away() {
        use geodns_server::Signal;
        let mut s = AuthoritativeServer::example();
        // Alarm all but server 5.
        for srv in [0usize, 1, 2, 3, 4, 6] {
            s.scheduler_mut().signal(srv, Signal::Alarm);
        }
        for _ in 0..10 {
            let resp = ask(&mut s, "www.example.org", [10, 1, 0, 1]);
            assert_eq!(resp.answers[0].a_addr().unwrap()[3], 10 + 5);
        }
    }

    #[test]
    fn multi_question_queries_are_formerr() {
        let mut s = AuthoritativeServer::example();
        let mut q = Message::query(5, Question::a("www.example.org"));
        q.questions.push(Question::a("www.example.org"));
        let resp = Message::parse(&s.handle(&q.to_bytes(), [10, 0, 0, 1], 0.0).unwrap()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }
}
