//! `geodnsd` — run the authoritative adaptive-TTL DNS daemon.
//!
//! ```text
//! geodnsd [--bind ADDR] [--workers N] [--seed N] [--duration SECS]
//!         [--io-mode uring|batched|single] [--batch N] [--pin BASE]
//!         [--estimator oracle|ema[:ALPHA]|window[:N]]
//!         [--collect-interval SECS]
//!         [--policy drr2|rtt-band[:BAND_MS]]
//! ```
//!
//! Serves the example topology (7 Table-2 H35 servers behind
//! `www.example.org`, 4 client domains) until `--duration` elapses or a
//! `GDNSCTL1 shutdown` control datagram arrives, then prints a per-worker
//! summary. See `geodns_wire::daemon` for the wire/control protocol and
//! the three I/O modes (`batched` is the default on Linux: per-worker
//! `SO_REUSEPORT` sockets drained with `recvmmsg`/`sendmmsg`; `uring`
//! replaces the two syscalls per round with one `io_uring_enter`;
//! `single` is the shared-socket one-datagram-per-syscall fallback).
//! Requesting a mode the kernel cannot provide degrades one rung down
//! the ladder and the startup banner says so.
//!
//! `--pin BASE` pins worker `i` to CPU `(BASE + i) mod online_cpus`
//! (best-effort), for the worker×core scaling study; the summary's
//! per-worker `rx_drops` column reports datagrams the kernel dropped on
//! each worker's receive queue (`SO_RXQ_OVFL`), so saturation is visible
//! even though dropped queries never reach user space.
//!
//! `--estimator oracle` (the default) spoon-feeds the nominal 40:20:10:5
//! domain weights. `ema` and `window` instead start the shards from a
//! uniform cold-start belief and run the live §3 control loop: the
//! daemon counts its own per-domain queries and a collector thread
//! merges them every `--collect-interval` seconds (default 32, the
//! paper-scale cadence) into the hidden-load estimator, re-deriving the
//! two-tier classification and the adaptive TTL tables from what the
//! daemon actually observed.
//!
//! `--policy drr2` (the default) is the paper's champion DRR2-TTL/S_K.
//! `--policy rtt-band[:BAND_MS]` swaps in the proximity-aware RTT-band
//! selector: servers within `BAND_MS` (default 400) of the best smoothed
//! RTT compete on capacity and load, and each shard's SRTT tables are
//! primed from the example geography so answers are proximity-aware from
//! the first query.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use geodns_core::{Algorithm, EstimatorKind, DEFAULT_BAND_MS};
use geodns_wire::{AuthoritativeServer, Daemon, DaemonConfig, IoMode};

/// The `--estimator` flag before the collection interval is known.
enum EstArg {
    Oracle,
    Ema(f64),
    Window(usize),
}

impl EstArg {
    fn parse(spec: &str) -> Result<EstArg, String> {
        let (name, param) = match spec.split_once(':') {
            Some((name, param)) => (name, Some(param)),
            None => (spec, None),
        };
        match (name, param) {
            ("oracle", None) => Ok(EstArg::Oracle),
            ("oracle", Some(_)) => Err("oracle takes no parameter".into()),
            ("ema", None) => Ok(EstArg::Ema(0.25)),
            ("ema", Some(a)) => Ok(EstArg::Ema(a.parse().map_err(|e| format!("ema alpha: {e}"))?)),
            ("window", None) => Ok(EstArg::Window(8)),
            ("window", Some(n)) => {
                Ok(EstArg::Window(n.parse().map_err(|e| format!("window count: {e}"))?))
            }
            _ => {
                Err(format!("unknown estimator {spec:?} (expected oracle|ema[:ALPHA]|window[:N])"))
            }
        }
    }
}

/// The `--policy` flag: which selection algorithm the shards run.
enum PolicyArg {
    /// The paper's champion, `DRR2-TTL/S_K` (the historical default).
    Drr2,
    /// Proximity-aware RTT-band selection with the given band width.
    RttBand(u32),
}

impl PolicyArg {
    fn parse(spec: &str) -> Result<PolicyArg, String> {
        let (name, param) = match spec.split_once(':') {
            Some((name, param)) => (name, Some(param)),
            None => (spec, None),
        };
        match (name, param) {
            ("drr2", None) => Ok(PolicyArg::Drr2),
            ("drr2", Some(_)) => Err("drr2 takes no parameter".into()),
            ("rtt-band", None) => Ok(PolicyArg::RttBand(DEFAULT_BAND_MS)),
            ("rtt-band", Some(b)) => {
                let band: u32 = b.parse().map_err(|e| format!("rtt-band width: {e}"))?;
                if band == 0 {
                    return Err("rtt-band width must be at least 1 ms".into());
                }
                Ok(PolicyArg::RttBand(band))
            }
            _ => Err(format!("unknown policy {spec:?} (expected drr2|rtt-band[:BAND_MS])")),
        }
    }

    fn algorithm(&self) -> Algorithm {
        match *self {
            PolicyArg::Drr2 => Algorithm::drr2_ttl_s_k(),
            PolicyArg::RttBand(band_ms) => Algorithm::rtt_band(band_ms),
        }
    }
}

struct Args {
    bind: SocketAddr,
    workers: usize,
    seed: u64,
    duration: Option<f64>,
    io_mode: IoMode,
    batch: usize,
    pin: Option<usize>,
    estimator: EstArg,
    collect_interval: Option<f64>,
    policy: PolicyArg,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:5353".parse().expect("valid default addr"),
        workers: std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
        seed: 1998,
        duration: None,
        io_mode: IoMode::default(),
        batch: 32,
        pin: None,
        estimator: EstArg::Oracle,
        collect_interval: None,
        policy: PolicyArg::Drr2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--bind" => args.bind = value("--bind")?.parse().map_err(|e| format!("--bind: {e}"))?,
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--duration" => {
                args.duration =
                    Some(value("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?);
            }
            "--io-mode" => {
                args.io_mode =
                    value("--io-mode")?.parse().map_err(|e| format!("--io-mode: {e}"))?;
            }
            "--batch" => {
                args.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?;
            }
            "--pin" => {
                args.pin = Some(value("--pin")?.parse().map_err(|e| format!("--pin: {e}"))?);
            }
            "--estimator" => args.estimator = EstArg::parse(&value("--estimator")?)?,
            "--policy" => args.policy = PolicyArg::parse(&value("--policy")?)?,
            "--collect-interval" => {
                args.collect_interval = Some(
                    value("--collect-interval")?
                        .parse()
                        .map_err(|e| format!("--collect-interval: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: geodnsd [--bind ADDR] [--workers N] [--seed N] [--duration SECS] \
                     [--io-mode uring|batched|single] [--batch N] [--pin BASE] \
                     [--estimator oracle|ema[:ALPHA]|window[:N]] [--collect-interval SECS] \
                     [--policy drr2|rtt-band[:BAND_MS]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if let Some(interval) = args.collect_interval {
        if !(interval.is_finite() && interval > 0.0) {
            return Err(format!("--collect-interval must be > 0, got {interval}"));
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("geodnsd: {e}");
            std::process::exit(2);
        }
    };
    // Resolve the estimator: the flag names the mechanism, the (shared)
    // collection interval parameterizes it. The oracle runs a collector
    // only when one was explicitly asked for.
    let collect_s = args.collect_interval.unwrap_or(32.0);
    let kind = match args.estimator {
        EstArg::Oracle => EstimatorKind::Oracle,
        EstArg::Ema(ema_alpha) => {
            EstimatorKind::Measured { collect_interval_s: collect_s, ema_alpha }
        }
        EstArg::Window(windows) => {
            EstimatorKind::WindowAverage { collect_interval_s: collect_s, windows }
        }
    };
    if let Err(e) = kind.validate() {
        eprintln!("geodnsd: --estimator: {e}");
        std::process::exit(2);
    }
    let algorithm = args.policy.algorithm();
    let shards = (0..args.workers)
        .map(|w| {
            AuthoritativeServer::example_shard_with_algorithm(w as u64, args.seed, kind, algorithm)
        })
        .collect();
    let mut cfg = DaemonConfig::new(args.bind);
    cfg.io_mode = args.io_mode;
    cfg.batch = args.batch;
    cfg.pin = args.pin;
    cfg.collect_interval = match kind {
        EstimatorKind::Oracle => args.collect_interval.map(Duration::from_secs_f64),
        _ => Some(Duration::from_secs_f64(collect_s)),
    };
    let daemon = match Daemon::spawn(&cfg, shards) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("geodnsd: {e}");
            std::process::exit(1);
        }
    };
    // The "listening" line is load-bearing: the smoke test and loadgen
    // wait for it (and parse the port) before sending traffic — keep the
    // prefix stable. The io suffix reports the *effective* mode (uring
    // may have degraded to batched if the kernel lacks io_uring, and
    // batched to single if reuseport setup failed).
    println!(
        "geodnsd listening on {} with {} workers (io={})",
        daemon.local_addr(),
        args.workers,
        daemon.io_mode()
    );
    if daemon.io_mode() != daemon.requested_io_mode() {
        println!(
            "geodnsd: io mode {} unavailable on this kernel, degraded to {}",
            daemon.requested_io_mode(),
            daemon.io_mode()
        );
    }
    if let Some(base) = args.pin {
        println!("geodnsd: pinning workers to cores {base}.. (best-effort)");
    }
    match args.policy {
        PolicyArg::Drr2 => println!("geodnsd policy: {} (paper champion)", algorithm.name()),
        PolicyArg::RttBand(band_ms) => println!(
            "geodnsd policy: {} band={band_ms}ms (proximity-aware, SRTT primed)",
            algorithm.name()
        ),
    }
    match kind {
        EstimatorKind::Oracle => println!("geodnsd estimator: oracle (nominal 40:20:10:5)"),
        EstimatorKind::Measured { collect_interval_s, ema_alpha } => println!(
            "geodnsd estimator: ema alpha={ema_alpha} collect={collect_interval_s}s (live §3 loop)"
        ),
        EstimatorKind::WindowAverage { collect_interval_s, windows } => println!(
            "geodnsd estimator: window n={windows} collect={collect_interval_s}s (live §3 loop)"
        ),
    }

    let started = Instant::now();
    loop {
        if daemon.shutdown_requested() {
            break;
        }
        if let Some(limit) = args.duration {
            if started.elapsed().as_secs_f64() >= limit {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let report = daemon.shutdown();
    let totals = report.totals();
    println!(
        "geodnsd: {} received, {} answered, {} dropped, {} ctl, {} tx errors, {} rx drops, \
         {} decisions",
        totals.received,
        totals.answered,
        totals.dropped,
        totals.ctl,
        totals.tx_errors,
        totals.rx_drops,
        report.dns_decisions()
    );
    println!(
        "geodnsd estimation: collections={} weights={}",
        report.collections(),
        report.workers.iter().max_by_key(|w| w.collections).map_or_else(String::new, |w| w
            .weights
            .iter()
            .map(|x| format!("{x:.4}"))
            .collect::<Vec<_>>()
            .join(","))
    );
    for (i, w) in report.workers.iter().enumerate() {
        println!(
            "  worker {i}: answered={} tx_errors={} rx_drops={} ttl_mean_s={:.1} ttl_min_s={:.1} ttl_max_s={:.1} collections={}",
            w.stats.answered, w.stats.tx_errors, w.stats.rx_drops, w.obs.ttl_mean_s, w.obs.ttl_min_s, w.obs.ttl_max_s, w.collections
        );
    }
}
