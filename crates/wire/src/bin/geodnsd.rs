//! `geodnsd` — run the authoritative adaptive-TTL DNS daemon.
//!
//! ```text
//! geodnsd [--bind ADDR] [--workers N] [--seed N] [--duration SECS]
//!         [--io-mode batched|single] [--batch N]
//! ```
//!
//! Serves the example topology (7 Table-2 H35 servers behind
//! `www.example.org`, 4 client domains) until `--duration` elapses or a
//! `GDNSCTL1 shutdown` control datagram arrives, then prints a per-worker
//! summary. See `geodns_wire::daemon` for the wire/control protocol and
//! the two I/O modes (`batched` is the default on Linux: per-worker
//! `SO_REUSEPORT` sockets drained with `recvmmsg`/`sendmmsg`; `single` is
//! the shared-socket one-datagram-per-syscall fallback).

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use geodns_wire::{AuthoritativeServer, Daemon, DaemonConfig, IoMode};

struct Args {
    bind: SocketAddr,
    workers: usize,
    seed: u64,
    duration: Option<f64>,
    io_mode: IoMode,
    batch: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:5353".parse().expect("valid default addr"),
        workers: std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
        seed: 1998,
        duration: None,
        io_mode: IoMode::default(),
        batch: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--bind" => args.bind = value("--bind")?.parse().map_err(|e| format!("--bind: {e}"))?,
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--duration" => {
                args.duration =
                    Some(value("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?);
            }
            "--io-mode" => {
                args.io_mode =
                    value("--io-mode")?.parse().map_err(|e| format!("--io-mode: {e}"))?;
            }
            "--batch" => {
                args.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: geodnsd [--bind ADDR] [--workers N] [--seed N] [--duration SECS] \
                     [--io-mode batched|single] [--batch N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("geodnsd: {e}");
            std::process::exit(2);
        }
    };
    let shards = (0..args.workers)
        .map(|w| AuthoritativeServer::example_shard(w as u64, args.seed))
        .collect();
    let mut cfg = DaemonConfig::new(args.bind);
    cfg.io_mode = args.io_mode;
    cfg.batch = args.batch;
    let daemon = match Daemon::spawn(&cfg, shards) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("geodnsd: {e}");
            std::process::exit(1);
        }
    };
    // The "listening" line is load-bearing: the smoke test and loadgen
    // wait for it (and parse the port) before sending traffic — keep the
    // prefix stable. The io suffix reports the *effective* mode (batched
    // may have degraded to single if reuseport setup failed).
    println!(
        "geodnsd listening on {} with {} workers (io={})",
        daemon.local_addr(),
        args.workers,
        daemon.io_mode()
    );

    let started = Instant::now();
    loop {
        if daemon.shutdown_requested() {
            break;
        }
        if let Some(limit) = args.duration {
            if started.elapsed().as_secs_f64() >= limit {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let report = daemon.shutdown();
    let totals = report.totals();
    println!(
        "geodnsd: {} received, {} answered, {} dropped, {} ctl, {} tx errors, {} decisions",
        totals.received,
        totals.answered,
        totals.dropped,
        totals.ctl,
        totals.tx_errors,
        report.dns_decisions()
    );
    for (i, w) in report.workers.iter().enumerate() {
        println!(
            "  worker {i}: answered={} tx_errors={} ttl_mean_s={:.1} ttl_min_s={:.1} ttl_max_s={:.1}",
            w.stats.answered, w.stats.tx_errors, w.obs.ttl_mean_s, w.obs.ttl_min_s, w.obs.ttl_max_s
        );
    }
}
