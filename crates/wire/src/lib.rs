//! Minimal DNS wire protocol (RFC 1035 subset) and an **authoritative
//! front end** for the adaptive-TTL scheduler.
//!
//! The paper's system *is* an authoritative DNS: the cluster-side name
//! server answers `A` queries for the Web site's name, choosing both the
//! server address and the TTL. This crate makes that concrete — it can
//! take real DNS query bytes and produce real DNS response bytes whose
//! answer section carries the scheduler's `(server, adaptive TTL)`
//! decision:
//!
//! * [`Message`], [`Question`], [`ResourceRecord`], [`Name`] — the message
//!   model for the subset an authoritative server needs (QUERY opcode,
//!   `A`/`NS` records, IN class);
//! * [`Message::to_bytes`] / [`Message::parse`] — the wire codec, with
//!   RFC 1035 §4.1.4 compression-pointer *decoding* (encoding emits
//!   uncompressed names, which is always legal);
//! * [`AuthoritativeServer`] — glues a resolver table (source IP prefix →
//!   scheduling domain) to a [`DnsScheduler`](geodns_core::DnsScheduler)
//!   and answers queries, byte-in/byte-out;
//! * [`Daemon`] — the `geodnsd` UDP front end: N worker threads, each
//!   owning a scheduler shard and reusable buffers, serving the above
//!   over a real socket (see the [`daemon`] module docs for the threading
//!   model, buffer discipline, and control protocol).
//!
//! Everything below [`Daemon`] is socket-free: the caller owns I/O (or a
//! simulator owns time), keeping the core trivially testable and
//! runtime-agnostic.
//!
//! # Example
//!
//! ```
//! use geodns_wire::{AuthoritativeServer, Message, Question, QType};
//!
//! let mut server = AuthoritativeServer::example();
//! let query = Message::query(0x1234, Question::a("www.example.org"));
//! let response = server.handle(&query.to_bytes(), [10, 1, 2, 3], 0.0).unwrap();
//! let parsed = Message::parse(&response).unwrap();
//! assert_eq!(parsed.header.id, 0x1234);
//! assert_eq!(parsed.answers.len(), 1);
//! assert!(parsed.answers[0].ttl > 0);
//! ```

// Unsafe is denied crate-wide and allowed back in exactly the modules
// with hand-written syscall bindings: `mmsg` (`recvmmsg`/`sendmmsg`/
// `SO_REUSEPORT`), `uring` (`io_uring_setup`/`io_uring_enter`/`mmap`),
// and `affinity` (`sched_setaffinity`) — each wrapping it behind a safe
// API.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
mod codec;
pub mod daemon;
mod message;
pub mod mmsg;
mod name;
mod server;
pub mod uring;

pub use codec::WireError;
pub use daemon::{
    Daemon, DaemonConfig, DaemonHandle, DaemonReport, IoMode, WorkerReport, WorkerStats,
};
pub use message::{Header, Message, QClass, QType, Question, Rcode, ResourceRecord};
pub use name::Name;
pub use server::{AuthoritativeServer, ClientMap};
