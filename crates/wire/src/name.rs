//! Domain names: label sequences with RFC 1035 length limits.

use std::fmt;

use crate::codec::WireError;

/// A fully qualified DNS name as a sequence of labels (without the
/// trailing empty root label in the textual form).
///
/// Enforces RFC 1035 limits: labels of 1–63 bytes, total wire length
/// ≤ 255 bytes. Comparison is case-insensitive, as DNS requires.
///
/// # Examples
///
/// ```
/// use geodns_wire::Name;
///
/// let n: Name = "www.Example.ORG".parse().unwrap();
/// assert_eq!(n.to_string(), "www.example.org");
/// assert_eq!(n.labels().len(), 3);
/// let m: Name = "WWW.example.org".parse().unwrap();
/// assert_eq!(n, m, "names compare case-insensitively");
/// ```
#[derive(Debug, Clone, Eq)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The root name (zero labels).
    #[must_use]
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from labels.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadName`] when a label is empty, exceeds 63
    /// bytes, or the total wire form exceeds 255 bytes.
    pub fn from_labels<I, S>(labels: I) -> Result<Self, WireError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        let mut wire_len = 1; // root byte
        for label in &labels {
            if label.is_empty() || label.len() > 63 {
                return Err(WireError::BadName(format!(
                    "label length {} out of 1..=63",
                    label.len()
                )));
            }
            wire_len += 1 + label.len();
        }
        if wire_len > 255 {
            return Err(WireError::BadName(format!("name wire length {wire_len} exceeds 255")));
        }
        Ok(Name { labels })
    }

    /// The labels, in order from the leftmost.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Whether this is the root name.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The wire-format length in bytes (uncompressed).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self.labels.iter().zip(&other.labels).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for label in &self.labels {
            label.to_ascii_lowercase().hash(state);
        }
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, WireError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(trimmed.split('.'))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        let joined =
            self.labels.iter().map(|l| l.to_ascii_lowercase()).collect::<Vec<_>>().join(".");
        write!(f, "{joined}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: Name = "www.example.org.".parse().unwrap();
        assert_eq!(n.to_string(), "www.example.org");
        assert_eq!(n.labels().len(), 3);
        assert!(!n.is_root());
    }

    #[test]
    fn root_forms() {
        let r: Name = ".".parse().unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        assert_eq!(r.wire_len(), 1);
        let empty: Name = "".parse().unwrap();
        assert!(empty.is_root());
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        let a: Name = "WWW.Example.Org".parse().unwrap();
        let b: Name = "www.example.org".parse().unwrap();
        assert_eq!(a, b);
        let set: HashSet<Name> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn limits_enforced() {
        let long_label = "a".repeat(64);
        assert!(Name::from_labels([long_label]).is_err());
        assert!(Name::from_labels([""]).is_err());
        // 5 × (63+1) + … exceeds 255.
        let l63 = "b".repeat(63);
        assert!(
            Name::from_labels(vec![l63.clone(), l63.clone(), l63.clone(), l63.clone()]).is_err()
        );
        assert!(Name::from_labels(vec![l63.clone(), l63.clone(), l63]).is_ok());
    }

    #[test]
    fn wire_len_counts_length_bytes_and_root() {
        let n: Name = "ab.c".parse().unwrap();
        // 1+2 + 1+1 + 1 = 6
        assert_eq!(n.wire_len(), 6);
    }
}
