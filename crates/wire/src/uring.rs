//! io_uring transport: one `io_uring_enter` per worker flush.
//!
//! The batched transport ([`crate::mmsg`]) amortized syscalls to two per
//! batch — one `recvmmsg`, one `sendmmsg`. This module removes one of the
//! two and makes the remaining one optional-on-idle: receive SQEs for the
//! whole arena are parked in the kernel ahead of time, responses are
//! staged as send SQEs in shared-memory rings, and a single
//! `io_uring_enter` both submits everything staged since the last call
//! and blocks for the next completion. Steady state is therefore **one
//! syscall per drain–serve–flush iteration**, covering both directions.
//!
//! # Ring anatomy (what [`Ring::new`] maps)
//!
//! `io_uring_setup(2)` returns an fd describing three kernel-owned
//! regions, which we `mmap` exactly as liburing does (hand-written
//! `extern "C"` declarations — this workspace vendors no libc crate, and
//! the io_uring syscall numbers are identical on every 64-bit
//! architecture since they postdate the asm-generic unification):
//!
//! * the **SQ ring** — head/tail indices plus an indirection array of SQE
//!   slots (we pre-fill it with the identity mapping once);
//! * the **SQE array** — 64-byte submission entries the application
//!   fills: `IORING_OP_RECVMSG` (10) per receive slot, `IORING_OP_SENDMSG`
//!   (9) per staged response, `IORING_OP_TIMEOUT` (11) as the shutdown
//!   poll (below);
//! * the **CQ ring** — 16-byte completion entries tagged by the
//!   `user_data` we stamped on the SQE (slot index + an op-kind tag in
//!   the high bits).
//!
//! The SQ and CQ rings are mapped separately (`IORING_OFF_SQ_RING` /
//! `IORING_OFF_CQ_RING`); kernels with `IORING_FEAT_SINGLE_MMAP` still
//! honour the split layout, so one code path serves every kernel back to
//! 5.0 (RECVMSG/SENDMSG are original-v5.0 opcodes — deliberately chosen
//! over flashier multishot/provided-buffer modes, which would raise the
//! kernel floor to 6.0 for the same syscall count).
//!
//! # Buffer discipline and registration
//!
//! All message state lives in preallocated arenas owned by [`UringIo`]:
//! receive buffers, `msghdr`/`iovec`/sockaddr/control blocks, and
//! reusable per-slot transmit `Vec`s — the kernel reads and writes them
//! in place while ops are in flight, so the arenas are never moved or
//! reallocated while armed, and a steady-state iteration allocates
//! nothing (pinned by `tests/alloc_free_wire.rs`). The receive arena is
//! additionally registered with `IORING_REGISTER_BUFFERS`, which pins its
//! pages so the kernel skips the per-op page-table walk;
//! `RECVMSG`/`SENDMSG` cannot consume fixed-buffer indices (that is a
//! `READ_FIXED`/`WRITE_FIXED` privilege), so registration here buys page
//! pinning, not the full fixed-buffer path — it is best-effort and a
//! registration failure (e.g. a locked-memory rlimit) is ignored.
//!
//! # Shutdown polling without a syscall budget
//!
//! `SO_RCVTIMEO` does not bound asynchronous receive ops, so a quiet ring
//! would park `io_uring_enter` forever and the worker could never notice
//! the shutdown flag. Instead the transport keeps **one** relative
//! `IORING_OP_TIMEOUT` armed at all times (re-armed lazily when its
//! completion is harvested): every blocking wait is bounded by the
//! daemon's read timeout, at a cost of one extra SQE per timeout period —
//! not per iteration.
//!
//! # Degrade ladder
//!
//! [`UringIo::new`] (and the cheaper [`supported`] probe) fail cleanly
//! when the kernel lacks io_uring (`ENOSYS`), an LSM or seccomp profile
//! filters it (`EPERM`, common in container sandboxes), or the
//! `kernel.io_uring_disabled` sysctl is set. The daemon then degrades
//! `Uring → Batched` (which itself degrades to `Single` where reuseport
//! is unavailable) and reports the effective mode — see
//! [`crate::daemon`].

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, UdpSocket};

use crate::mmsg::SendOutcome;

/// Whether this kernel (and this process's sandbox) can set up an
/// io_uring at all. Cheap enough to call once per daemon spawn.
#[must_use]
pub fn supported() -> bool {
    #[cfg(target_os = "linux")]
    {
        linux::Ring::new(8).is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use std::ffi::c_void;
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    use crate::mmsg::sys::{self, IoVec, MsgHdr, SockAddrStorage};

    // asm-generic syscall numbers (shared by x86_64, aarch64, riscv64, …).
    const SYS_IO_URING_SETUP: i64 = 425;
    const SYS_IO_URING_ENTER: i64 = 426;
    const SYS_IO_URING_REGISTER: i64 = 427;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const IORING_ENTER_GETEVENTS: u32 = 1;
    const IORING_REGISTER_BUFFERS: u32 = 0;

    const OP_SENDMSG: u8 = 9;
    const OP_RECVMSG: u8 = 10;
    const OP_TIMEOUT: u8 = 11;
    const OP_ASYNC_CANCEL: u8 = 14;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 0x01;
    const MAP_POPULATE: i32 = 0x8000;

    const EINTR: i32 = 4;

    /// `struct io_sqring_offsets`.
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct SqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        resv2: u64,
    }

    /// `struct io_cqring_offsets`.
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct CqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        resv2: u64,
    }

    /// `struct io_uring_params` — in/out argument of `io_uring_setup`.
    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct Params {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqOffsets,
        cq_off: CqOffsets,
    }

    /// `struct io_uring_sqe` — one 64-byte submission entry.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        op_flags: u32,
        user_data: u64,
        buf_index: u16,
        personality: u16,
        splice_fd_in: i32,
        pad: [u64; 2],
    }

    /// `struct io_uring_cqe` — one 16-byte completion entry.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    /// `struct __kernel_timespec` for `IORING_OP_TIMEOUT`.
    #[repr(C)]
    struct KernelTimespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        /// glibc's variadic raw-syscall trampoline: io_uring has no libc
        /// wrappers, so every call goes through here.
        fn syscall(num: i64, ...) -> i64;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// One mmapped kernel region, unmapped on drop.
    struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    impl Mapping {
        fn new(fd: i32, len: usize, offset: i64) -> io::Result<Mapping> {
            // SAFETY: plain mmap of the io_uring fd region; the kernel
            // validates offset/len against the ring geometry.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE,
                    fd,
                    offset,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr: ptr.cast(), len })
        }

        /// A typed pointer `bytes` past the base.
        fn at<T>(&self, bytes: u32) -> *mut T {
            // SAFETY: callers pass kernel-reported offsets inside the map.
            unsafe { self.ptr.add(bytes as usize).cast() }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: exclusively owned mapping, unmapped exactly once.
            unsafe { munmap(self.ptr.cast(), self.len) };
        }
    }

    /// The raw ring: fd, the three mappings, and cached pointers into
    /// them. Safe to send across threads — exactly one worker owns it.
    pub(super) struct Ring {
        fd: i32,
        _sq_ring: Mapping,
        _cq_ring: Mapping,
        _sqes: Mapping,
        sq_khead: *const AtomicU32,
        sq_ktail: *const AtomicU32,
        sq_mask: u32,
        sq_entries: u32,
        sqe_base: *mut Sqe,
        cq_khead: *const AtomicU32,
        cq_ktail: *const AtomicU32,
        cq_mask: u32,
        cqe_base: *const Cqe,
        /// SQEs staged (tail advanced) but not yet passed to
        /// `io_uring_enter` as `to_submit`.
        pending: u32,
    }

    // SAFETY: the raw pointers target the ring mappings owned by this
    // struct; one thread owns and drives the ring at a time.
    unsafe impl Send for Ring {}

    impl Ring {
        pub(super) fn new(entries: u32) -> io::Result<Ring> {
            let entries = entries.next_power_of_two().clamp(8, 4096);
            let mut params = Params::default();
            // SAFETY: params outlives the call; the kernel fills it.
            let fd = unsafe {
                syscall(SYS_IO_URING_SETUP, i64::from(entries), std::ptr::addr_of_mut!(params))
            };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = fd as i32;
            let guard = FdGuard(fd);

            let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
            let sq_ring = Mapping::new(fd, sq_len, IORING_OFF_SQ_RING)?;
            let cq_len = params.cq_off.cqes as usize
                + params.cq_entries as usize * std::mem::size_of::<Cqe>();
            let cq_ring = Mapping::new(fd, cq_len, IORING_OFF_CQ_RING)?;
            let sqes = Mapping::new(
                fd,
                params.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;

            // Pre-fill the SQ indirection array with the identity map: SQE
            // slot i is always published as array entry i.
            let array: *mut u32 = sq_ring.at(params.sq_off.array);
            for i in 0..params.sq_entries {
                // SAFETY: array has sq_entries slots by construction.
                unsafe { array.add(i as usize).write(i) };
            }
            // SAFETY: the mask offsets come from the kernel for these
            // mappings; the values are constant after setup.
            let (sq_mask, cq_mask) = unsafe {
                (
                    *sq_ring.at::<u32>(params.sq_off.ring_mask),
                    *cq_ring.at::<u32>(params.cq_off.ring_mask),
                )
            };
            let ring = Ring {
                fd,
                sq_khead: sq_ring.at::<AtomicU32>(params.sq_off.head),
                sq_ktail: sq_ring.at::<AtomicU32>(params.sq_off.tail),
                sq_mask,
                sq_entries: params.sq_entries,
                sqe_base: sqes.at::<Sqe>(0),
                cq_khead: cq_ring.at::<AtomicU32>(params.cq_off.head),
                cq_ktail: cq_ring.at::<AtomicU32>(params.cq_off.tail),
                cq_mask,
                cqe_base: cq_ring.at::<Cqe>(params.cq_off.cqes),
                _sq_ring: sq_ring,
                _cq_ring: cq_ring,
                _sqes: sqes,
                pending: 0,
            };
            std::mem::forget(guard);
            Ok(ring)
        }

        /// Free SQE capacity right now (entries minus unconsumed tail).
        fn sq_room(&self) -> u32 {
            // SAFETY: ring pointers are valid for the ring's lifetime.
            let head = unsafe { (*self.sq_khead).load(Ordering::Acquire) };
            let tail = unsafe { (*self.sq_ktail).load(Ordering::Relaxed) };
            self.sq_entries - tail.wrapping_sub(head)
        }

        /// Stages one SQE: fills the next slot and publishes the new tail
        /// (the kernel only reads it at the next `enter`).
        ///
        /// # Panics
        ///
        /// Panics if the SQ ring is full — arena sizing bounds staged
        /// entries below ring capacity by construction, so a full ring is
        /// a bug, not backpressure.
        fn push(&mut self, sqe: Sqe) {
            assert!(self.sq_room() > 0, "io_uring SQ ring unexpectedly full");
            // SAFETY: tail slot is owned by userspace until published;
            // pointers are in-bounds by the ring geometry.
            unsafe {
                let tail = (*self.sq_ktail).load(Ordering::Relaxed);
                self.sqe_base.add((tail & self.sq_mask) as usize).write(sqe);
                (*self.sq_ktail).store(tail.wrapping_add(1), Ordering::Release);
            }
            self.pending += 1;
        }

        /// One `io_uring_enter`: submits everything staged since the last
        /// call and, with `wait`, blocks until at least one completion is
        /// available (bounded by the armed timeout op).
        fn enter(&mut self, wait: bool) -> io::Result<()> {
            loop {
                let flags = if wait { IORING_ENTER_GETEVENTS } else { 0 };
                let min_complete: u32 = u32::from(wait);
                // SAFETY: plain syscall on our ring fd; sig is null.
                let rc = unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        i64::from(self.fd),
                        i64::from(self.pending),
                        i64::from(min_complete),
                        i64::from(flags),
                        0i64,
                        0i64,
                    )
                };
                if rc >= 0 {
                    self.pending -= rc as u32;
                    return Ok(());
                }
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(err);
            }
        }

        /// Registers `iov` with `IORING_REGISTER_BUFFERS`, pinning its
        /// pages for the ring's lifetime.
        fn register_buffers(&self, iov: &IoVec) -> io::Result<()> {
            // SAFETY: iov outlives the call; the kernel copies it.
            let rc = unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    i64::from(self.fd),
                    i64::from(IORING_REGISTER_BUFFERS),
                    std::ptr::from_ref(iov),
                    1i64,
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Drains every available CQE through `f`.
        fn harvest(&mut self, mut f: impl FnMut(Cqe)) {
            // SAFETY: ring pointers are valid; acquire on the kernel tail
            // orders the CQE reads, release on head hands slots back.
            unsafe {
                let mut head = (*self.cq_khead).load(Ordering::Relaxed);
                let tail = (*self.cq_ktail).load(Ordering::Acquire);
                while head != tail {
                    f(*self.cqe_base.add((head & self.cq_mask) as usize));
                    head = head.wrapping_add(1);
                }
                (*self.cq_khead).store(head, Ordering::Release);
            }
        }
    }

    impl Drop for Ring {
        fn drop(&mut self) {
            // SAFETY: exclusively owned fd, closed exactly once (the
            // mappings unmap in their own drops).
            unsafe { close(self.fd) };
        }
    }

    /// Closes the ring fd on early-error paths of `Ring::new`.
    struct FdGuard(i32);

    impl Drop for FdGuard {
        fn drop(&mut self) {
            // SAFETY: the guard exclusively owns the fd until forgotten.
            unsafe { close(self.0) };
        }
    }

    /// `user_data` tags: op kind in the high bits, slot index below.
    const TAG_RECV: u64 = 1 << 48;
    const TAG_SEND: u64 = 2 << 48;
    const TAG_TIMEOUT: u64 = 3 << 48;
    const TAG_CANCEL: u64 = 4 << 48;
    const TAG_MASK: u64 = 0xFFFF_0000_0000_0000;

    /// Control-message words per receive slot (same layout rationale as
    /// the `RecvBatch` arena: `u64` words keep the cmsg walk 8-aligned).
    const CTRL_WORDS: usize = 8;

    /// The io_uring transport for one worker socket. See the
    /// [module docs](self) for ring anatomy and buffer discipline.
    pub struct UringIo {
        ring: Ring,
        socket: UdpSocket,
        batch: usize,
        max_datagram: usize,
        // Receive arena: `batch` slots, armed as RECVMSG SQEs.
        rx_bufs: Box<[u8]>,
        rx_ctrl: Box<[u64]>,
        rx_addrs: Box<[SockAddrStorage]>,
        /// Never read from Rust after construction — the msghdrs point
        /// into it and the kernel reads it per op.
        #[allow(dead_code)]
        rx_iovs: Box<[IoVec]>,
        rx_hdrs: Box<[MsgHdr]>,
        /// Datagrams harvested and not yet re-armed: (slot, len, peer).
        ready: Vec<(u32, u32, SocketAddr)>,
        // Transmit arena: `2 * batch` slots so a full round of responses
        // can stage while the previous round's sends are still in flight.
        tx_slots: Vec<Vec<u8>>,
        tx_addrs: Box<[SockAddrStorage]>,
        tx_iovs: Box<[IoVec]>,
        tx_hdrs: Box<[MsgHdr]>,
        tx_free: Vec<u32>,
        staged: Option<u32>,
        inflight_rx: u32,
        inflight_tx: u32,
        outcome: SendOutcome,
        recv_op_errors: u64,
        timeout_armed: bool,
        /// Set by `Drop`: stop re-arming receives so cancellation can
        /// converge.
        draining: bool,
        timespec: Box<KernelTimespec>,
        drops: u64,
        registered: bool,
    }

    impl UringIo {
        /// Builds a ring over `socket`, arms `batch` receive SQEs (each up
        /// to `max_datagram` bytes), and registers the receive arena.
        ///
        /// # Errors
        ///
        /// Ring setup or mmap failure — `ENOSYS`/`EPERM` here is the
        /// "kernel has no usable io_uring" signal the daemon's degrade
        /// ladder consumes; the socket rides back in the error so the
        /// caller can serve it over a fallback transport. Buffer
        /// registration failure is *not* an error (see the module docs).
        pub fn new(
            socket: UdpSocket,
            batch: usize,
            max_datagram: usize,
            read_timeout: Duration,
        ) -> Result<UringIo, (UdpSocket, io::Error)> {
            let batch = batch.clamp(1, crate::mmsg::MAX_BATCH);
            let max_datagram = max_datagram.max(1);
            // Staged between two enters: ≤ batch send SQEs + ≤ batch recv
            // re-arms + 1 timeout; in flight overall: ≤ batch recvs +
            // 2·batch sends + 1 timeout ≤ the kernel's 2× CQ sizing.
            let ring = match Ring::new(2 * batch as u32 + 2) {
                Ok(ring) => ring,
                Err(e) => return Err((socket, e)),
            };

            let mut rx_bufs = vec![0u8; batch * max_datagram].into_boxed_slice();
            let mut rx_ctrl = vec![0u64; batch * CTRL_WORDS].into_boxed_slice();
            let mut rx_addrs =
                vec![SockAddrStorage { family: 0, port_be: 0, data: [0; 24], scope_id: 0 }; batch]
                    .into_boxed_slice();
            let mut rx_iovs =
                vec![IoVec { base: std::ptr::null_mut(), len: 0 }; batch].into_boxed_slice();
            for (i, iov) in rx_iovs.iter_mut().enumerate() {
                iov.base = rx_bufs[i * max_datagram..].as_mut_ptr().cast();
                iov.len = max_datagram;
            }
            let rx_hdrs = (0..batch)
                .map(|i| MsgHdr {
                    name: std::ptr::addr_of_mut!(rx_addrs[i]).cast(),
                    namelen: sys::ADDR_LEN,
                    iov: std::ptr::addr_of_mut!(rx_iovs[i]),
                    iovlen: 1,
                    control: rx_ctrl[i * CTRL_WORDS..].as_mut_ptr().cast(),
                    controllen: CTRL_WORDS * 8,
                    flags: 0,
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();

            let tx_slots: Vec<Vec<u8>> =
                (0..2 * batch).map(|_| Vec::with_capacity(max_datagram)).collect();
            let tx_addrs =
                vec![
                    SockAddrStorage { family: 0, port_be: 0, data: [0; 24], scope_id: 0 };
                    2 * batch
                ]
                .into_boxed_slice();
            let mut tx_iovs =
                vec![IoVec { base: std::ptr::null_mut(), len: 0 }; 2 * batch].into_boxed_slice();
            let tx_hdrs = (0..2 * batch)
                .map(|i| MsgHdr {
                    name: std::ptr::null_mut(), // set per commit (v4 vs v6 length)
                    namelen: 0,
                    iov: std::ptr::addr_of_mut!(tx_iovs[i]),
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();

            let registered = ring
                .register_buffers(&IoVec { base: rx_bufs.as_mut_ptr().cast(), len: rx_bufs.len() })
                .is_ok();

            let timeout_s = read_timeout.max(Duration::from_millis(1));
            let mut io = UringIo {
                ring,
                socket,
                batch,
                max_datagram,
                rx_bufs,
                rx_ctrl,
                rx_addrs,
                rx_iovs,
                rx_hdrs,
                ready: Vec::with_capacity(batch),
                tx_slots,
                tx_addrs,
                tx_iovs,
                tx_hdrs,
                tx_free: (0..2 * batch as u32).rev().collect(),
                staged: None,
                inflight_rx: 0,
                inflight_tx: 0,
                outcome: SendOutcome::default(),
                recv_op_errors: 0,
                timeout_armed: false,
                draining: false,
                timespec: Box::new(KernelTimespec {
                    tv_sec: timeout_s.as_secs() as i64,
                    tv_nsec: i64::from(timeout_s.subsec_nanos()),
                }),
                drops: 0,
                registered,
            };
            for slot in 0..batch as u32 {
                io.arm_recv(slot);
            }
            Ok(io)
        }

        /// Whether `IORING_REGISTER_BUFFERS` accepted the receive arena.
        #[must_use]
        pub fn buffers_registered(&self) -> bool {
            self.registered
        }

        /// The socket this ring serves (control acks go out through it
        /// with a plain `send_to`, off the ring).
        #[must_use]
        pub fn socket(&self) -> &UdpSocket {
            &self.socket
        }

        /// The socket's cumulative receive-queue drop count (see
        /// [`crate::mmsg::RecvBatch::kernel_drops`]).
        #[must_use]
        pub fn kernel_drops(&self) -> u64 {
            self.drops
        }

        /// Receive-op failures re-armed and skipped so far (surfaced in
        /// `WorkerStats::recv_errors` when the worker exits).
        #[must_use]
        pub fn recv_op_errors(&self) -> u64 {
            self.recv_op_errors
        }

        /// Stages a RECVMSG SQE for `slot`, restoring the header fields
        /// the kernel shrank on the previous completion.
        fn arm_recv(&mut self, slot: u32) {
            let hdr = &mut self.rx_hdrs[slot as usize];
            hdr.namelen = sys::ADDR_LEN;
            hdr.controllen = CTRL_WORDS * 8;
            self.ring.push(Sqe {
                opcode: OP_RECVMSG,
                flags: 0,
                ioprio: 0,
                fd: self.socket.as_raw_fd(),
                off: 0,
                addr: std::ptr::from_mut(&mut self.rx_hdrs[slot as usize]) as u64,
                len: 1,
                op_flags: 0,
                user_data: TAG_RECV | u64::from(slot),
                buf_index: 0,
                personality: 0,
                splice_fd_in: 0,
                pad: [0; 2],
            });
            self.inflight_rx += 1;
        }

        /// Stages the always-armed shutdown-poll timeout op.
        fn arm_timeout(&mut self) {
            self.ring.push(Sqe {
                opcode: OP_TIMEOUT,
                flags: 0,
                ioprio: 0,
                fd: -1,
                off: 0, // pure timer: no completion-count trigger
                addr: std::ptr::from_ref(self.timespec.as_ref()) as u64,
                len: 1,
                op_flags: 0, // relative timeout
                user_data: TAG_TIMEOUT,
                buf_index: 0,
                personality: 0,
                splice_fd_in: 0,
                pad: [0; 2],
            });
            self.timeout_armed = true;
        }

        /// Drains the CQ into this transport's state: receive completions
        /// append to `ready`, send completions free their slot and tally
        /// into the pending [`SendOutcome`], timeout completions mark the
        /// poll op for re-arming.
        fn harvest(&mut self) {
            // Destructure around the closure: `ring.harvest` borrows the
            // ring mutably while the closure updates sibling fields.
            let Self {
                ring,
                ready,
                rx_addrs,
                rx_ctrl,
                rx_hdrs,
                max_datagram,
                tx_free,
                inflight_rx,
                inflight_tx,
                outcome,
                recv_op_errors,
                timeout_armed,
                drops,
                ..
            } = self;
            let mut rearm: [u32; 4] = [0; 4];
            let mut rearm_n = 0usize;
            ring.harvest(|cqe| match cqe.user_data & TAG_MASK {
                TAG_RECV => {
                    let slot = (cqe.user_data & !TAG_MASK) as u32;
                    *inflight_rx -= 1;
                    if cqe.res >= 0 {
                        let len = (cqe.res as u32).min(*max_datagram as u32);
                        let peer = sys::decode(&rx_addrs[slot as usize]);
                        let words = &rx_ctrl[slot as usize * CTRL_WORDS..];
                        // SAFETY: the slot's u64 words viewed as bytes;
                        // the kernel wrote `controllen` of them.
                        let ctrl = unsafe {
                            std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), CTRL_WORDS * 8)
                        };
                        if let Some(d) =
                            sys::cmsg_rxq_drops(ctrl, rx_hdrs[slot as usize].controllen)
                        {
                            *drops = (*drops).max(u64::from(d));
                        }
                        ready.push((slot, len, peer));
                    } else {
                        // Failed receive op (spurious kernel error): count
                        // it and queue the slot for immediate re-arming.
                        *recv_op_errors += 1;
                        if rearm_n < rearm.len() {
                            rearm[rearm_n] = slot;
                            rearm_n += 1;
                        }
                    }
                }
                TAG_SEND => {
                    let slot = (cqe.user_data & !TAG_MASK) as u32;
                    if cqe.res >= 0 {
                        outcome.sent += 1;
                    } else {
                        outcome.errors += 1;
                    }
                    tx_free.push(slot);
                    *inflight_tx -= 1;
                }
                TAG_TIMEOUT => *timeout_armed = false,
                _ => {} // cancel acks (TAG_CANCEL) need no bookkeeping
            });
            if !self.draining {
                for &slot in rearm.iter().take(rearm_n) {
                    self.arm_recv(slot);
                }
            }
        }

        /// The worker-loop wait: one `io_uring_enter` submitting
        /// everything staged since the last call (previous flush's sends
        /// and re-arms) and blocking until something completes — new
        /// datagrams, send acknowledgements, or the shutdown-poll timeout.
        /// Returns how many datagrams are ready; 0 is the idle case.
        ///
        /// # Errors
        ///
        /// The `io_uring_enter` error (`EINTR` is retried internally).
        pub fn recv(&mut self) -> io::Result<usize> {
            debug_assert!(self.ready.is_empty(), "previous round not flushed");
            if !self.timeout_armed {
                self.arm_timeout();
            }
            self.ring.enter(true)?;
            self.harvest();
            Ok(self.ready.len())
        }

        /// Datagrams harvested by the last [`recv`](Self::recv).
        #[must_use]
        pub fn len(&self) -> usize {
            self.ready.len()
        }

        /// Whether the last [`recv`](Self::recv) harvested nothing.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.ready.is_empty()
        }

        /// The `i`-th ready datagram and its sender.
        ///
        /// # Panics
        ///
        /// Panics if `i >= self.len()`.
        #[must_use]
        pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
            let (slot, len, peer) = self.ready[i];
            let start = slot as usize * self.max_datagram;
            (&self.rx_bufs[start..start + len as usize], peer)
        }

        /// The `i`-th ready datagram, its sender, and the cleared scratch
        /// buffer for its response — split-borrowed so the caller can
        /// read the query while writing the answer. Nothing is staged
        /// until [`commit`](Self::commit); an uncommitted buffer is
        /// handed out again by the next call.
        ///
        /// Returns `None` — shedding the response and counting it as a
        /// send error — in the pathological case where every transmit
        /// slot is still in flight (2·batch sends the kernel has not yet
        /// completed).
        ///
        /// # Panics
        ///
        /// Panics if `i >= self.len()`.
        pub fn parts(&mut self, i: usize) -> Option<(&[u8], SocketAddr, &mut Vec<u8>)> {
            let (slot, len, peer) = self.ready[i];
            if self.staged.is_none() {
                match self.tx_free.pop() {
                    Some(free) => self.staged = Some(free),
                    None => {
                        self.outcome.errors += 1;
                        return None;
                    }
                }
            }
            let tx_slot = self.staged.expect("staging slot reserved") as usize;
            let start = slot as usize * self.max_datagram;
            let buf = &mut self.tx_slots[tx_slot];
            buf.clear();
            Some((&self.rx_bufs[start..start + len as usize], peer, buf))
        }

        /// Commits the buffer last handed out by [`parts`](Self::parts)
        /// as a SENDMSG SQE to `peer` (submitted by the next
        /// [`recv`](Self::recv) — staging is free, the syscall is shared).
        ///
        /// # Panics
        ///
        /// Panics if no buffer is staged.
        pub fn commit(&mut self, peer: SocketAddr) {
            let slot = self.staged.take().expect("commit without a staged buffer") as usize;
            // iovec bases are re-read per commit: a slot Vec that grew
            // has a new heap pointer.
            self.tx_iovs[slot].base = self.tx_slots[slot].as_mut_ptr().cast();
            self.tx_iovs[slot].len = self.tx_slots[slot].len();
            self.tx_hdrs[slot].namelen = sys::encode(peer, &mut self.tx_addrs[slot]);
            self.tx_hdrs[slot].name = std::ptr::addr_of_mut!(self.tx_addrs[slot]).cast();
            self.ring.push(Sqe {
                opcode: OP_SENDMSG,
                flags: 0,
                ioprio: 0,
                fd: self.socket.as_raw_fd(),
                off: 0,
                addr: std::ptr::from_mut(&mut self.tx_hdrs[slot]) as u64,
                len: 1,
                op_flags: 0,
                user_data: TAG_SEND | slot as u64,
                buf_index: 0,
                personality: 0,
                splice_fd_in: 0,
                pad: [0; 2],
            });
            self.inflight_tx += 1;
        }

        /// Ends the round: re-arms every consumed receive slot (staged,
        /// not submitted — the next [`recv`](Self::recv)'s single enter
        /// carries them together with the committed sends) and returns
        /// the send outcomes harvested since the last flush.
        ///
        /// Send completions are asynchronous, so an outcome generally
        /// reports *earlier* rounds' sends; every send is accounted for
        /// across flushes plus the final [`finish`](Self::finish).
        pub fn flush(&mut self) -> SendOutcome {
            for i in 0..self.ready.len() {
                let slot = self.ready[i].0;
                self.arm_recv(slot);
            }
            self.ready.clear();
            std::mem::take(&mut self.outcome)
        }

        /// Shutdown drain: submits anything still staged and reaps until
        /// every in-flight send has completed (bounded by a few timeout
        /// periods — loopback sends complete immediately in practice).
        pub fn finish(&mut self) -> SendOutcome {
            for _ in 0..4 {
                if self.inflight_tx == 0 && self.ring.pending == 0 {
                    break;
                }
                if !self.timeout_armed {
                    self.arm_timeout();
                }
                if self.ring.enter(true).is_err() {
                    break;
                }
                self.harvest();
            }
            std::mem::take(&mut self.outcome)
        }

        /// Arena capacity in datagrams per receive round.
        #[must_use]
        pub fn capacity(&self) -> usize {
            self.batch
        }
    }

    impl Drop for UringIo {
        /// Quiesces the ring before the arenas are freed: the kernel
        /// writes receive completions into them, and closing the ring fd
        /// tears the context down *asynchronously* — dropping the boxes
        /// with receives still armed would hand the kernel freed memory.
        /// Cancel every armed receive (`IORING_OP_ASYNC_CANCEL`), then
        /// drain until nothing is in flight (bounded by a few timeout
        /// periods; each wait needs the timeout op since canceled ops
        /// complete immediately in practice).
        fn drop(&mut self) {
            self.draining = true;
            // Clear anything staged so the cancel SQEs have ring room.
            let _ = self.ring.enter(false);
            for slot in 0..self.batch as u32 {
                if self.ring.sq_room() == 0 {
                    break;
                }
                self.ring.push(Sqe {
                    opcode: OP_ASYNC_CANCEL,
                    flags: 0,
                    ioprio: 0,
                    fd: -1,
                    off: 0,
                    addr: TAG_RECV | u64::from(slot),
                    len: 0,
                    op_flags: 0,
                    user_data: TAG_CANCEL,
                    buf_index: 0,
                    personality: 0,
                    splice_fd_in: 0,
                    pad: [0; 2],
                });
            }
            for _ in 0..16 {
                if self.inflight_rx == 0 && self.inflight_tx == 0 {
                    break;
                }
                if !self.timeout_armed {
                    self.arm_timeout();
                }
                if self.ring.enter(true).is_err() {
                    break;
                }
                self.harvest();
            }
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::UringIo;

/// Stub for non-Linux targets: uninhabited, so every method is statically
/// unreachable; [`UringIo::new`] is the only constructor and always fails
/// with [`std::io::ErrorKind::Unsupported`] (the daemon degrades to the
/// batched/single transports).
#[cfg(not(target_os = "linux"))]
pub enum UringIo {}

#[cfg(not(target_os = "linux"))]
impl UringIo {
    /// Always fails off Linux; see the Linux implementation for the API.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::Unsupported`], unconditionally, with the
    /// socket riding back for the fallback transport.
    pub fn new(
        socket: UdpSocket,
        _batch: usize,
        _max_datagram: usize,
        _read_timeout: std::time::Duration,
    ) -> Result<UringIo, (UdpSocket, io::Error)> {
        Err((socket, io::Error::new(io::ErrorKind::Unsupported, "io_uring is Linux-only")))
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    pub fn recv(&mut self) -> io::Result<usize> {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    #[must_use]
    pub fn datagram(&self, _i: usize) -> (&[u8], SocketAddr) {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    pub fn parts(&mut self, _i: usize) -> Option<(&[u8], SocketAddr, &mut Vec<u8>)> {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    pub fn commit(&mut self, _peer: SocketAddr) {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    pub fn flush(&mut self) -> SendOutcome {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    pub fn finish(&mut self) -> SendOutcome {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    #[must_use]
    pub fn socket(&self) -> &UdpSocket {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    #[must_use]
    pub fn kernel_drops(&self) -> u64 {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    #[must_use]
    pub fn recv_op_errors(&self) -> u64 {
        match *self {}
    }

    /// Statically unreachable (the type is uninhabited off Linux).
    #[must_use]
    pub fn buffers_registered(&self) -> bool {
        match *self {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::time::Duration;

    fn skip_without_uring() -> bool {
        if supported() {
            return false;
        }
        eprintln!("skipping: io_uring unavailable on this kernel/sandbox");
        true
    }

    #[test]
    fn probe_is_consistent() {
        // Whatever the answer, asking twice must agree (no stateful
        // resource leaks making the second probe fail).
        assert_eq!(supported(), supported());
    }

    #[test]
    fn uring_echo_round_trip() {
        if skip_without_uring() {
            return;
        }
        let server = UdpSocket::bind("127.0.0.1:0").expect("server bind");
        let server_addr = server.local_addr().expect("addr");
        let mut io =
            UringIo::new(server, 8, 512, Duration::from_millis(50)).expect("ring over socket");

        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        client.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        for i in 0..8u8 {
            client.send_to(&[i, i ^ 0xFF, 7], server_addr).expect("send");
        }

        // Drain all 8, echo each with a transform, flush, then one more
        // recv to carry the staged sends into the kernel.
        let mut served = 0usize;
        while served < 8 {
            let n = io.recv().expect("enter");
            for i in 0..n {
                let (payload, peer, buf) = io.parts(i).expect("a free tx slot");
                for &b in payload {
                    buf.push(b.wrapping_add(1));
                }
                io.commit(peer);
            }
            served += n;
            let _ = io.flush();
        }
        let outcome = io.finish();
        assert_eq!(outcome.sent + io.flush().sent, 8, "all replies acknowledged sent");

        let mut got = 0;
        let mut buf = [0u8; 16];
        while got < 8 {
            let (n, _) = client.recv_from(&mut buf).expect("echo arrives");
            assert_eq!(n, 3);
            assert_eq!(buf[2], 8, "payload transformed by the echo");
            got += 1;
        }
    }

    #[test]
    fn idle_recv_returns_within_the_timeout() {
        if skip_without_uring() {
            return;
        }
        let server = UdpSocket::bind("127.0.0.1:0").expect("server bind");
        let mut io =
            UringIo::new(server, 4, 256, Duration::from_millis(30)).expect("ring over socket");
        let t0 = std::time::Instant::now();
        let n = io.recv().expect("enter");
        assert_eq!(n, 0, "nothing was sent");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "timeout op bounded the idle wait ({:?})",
            t0.elapsed()
        );
    }

    #[test]
    fn oversize_datagrams_truncate_to_max() {
        if skip_without_uring() {
            return;
        }
        let server = UdpSocket::bind("127.0.0.1:0").expect("server bind");
        let addr = server.local_addr().expect("addr");
        let mut io =
            UringIo::new(server, 4, 16, Duration::from_millis(50)).expect("ring over socket");
        let client = UdpSocket::bind("127.0.0.1:0").expect("client bind");
        client.send_to(&[9u8; 100], addr).expect("send");
        let mut n = 0;
        while n == 0 {
            n = io.recv().expect("enter");
        }
        assert_eq!(io.datagram(0).0, &[9u8; 16][..], "kernel-truncated to max_datagram");
    }
}
