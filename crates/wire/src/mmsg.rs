//! Batched UDP I/O: `SO_REUSEPORT` sockets and `recvmmsg`/`sendmmsg`.
//!
//! At ~100k answers/s the daemon's dominant cost is no longer the DNS
//! decision (allocation-free since the fast path landed) but the two
//! syscalls per query on one contended shared socket. This module removes
//! both overheads on Linux:
//!
//! * [`bind_reuseport`] creates a UDP socket with `SO_REUSEPORT` set
//!   *before* bind, so N workers can each bind their **own** socket to the
//!   same address and the kernel shards inbound datagrams across them by
//!   flow hash — no user-space contention, no shared wake queue;
//! * [`recv_batch`] / [`send_batch`] wrap `recvmmsg(2)` / `sendmmsg(2)`
//!   over caller-owned [`RecvBatch`] / [`SendBatch`] arenas (`mmsghdr` +
//!   `iovec` + datagram buffers, all preallocated), amortizing one syscall
//!   over up to a whole batch of datagrams with **zero steady-state
//!   allocations** (pinned by `tests/alloc_free_wire.rs`).
//!
//! The receive side uses `MSG_WAITFORONE`: the call blocks (bounded by the
//! socket's `SO_RCVTIMEO` read timeout, so shutdown-flag polling keeps
//! working) until at least one datagram arrives, then drains whatever else
//! is already queued without blocking again — exactly the right shape for
//! bursty cache-miss-driven DNS arrivals.
//!
//! # Portability
//!
//! Everything here is also compiled on non-Linux targets with the same
//! signatures, degrading to the classic one-datagram-per-syscall
//! `recv_from`/`send_to` path: [`bind_reuseport`] reports
//! [`std::io::ErrorKind::Unsupported`] (callers fall back to a shared
//! socket), [`recv_batch`] receives exactly one datagram per call and
//! [`send_batch`] loops over `send_to`. The daemon additionally exposes an
//! `IoMode` knob so the single-datagram path stays selectable on Linux for
//! debugging and differential testing.
//!
//! The syscall declarations are hand-written `extern "C"` items (this
//! workspace vendors no libc crate); layouts match the Linux 64-bit ABI
//! (`struct iovec`, `struct msghdr` with `size_t` iov/control lengths,
//! `struct mmsghdr`) used by every 64-bit Linux architecture.

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Hard upper bound on datagrams per batch (a sanity cap on arena sizing;
/// the sweet spot measured in EXPERIMENTS.md X15 is far lower).
pub const MAX_BATCH: usize = 1024;

fn clamp_batch(batch: usize) -> usize {
    batch.clamp(1, MAX_BATCH)
}

/// What one [`send_batch`] call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendOutcome {
    /// Datagrams handed to the kernel.
    pub sent: u64,
    /// Datagrams the kernel refused (counted per datagram, like a failed
    /// `send_to`; the rest of the batch is still attempted).
    pub errors: u64,
}

// ---------------------------------------------------------------------------
// Linux: real recvmmsg/sendmmsg over preallocated arenas
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub(crate) mod sys {
    use std::ffi::c_void;
    use std::io;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEPORT: i32 = 15;
    const SO_RXQ_OVFL: i32 = 40;
    const MSG_WAITFORONE: i32 = 0x10000;
    const EINTR: i32 = 4;

    /// `struct iovec` — one scatter/gather segment.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *mut c_void,
        pub len: usize,
    }

    /// `struct msghdr` (Linux 64-bit ABI: `size_t` iov/control lengths;
    /// the 4 padding bytes after `namelen` are inserted by `repr(C)`
    /// exactly as a C compiler would).
    #[repr(C)]
    pub struct MsgHdr {
        pub name: *mut c_void,
        pub namelen: u32,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut c_void,
        pub controllen: usize,
        pub flags: i32,
    }

    /// `struct mmsghdr` — a message plus the kernel's received/sent byte
    /// count for it.
    #[repr(C)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: u32,
    }

    /// `struct sockaddr_in` / `sockaddr_in6`, overlaid: big enough for
    /// either family, discriminated by the leading `family` field.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SockAddrStorage {
        pub family: u16,
        pub port_be: u16,
        /// v4: `sin_addr` + `sin_zero`. v6: `sin6_flowinfo` + `sin6_addr`.
        pub data: [u8; 24],
        /// v6 `sin6_scope_id` (beyond the v4 struct's extent).
        pub scope_id: u32,
    }

    pub const ADDR_LEN: u32 = std::mem::size_of::<SockAddrStorage>() as u32;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrStorage, len: u32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const c_void, len: u32) -> i32;
        fn close(fd: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut c_void,
        ) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    pub fn encode(addr: SocketAddr, out: &mut SockAddrStorage) -> u32 {
        *out = SockAddrStorage { family: 0, port_be: 0, data: [0; 24], scope_id: 0 };
        match addr {
            SocketAddr::V4(v4) => {
                out.family = AF_INET;
                out.port_be = v4.port().to_be();
                out.data[..4].copy_from_slice(&v4.ip().octets());
                16 // sizeof(struct sockaddr_in)
            }
            SocketAddr::V6(v6) => {
                out.family = AF_INET6;
                out.port_be = v6.port().to_be();
                out.data[..4].copy_from_slice(&v6.flowinfo().to_be_bytes());
                out.data[4..20].copy_from_slice(&v6.ip().octets());
                out.scope_id = v6.scope_id();
                28 // sizeof(struct sockaddr_in6)
            }
        }
    }

    pub fn decode(addr: &SockAddrStorage) -> SocketAddr {
        let port = u16::from_be(addr.port_be);
        if addr.family == AF_INET6 {
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&addr.data[4..20]);
            let flowinfo =
                u32::from_be_bytes([addr.data[0], addr.data[1], addr.data[2], addr.data[3]]);
            SocketAddr::V6(std::net::SocketAddrV6::new(
                Ipv6Addr::from(octets),
                port,
                flowinfo,
                addr.scope_id,
            ))
        } else {
            // Unknown families decode as the unspecified v4 peer rather
            // than panicking in the hot loop; the daemon treats it as an
            // unmapped source.
            let ip = Ipv4Addr::new(addr.data[0], addr.data[1], addr.data[2], addr.data[3]);
            SocketAddr::new(IpAddr::V4(ip), port)
        }
    }

    /// `socket() + setsockopt(SO_REUSEPORT) + bind()`, then handed to std.
    /// The option must be set *before* bind — which is why this cannot be
    /// built from `UdpSocket::bind` — and every socket sharing the
    /// address must set it, first included.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<std::net::UdpSocket> {
        let domain = match addr {
            SocketAddr::V4(_) => i32::from(AF_INET),
            SocketAddr::V6(_) => i32::from(AF_INET6),
        };
        // SAFETY: plain syscall; the returned fd is owned below.
        let fd = unsafe { socket(domain, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let guard = FdGuard(fd);
        let one: i32 = 1;
        // SAFETY: `one` outlives the call; length matches the value.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEPORT,
                std::ptr::addr_of!(one).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let mut storage = SockAddrStorage { family: 0, port_be: 0, data: [0; 24], scope_id: 0 };
        let len = encode(addr, &mut storage);
        // SAFETY: `storage` is a valid sockaddr of `len` bytes.
        let rc = unsafe { bind(fd, std::ptr::addr_of!(storage), len) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        std::mem::forget(guard);
        // SAFETY: `fd` is a freshly bound UDP socket we exclusively own.
        Ok(unsafe { std::net::UdpSocket::from_raw_fd(fd) })
    }

    /// Closes the fd on early-error paths of [`bind_reuseport`].
    struct FdGuard(RawFd);

    impl Drop for FdGuard {
        fn drop(&mut self) {
            // SAFETY: the guard exclusively owns the fd until forgotten.
            unsafe { close(self.0) };
        }
    }

    /// Asks the kernel to attach an `SO_RXQ_OVFL` control message to every
    /// received datagram: a cumulative count of datagrams this socket's
    /// receive queue has dropped since creation. The counter is how the
    /// daemon distinguishes "saturated but lossless" from silent loss.
    pub fn enable_rxq_ovfl(socket: &std::net::UdpSocket) -> io::Result<()> {
        let one: i32 = 1;
        // SAFETY: `one` outlives the call; length matches the value.
        let rc = unsafe {
            setsockopt(
                socket.as_raw_fd(),
                SOL_SOCKET,
                SO_RXQ_OVFL,
                std::ptr::addr_of!(one).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// `struct cmsghdr` (Linux 64-bit ABI: `size_t` length, then
    /// level/type, then inline data aligned to `size_t`).
    #[repr(C)]
    struct CMsgHdr {
        len: usize,
        level: i32,
        ty: i32,
    }

    /// Walks one received message's control buffer and returns the
    /// `SO_RXQ_OVFL` payload if present: the socket's cumulative receive
    /// drop count as of that datagram.
    pub fn cmsg_rxq_drops(ctrl: &[u8], controllen: usize) -> Option<u32> {
        const HDR: usize = std::mem::size_of::<CMsgHdr>();
        let mut at = 0usize;
        let end = controllen.min(ctrl.len());
        while at + HDR <= end {
            // SAFETY: bounds-checked above; repr(C) header read from the
            // kernel-filled buffer (alignment 8 holds: `at` advances in
            // CMSG_ALIGN steps from an 8-aligned arena slot).
            let hdr = unsafe { &*ctrl.as_ptr().add(at).cast::<CMsgHdr>() };
            if hdr.len < HDR || at + hdr.len > end {
                return None; // truncated control data: stop walking
            }
            if hdr.level == SOL_SOCKET && hdr.ty == SO_RXQ_OVFL && hdr.len >= HDR + 4 {
                let d = &ctrl[at + HDR..at + HDR + 4];
                return Some(u32::from_ne_bytes([d[0], d[1], d[2], d[3]]));
            }
            // CMSG_ALIGN(len): control messages are size_t-aligned.
            at += (hdr.len + 7) & !7;
        }
        None
    }

    /// One `recvmmsg` call: blocks for the first datagram (bounded by the
    /// socket's read timeout), then drains without blocking
    /// (`MSG_WAITFORONE`). Returns the datagram count.
    pub fn recvmmsg_once(socket: &std::net::UdpSocket, hdrs: &mut [MMsgHdr]) -> io::Result<usize> {
        loop {
            let n = {
                // SAFETY: every header points into arenas that outlive the
                // call (see `RecvBatch::new`), and `hdrs.len()` bounds vlen.
                unsafe {
                    recvmmsg(
                        socket.as_raw_fd(),
                        hdrs.as_mut_ptr(),
                        hdrs.len() as u32,
                        MSG_WAITFORONE,
                        std::ptr::null_mut(),
                    )
                }
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            return Err(err);
        }
    }

    /// Sends `hdrs[off..]`, retrying partial sends and skipping (counting)
    /// per-datagram failures, so every staged datagram is attempted once.
    pub fn sendmmsg_all(socket: &std::net::UdpSocket, hdrs: &mut [MMsgHdr]) -> super::SendOutcome {
        let mut outcome = super::SendOutcome::default();
        let mut off = 0usize;
        while off < hdrs.len() {
            let n = {
                let rest = &mut hdrs[off..];
                // SAFETY: same arena-lifetime argument as `recvmmsg_once`.
                unsafe { sendmmsg(socket.as_raw_fd(), rest.as_mut_ptr(), rest.len() as u32, 0) }
            };
            if n > 0 {
                outcome.sent += n as u64;
                off += n as usize;
            } else {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                // The error belongs to hdrs[off]: count it, skip it, and
                // keep trying the rest (matching per-`send_to` semantics).
                outcome.errors += 1;
                off += 1;
            }
        }
        outcome
    }
}

/// Preallocated receive arena: `batch` slots of `max_datagram` bytes plus
/// the `mmsghdr`/`iovec`/sockaddr arrays one `recvmmsg` call fills.
///
/// Construct once per worker; [`recv_batch`] reuses it forever with zero
/// allocations.
pub struct RecvBatch {
    bufs: Box<[u8]>,
    max_datagram: usize,
    lens: Box<[usize]>,
    peers: Box<[SocketAddr]>,
    count: usize,
    #[cfg(target_os = "linux")]
    addrs: Box<[sys::SockAddrStorage]>,
    /// Never read from Rust after construction — `hdrs` points into it
    /// and the kernel reads it on every `recvmmsg`; it must stay alive
    /// (and unmoved) as long as the headers do.
    #[cfg(target_os = "linux")]
    #[allow(dead_code)]
    iovs: Box<[sys::IoVec]>,
    /// Per-slot control-message buffers (`CTRL_WORDS` `u64`s each, so the
    /// kernel-read `cmsghdr` walk stays 8-aligned); carries the
    /// `SO_RXQ_OVFL` drop counter when [`enable_rxq_ovfl`] armed the
    /// socket, and stays empty (controllen 0) otherwise.
    #[cfg(target_os = "linux")]
    ctrl: Box<[u64]>,
    #[cfg(target_os = "linux")]
    hdrs: Box<[sys::MMsgHdr]>,
    /// Latest `SO_RXQ_OVFL` value observed: the socket's cumulative
    /// receive-queue drop count (0 if the option is off or unsupported).
    drops: u64,
}

/// Control buffer size per receive slot, in `u64` words (64 bytes:
/// `CMSG_SPACE(4)` for the drop counter is 24, with slack for growth).
#[cfg(target_os = "linux")]
const CTRL_WORDS: usize = 8;

impl RecvBatch {
    /// Creates an arena for up to `batch` datagrams of `max_datagram`
    /// bytes (`batch` is clamped to `1..=`[`MAX_BATCH`]).
    #[must_use]
    pub fn new(batch: usize, max_datagram: usize) -> Self {
        let batch = clamp_batch(batch);
        let max_datagram = max_datagram.max(1);
        let mut bufs = vec![0u8; batch * max_datagram].into_boxed_slice();
        let lens = vec![0usize; batch].into_boxed_slice();
        let unspecified: SocketAddr = "0.0.0.0:0".parse().expect("valid addr");
        let peers = vec![unspecified; batch].into_boxed_slice();
        #[cfg(target_os = "linux")]
        {
            let mut addrs =
                vec![
                    sys::SockAddrStorage { family: 0, port_be: 0, data: [0; 24], scope_id: 0 };
                    batch
                ]
                .into_boxed_slice();
            let mut iovs =
                vec![sys::IoVec { base: std::ptr::null_mut(), len: 0 }; batch].into_boxed_slice();
            for (i, iov) in iovs.iter_mut().enumerate() {
                iov.base = bufs[i * max_datagram..].as_mut_ptr().cast();
                iov.len = max_datagram;
            }
            let mut ctrl = vec![0u64; batch * CTRL_WORDS].into_boxed_slice();
            let hdrs = (0..batch)
                .map(|i| sys::MMsgHdr {
                    hdr: sys::MsgHdr {
                        name: std::ptr::addr_of_mut!(addrs[i]).cast(),
                        namelen: sys::ADDR_LEN,
                        iov: std::ptr::addr_of_mut!(iovs[i]),
                        iovlen: 1,
                        control: ctrl[i * CTRL_WORDS..].as_mut_ptr().cast(),
                        controllen: CTRL_WORDS * 8,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            RecvBatch {
                bufs,
                max_datagram,
                lens,
                peers,
                count: 0,
                addrs,
                iovs,
                ctrl,
                hdrs,
                drops: 0,
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            RecvBatch { bufs, max_datagram, lens, peers, count: 0, drops: 0 }
        }
    }

    /// The socket's cumulative receive-queue drop count, as of the newest
    /// datagram that carried an `SO_RXQ_OVFL` control message (requires
    /// [`enable_rxq_ovfl`] on the socket; otherwise stays 0). Cumulative
    /// since socket creation — report it, don't sum it across calls.
    #[must_use]
    pub fn kernel_drops(&self) -> u64 {
        self.drops
    }

    /// Arena capacity in datagrams.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lens.len()
    }

    /// Datagrams received by the last [`recv_batch`] call.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the last [`recv_batch`] call received nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th received datagram and its sender.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        assert!(i < self.count, "datagram {i} out of {} received", self.count);
        let start = i * self.max_datagram;
        (&self.bufs[start..start + self.lens[i]], self.peers[i])
    }
}

/// Receives a batch of datagrams into `batch`, returning how many arrived.
///
/// Linux: one `recvmmsg` call — blocks for the first datagram (bounded by
/// the socket's read timeout), then drains what is queued. Elsewhere: one
/// `recv_from`, so the count is always 1.
///
/// # Errors
///
/// Propagates the socket error; `WouldBlock`/`TimedOut` means the read
/// timeout elapsed with nothing to receive ([`RecvBatch::len`] is 0).
pub fn recv_batch(socket: &UdpSocket, batch: &mut RecvBatch) -> io::Result<usize> {
    batch.count = 0;
    #[cfg(target_os = "linux")]
    {
        for hdr in batch.hdrs.iter_mut() {
            hdr.hdr.namelen = sys::ADDR_LEN; // the kernel shrinks these per
            hdr.hdr.controllen = CTRL_WORDS * 8; // message — restore both
        }
        let n = sys::recvmmsg_once(socket, &mut batch.hdrs)?;
        for i in 0..n {
            batch.lens[i] = (batch.hdrs[i].len as usize).min(batch.max_datagram);
            batch.peers[i] = sys::decode(&batch.addrs[i]);
            let words = &batch.ctrl[i * CTRL_WORDS..(i + 1) * CTRL_WORDS];
            // SAFETY: reinterpreting the slot's u64 words as bytes; the
            // kernel wrote `controllen` of them.
            let ctrl =
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), CTRL_WORDS * 8) };
            if let Some(d) = sys::cmsg_rxq_drops(ctrl, batch.hdrs[i].hdr.controllen) {
                batch.drops = batch.drops.max(u64::from(d));
            }
        }
        batch.count = n;
        Ok(n)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let (len, peer) = socket.recv_from(&mut batch.bufs[..batch.max_datagram])?;
        batch.lens[0] = len;
        batch.peers[0] = peer;
        batch.count = 1;
        Ok(1)
    }
}

/// Preallocated transmit arena: stage up to `batch` datagrams (each in a
/// reusable per-slot buffer), then flush them with one [`send_batch`]
/// call.
///
/// Staging protocol: write the payload into [`buffer`](Self::buffer), then
/// [`commit`](Self::commit) it to a destination — or leave it uncommitted
/// to drop it (the next `buffer` call hands the same slot out again).
pub struct SendBatch {
    slots: Vec<Vec<u8>>,
    peers: Box<[SocketAddr]>,
    staged: usize,
    #[cfg(target_os = "linux")]
    addrs: Box<[sys::SockAddrStorage]>,
    #[cfg(target_os = "linux")]
    iovs: Box<[sys::IoVec]>,
    #[cfg(target_os = "linux")]
    hdrs: Box<[sys::MMsgHdr]>,
}

impl SendBatch {
    /// Creates an arena for up to `batch` staged datagrams, each slot
    /// pre-sized to `max_datagram` bytes (slots grow if a payload needs
    /// more; steady state never reallocates).
    #[must_use]
    pub fn new(batch: usize, max_datagram: usize) -> Self {
        let batch = clamp_batch(batch);
        let slots = (0..batch).map(|_| Vec::with_capacity(max_datagram)).collect();
        let unspecified: SocketAddr = "0.0.0.0:0".parse().expect("valid addr");
        let peers = vec![unspecified; batch].into_boxed_slice();
        #[cfg(target_os = "linux")]
        {
            let mut addrs =
                vec![
                    sys::SockAddrStorage { family: 0, port_be: 0, data: [0; 24], scope_id: 0 };
                    batch
                ]
                .into_boxed_slice();
            let mut iovs =
                vec![sys::IoVec { base: std::ptr::null_mut(), len: 0 }; batch].into_boxed_slice();
            let hdrs = (0..batch)
                .map(|i| sys::MMsgHdr {
                    hdr: sys::MsgHdr {
                        name: std::ptr::addr_of_mut!(addrs[i]).cast(),
                        namelen: 0, // set per flush (16 for v4, 28 for v6)
                        iov: std::ptr::addr_of_mut!(iovs[i]),
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            SendBatch { slots, peers, staged: 0, addrs, iovs, hdrs }
        }
        #[cfg(not(target_os = "linux"))]
        {
            SendBatch { slots, peers, staged: 0 }
        }
    }

    /// Arena capacity in datagrams.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Datagrams staged and committed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.staged
    }

    /// Whether nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.staged == 0
    }

    /// Whether every slot is committed (flush before staging more).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.staged == self.slots.len()
    }

    /// The scratch buffer for the next datagram, cleared. Writing it does
    /// not stage anything until [`commit`](Self::commit) is called.
    ///
    /// # Panics
    ///
    /// Panics if the batch [`is_full`](Self::is_full).
    pub fn buffer(&mut self) -> &mut Vec<u8> {
        assert!(self.staged < self.slots.len(), "send batch is full — flush first");
        let slot = &mut self.slots[self.staged];
        slot.clear();
        slot
    }

    /// Commits the buffer last handed out by [`buffer`](Self::buffer) as a
    /// datagram to `peer`.
    ///
    /// # Panics
    ///
    /// Panics if the batch [`is_full`](Self::is_full).
    pub fn commit(&mut self, peer: SocketAddr) {
        assert!(self.staged < self.slots.len(), "send batch is full — flush first");
        self.peers[self.staged] = peer;
        self.staged += 1;
    }

    /// Discards everything staged (flushing via [`send_batch`] does this
    /// automatically).
    pub fn clear(&mut self) {
        self.staged = 0;
    }
}

/// Flushes every staged datagram in `batch` and clears it.
///
/// Linux: one `sendmmsg` call (repeated only on partial sends); elsewhere
/// a `send_to` loop. Per-datagram failures are counted in
/// [`SendOutcome::errors`] and do not abort the rest of the batch.
pub fn send_batch(socket: &UdpSocket, batch: &mut SendBatch) -> SendOutcome {
    let staged = batch.staged;
    if staged == 0 {
        return SendOutcome::default();
    }
    #[cfg(target_os = "linux")]
    let outcome = {
        for i in 0..staged {
            // iovec bases are re-read per flush: a slot Vec that grew has
            // a new heap pointer.
            batch.iovs[i].base = batch.slots[i].as_mut_ptr().cast();
            batch.iovs[i].len = batch.slots[i].len();
            batch.hdrs[i].hdr.namelen = sys::encode(batch.peers[i], &mut batch.addrs[i]);
        }
        sys::sendmmsg_all(socket, &mut batch.hdrs[..staged])
    };
    #[cfg(not(target_os = "linux"))]
    let outcome = {
        let mut outcome = SendOutcome::default();
        for i in 0..staged {
            match socket.send_to(&batch.slots[i], batch.peers[i]) {
                Ok(_) => outcome.sent += 1,
                Err(_) => outcome.errors += 1,
            }
        }
        outcome
    };
    batch.staged = 0;
    outcome
}

/// Binds a UDP socket with `SO_REUSEPORT` set, so several sockets (one per
/// worker) can share `addr` and let the kernel shard inbound datagrams
/// across them.
///
/// # Errors
///
/// Any socket-setup failure, or [`std::io::ErrorKind::Unsupported`] on
/// non-Linux targets — callers degrade to one shared socket.
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
    #[cfg(target_os = "linux")]
    {
        sys::bind_reuseport(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = addr;
        Err(io::Error::new(io::ErrorKind::Unsupported, "SO_REUSEPORT batching is Linux-only"))
    }
}

/// Arms `SO_RXQ_OVFL` on the socket so every received datagram carries the
/// kernel's cumulative receive-queue drop count as a control message,
/// surfaced through [`RecvBatch::kernel_drops`]. Only the `recvmsg` family
/// can deliver control messages, so the count is observable in the batched
/// and uring io modes but not through `recv_from`.
///
/// # Errors
///
/// The `setsockopt` error, or [`std::io::ErrorKind::Unsupported`] off
/// Linux — callers treat drop accounting as best-effort.
pub fn enable_rxq_ovfl(socket: &UdpSocket) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        sys::enable_rxq_ovfl(socket)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = socket;
        Err(io::Error::new(io::ErrorKind::Unsupported, "SO_RXQ_OVFL is Linux-only"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        a.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        b.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let (aa, ba) = (a.local_addr().expect("addr"), b.local_addr().expect("addr"));
        (a, b, aa, ba)
    }

    #[test]
    fn batched_round_trip_preserves_payloads_and_peers() {
        let (a, b, a_addr, b_addr) = pair();
        let mut tx = SendBatch::new(8, 64);
        for i in 0..8u8 {
            let buf = tx.buffer();
            buf.extend_from_slice(&[i, i, i]);
            buf.push(i.wrapping_mul(7));
            tx.commit(b_addr);
        }
        assert!(tx.is_full());
        let outcome = send_batch(&a, &mut tx);
        assert_eq!(outcome, SendOutcome { sent: 8, errors: 0 });
        assert!(tx.is_empty(), "flush clears the stage");

        let mut rx = RecvBatch::new(8, 64);
        let mut got = Vec::new();
        while got.len() < 8 {
            let n = recv_batch(&b, &mut rx).expect("datagrams arrive");
            for i in 0..n {
                let (bytes, peer) = rx.datagram(i);
                assert_eq!(peer, a_addr, "sender address survives the batch");
                got.push(bytes.to_vec());
            }
        }
        let want: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, i, i, i.wrapping_mul(7)]).collect();
        assert_eq!(got, want, "payloads intact and in order");
    }

    #[test]
    fn uncommitted_buffers_are_dropped_not_sent() {
        let (a, b, _, b_addr) = pair();
        let mut tx = SendBatch::new(4, 32);
        tx.buffer().extend_from_slice(b"keep");
        tx.commit(b_addr);
        tx.buffer().extend_from_slice(b"drop"); // never committed
        let outcome = send_batch(&a, &mut tx);
        assert_eq!(outcome.sent, 1);
        let mut rx = RecvBatch::new(4, 32);
        recv_batch(&b, &mut rx).expect("one datagram");
        assert_eq!(rx.datagram(0).0, b"keep");
        // Nothing else is in flight.
        b.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
        assert!(recv_batch(&b, &mut rx).is_err(), "the uncommitted slot never left");
    }

    #[test]
    fn recv_timeout_surfaces_as_would_block() {
        let (_a, b, _, _) = pair();
        b.set_read_timeout(Some(Duration::from_millis(30))).expect("timeout");
        let mut rx = RecvBatch::new(4, 32);
        let err = recv_batch(&b, &mut rx).expect_err("nothing was sent");
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "unexpected error kind: {err}"
        );
        assert!(rx.is_empty());
    }

    #[test]
    fn oversize_datagrams_truncate_to_max() {
        let (a, b, _, b_addr) = pair();
        a.send_to(&[9u8; 100], b_addr).expect("send");
        let mut rx = RecvBatch::new(2, 16);
        recv_batch(&b, &mut rx).expect("datagram");
        assert_eq!(rx.datagram(0).0, &[9u8; 16][..], "kernel-truncated to max_datagram");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_sockets_share_one_port() {
        let first = bind_reuseport("127.0.0.1:0".parse().expect("addr")).expect("first bind");
        let addr = first.local_addr().expect("addr");
        let second = bind_reuseport(addr).expect("second bind on the same port");
        assert_eq!(second.local_addr().expect("addr").port(), addr.port());
        // A plain (non-reuseport) bind to the same port must still fail.
        assert!(UdpSocket::bind(addr).is_err(), "plain rebind should conflict");
    }

    #[test]
    fn batch_sizes_are_clamped() {
        let rx = RecvBatch::new(0, 0);
        assert_eq!(rx.capacity(), 1);
        let tx = SendBatch::new(MAX_BATCH + 5, 8);
        assert_eq!(tx.capacity(), MAX_BATCH);
    }
}
