//! Geographic latency model: a seeded per-domain×server base-RTT matrix.
//!
//! The paper's site is "geographically distributed", yet its workload
//! model carries no notion of network distance — every policy it studies
//! is proximity-blind. This module supplies the missing axis: clients of a
//! domain and servers are each placed into one of a few **regions**
//! (clusters), the base round-trip time between a domain and a server is
//! low inside a region and high across regions, and a seeded jitter term
//! decorrelates pairs so no two paths are exactly alike.
//!
//! The model is purely descriptive, like the rest of this crate: the
//! simulation world in `geodns-core` realizes it once from a dedicated
//! named RNG stream and then reads the frozen matrix. A disabled spec
//! never draws from the stream, which is what keeps latency-free runs
//! byte-identical to configurations predating this extension.

use geodns_simcore::StreamRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

fn default_regions() -> usize {
    3
}

fn default_intra_rtt_ms() -> f64 {
    15.0
}

fn default_inter_rtt_ms() -> f64 {
    120.0
}

fn default_jitter_ms() -> f64 {
    10.0
}

/// Serializable description of the seeded geography. Disabled by default;
/// an enabled spec is realized into a [`LatencyModel`] at world
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySpec {
    /// Master switch; everything below is ignored when `false`.
    #[serde(default)]
    pub enabled: bool,
    /// Number of geographic clusters domains and servers are drawn into.
    #[serde(default = "default_regions")]
    pub regions: usize,
    /// Base round-trip time within a region, milliseconds.
    #[serde(default = "default_intra_rtt_ms")]
    pub intra_rtt_ms: f64,
    /// Base round-trip time across regions, milliseconds.
    #[serde(default = "default_inter_rtt_ms")]
    pub inter_rtt_ms: f64,
    /// Uniform per-pair jitter added on top of the base, milliseconds.
    #[serde(default = "default_jitter_ms")]
    pub jitter_ms: f64,
}

impl Default for LatencySpec {
    fn default() -> Self {
        LatencySpec {
            enabled: false,
            regions: default_regions(),
            intra_rtt_ms: default_intra_rtt_ms(),
            inter_rtt_ms: default_inter_rtt_ms(),
            jitter_ms: default_jitter_ms(),
        }
    }
}

impl LatencySpec {
    /// The default geography with the master switch on.
    #[must_use]
    pub fn example_enabled() -> Self {
        LatencySpec { enabled: true, ..LatencySpec::default() }
    }

    /// Validates the parameters. A disabled block is inert whatever it
    /// contains, but garbage parameters are still rejected to catch typos
    /// early (same contract as the failure-injection knob).
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.regions == 0 {
            return Err("latency.regions must be at least 1".to_string());
        }
        for (name, v) in [
            ("latency.intra_rtt_ms", self.intra_rtt_ms),
            ("latency.inter_rtt_ms", self.inter_rtt_ms),
            ("latency.jitter_ms", self.jitter_ms),
        ] {
            if !v.is_finite() {
                return Err(format!("{name} must be finite, got {v}"));
            }
            if v < 0.0 {
                return Err(format!("{name} must be >= 0 ms, got {v}"));
            }
        }
        if self.intra_rtt_ms > self.inter_rtt_ms {
            return Err(format!(
                "latency.intra_rtt_ms ({}) must not exceed latency.inter_rtt_ms ({})",
                self.intra_rtt_ms, self.inter_rtt_ms
            ));
        }
        Ok(())
    }
}

/// The realized geography: a frozen `domains × servers` base-RTT matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    n_domains: usize,
    n_servers: usize,
    /// Row-major `[domain][server]` round-trip times, milliseconds.
    rtt_ms: Vec<f64>,
    /// Region of each domain, then of each server (kept for inspection).
    domain_region: Vec<usize>,
    server_region: Vec<usize>,
}

impl LatencyModel {
    /// Realizes `spec` for a `n_domains × n_servers` site, drawing the
    /// region placement and per-pair jitter from `rng`. Deterministic for
    /// a given `(spec, shape, stream)` triple.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid or either dimension is zero.
    #[must_use]
    pub fn generate(
        spec: &LatencySpec,
        n_domains: usize,
        n_servers: usize,
        rng: &mut StreamRng,
    ) -> Self {
        spec.validate().expect("latency spec validated before realization");
        assert!(n_domains > 0 && n_servers > 0, "degenerate site shape");
        let domain_region: Vec<usize> =
            (0..n_domains).map(|_| rng.gen_range(0..spec.regions)).collect();
        let server_region: Vec<usize> =
            (0..n_servers).map(|_| rng.gen_range(0..spec.regions)).collect();
        let mut rtt_ms = Vec::with_capacity(n_domains * n_servers);
        for &dr in &domain_region {
            for &sr in &server_region {
                let base = if dr == sr { spec.intra_rtt_ms } else { spec.inter_rtt_ms };
                rtt_ms.push(base + rng.gen::<f64>() * spec.jitter_ms);
            }
        }
        LatencyModel { n_domains, n_servers, rtt_ms, domain_region, server_region }
    }

    /// Number of domains (matrix rows).
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.n_domains
    }

    /// Number of servers (matrix columns).
    #[must_use]
    pub fn num_servers(&self) -> usize {
        self.n_servers
    }

    /// Base round-trip time between `domain` and `server`, milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn rtt_ms(&self, domain: usize, server: usize) -> f64 {
        assert!(domain < self.n_domains && server < self.n_servers, "index out of range");
        self.rtt_ms[domain * self.n_servers + server]
    }

    /// Base round-trip time between `domain` and `server`, seconds.
    #[must_use]
    pub fn rtt_s(&self, domain: usize, server: usize) -> f64 {
        self.rtt_ms(domain, server) / 1000.0
    }

    /// The server with the lowest base RTT from `domain`.
    #[must_use]
    pub fn nearest_server(&self, domain: usize) -> usize {
        (0..self.n_servers)
            .min_by(|&a, &b| self.rtt_ms(domain, a).total_cmp(&self.rtt_ms(domain, b)))
            .expect("at least one server")
    }

    /// Region of each domain.
    #[must_use]
    pub fn domain_regions(&self) -> &[usize] {
        &self.domain_region
    }

    /// Region of each server.
    #[must_use]
    pub fn server_regions(&self) -> &[usize] {
        &self.server_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodns_simcore::RngStreams;

    fn model(seed: u64) -> LatencyModel {
        let mut rng = RngStreams::new(seed).stream("latency");
        LatencyModel::generate(&LatencySpec::example_enabled(), 20, 7, &mut rng)
    }

    #[test]
    fn default_is_off_and_valid() {
        let spec = LatencySpec::default();
        assert!(!spec.enabled);
        assert!(spec.validate().is_ok());
        assert!(LatencySpec::example_enabled().enabled);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let spec = LatencySpec { regions: 0, ..LatencySpec::default() };
        assert!(spec.validate().is_err());

        let spec = LatencySpec { intra_rtt_ms: f64::NAN, ..LatencySpec::default() };
        assert!(spec.validate().unwrap_err().contains("finite"));

        let spec = LatencySpec { jitter_ms: -1.0, ..LatencySpec::default() };
        assert!(spec.validate().unwrap_err().contains(">= 0"));

        let spec = LatencySpec { intra_rtt_ms: 200.0, ..LatencySpec::default() };
        assert!(spec.validate().is_err(), "intra above inter is a typo");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        assert_eq!(model(7), model(7));
        assert_ne!(model(7), model(8));
    }

    #[test]
    fn rtts_are_in_the_configured_envelope() {
        let spec = LatencySpec::example_enabled();
        let m = model(42);
        for d in 0..m.num_domains() {
            for s in 0..m.num_servers() {
                let rtt = m.rtt_ms(d, s);
                assert!(rtt >= spec.intra_rtt_ms, "rtt {rtt} below intra base");
                assert!(rtt <= spec.inter_rtt_ms + spec.jitter_ms, "rtt {rtt} above inter+jitter");
                assert!((m.rtt_s(d, s) - rtt / 1000.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn same_region_pairs_are_closer() {
        let m = model(3);
        let spec = LatencySpec::example_enabled();
        for d in 0..m.num_domains() {
            for s in 0..m.num_servers() {
                let same = m.domain_regions()[d] == m.server_regions()[s];
                let rtt = m.rtt_ms(d, s);
                if same {
                    assert!(rtt <= spec.intra_rtt_ms + spec.jitter_ms);
                } else {
                    assert!(rtt >= spec.inter_rtt_ms);
                }
            }
        }
    }

    #[test]
    fn nearest_server_minimizes_rtt() {
        let m = model(11);
        for d in 0..m.num_domains() {
            let near = m.nearest_server(d);
            for s in 0..m.num_servers() {
                assert!(m.rtt_ms(d, near) <= m.rtt_ms(d, s));
            }
        }
    }

    #[test]
    fn spec_serde_round_trips_and_defaults() {
        let spec = LatencySpec::example_enabled();
        let json = serde_json::to_string(&spec).unwrap();
        let back: LatencySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Sparse JSON fills in the documented defaults.
        let sparse: LatencySpec = serde_json::from_str("{\"enabled\":true}").unwrap();
        assert_eq!(sparse, LatencySpec::example_enabled());
    }
}
