//! Web workload model for the `geodns` simulation.
//!
//! Reproduces the client model of the paper's §4.1:
//!
//! * a fixed population of clients (default 500) partitioned among `K`
//!   connected domains by a **pure Zipf law** — the paper's stand-in for the
//!   observed "75% of requests come from 10% of domains" skew;
//! * each client runs an endless loop of **sessions**: one address
//!   resolution, then a geometrically distributed number of page requests
//!   (mean 20), each page being a burst of `U{5..15}` hits, with exponential
//!   think time (mean 15 s) between pages;
//! * a **perturbation model** for the robustness experiments (Figures 6–7):
//!   the busiest domain's request rate is inflated by an error factor and the
//!   other domains are deflated proportionally, while schedulers keep using
//!   the unperturbed estimates;
//! * a **geographic latency model** (extension): a seeded clustered-region
//!   geography realized into a per-domain×server base-RTT matrix, giving
//!   proximity-aware policies a network-distance axis to optimize.
//!
//! The crate is purely descriptive — it owns no simulation clock. The
//! simulation world in `geodns-core` samples from the model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
mod domain;
mod ids;
mod latency;
mod perturb;
mod profile;
mod session;
mod spec;
mod trace;

pub use characterize::SkewSummary;
pub use domain::ClientPartition;
pub use ids::{ClientId, DomainId};
pub use latency::{LatencyModel, LatencySpec};
pub use perturb::perturbation_multipliers;
pub use profile::RateProfile;
pub use session::SessionModel;
pub use spec::{ClientDistribution, Workload, WorkloadSpec};
pub use trace::{Trace, TraceSession};
