//! Time-varying request-rate profiles.
//!
//! The paper's robustness discussion (§5.2) worries about "a more dynamic
//! environment where client request rates from the domains may change
//! constantly". The static perturbation of Figures 6–7 freezes one bad
//! moment; these profiles let the simulation play the whole movie — a
//! diurnal swell, a flash crowd arriving and leaving — so the measured
//! estimator's tracking ability can be exercised end to end.

use serde::{Deserialize, Serialize};

/// A time-varying multiplier on a domain's request rate.
///
/// Multipliers compose multiplicatively with the static perturbation of
/// [`WorkloadSpec::rate_error`](crate::WorkloadSpec::rate_error).
///
/// # Examples
///
/// ```
/// use geodns_workload::RateProfile;
///
/// let flash = RateProfile::FlashCrowd { domain: 0, start_s: 100.0, duration_s: 50.0, factor: 3.0 };
/// assert_eq!(flash.multiplier(0, 99.0), 1.0);
/// assert_eq!(flash.multiplier(0, 120.0), 3.0);
/// assert_eq!(flash.multiplier(0, 151.0), 1.0);
/// assert_eq!(flash.multiplier(1, 120.0), 1.0, "other domains unaffected");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RateProfile {
    /// No variation (the paper's stationary default).
    #[default]
    Constant,
    /// A sinusoidal swell shared by every domain:
    /// `1 + amplitude · sin(2π · t / period_s)`. Models the diurnal cycle
    /// of a geographically concentrated audience.
    Diurnal {
        /// Peak deviation from the mean rate, in `(0, 1)`.
        amplitude: f64,
        /// Period of the cycle, seconds.
        period_s: f64,
    },
    /// One domain's rate jumps by `factor` during `[start_s, start_s +
    /// duration_s)` — a breaking-news pile-on.
    FlashCrowd {
        /// The affected domain.
        domain: usize,
        /// When the crowd arrives (simulation seconds).
        start_s: f64,
        /// How long it stays.
        duration_s: f64,
        /// Rate multiplier while present (≥ 0; 0 silences the domain).
        factor: f64,
    },
    /// A permanent step change in one domain's rate at `at_s` — a new
    /// audience that stays.
    Step {
        /// The affected domain.
        domain: usize,
        /// When the step happens.
        at_s: f64,
        /// Rate multiplier after the step.
        factor: f64,
    },
}

impl RateProfile {
    /// The multiplier for `domain` at simulation time `t_s` seconds.
    #[must_use]
    pub fn multiplier(&self, domain: usize, t_s: f64) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { amplitude, period_s } => {
                1.0 + amplitude * (2.0 * std::f64::consts::PI * t_s / period_s).sin()
            }
            RateProfile::FlashCrowd { domain: d, start_s, duration_s, factor } => {
                if domain == d && t_s >= start_s && t_s < start_s + duration_s {
                    factor
                } else {
                    1.0
                }
            }
            RateProfile::Step { domain: d, at_s, factor } => {
                if domain == d && t_s >= at_s {
                    factor
                } else {
                    1.0
                }
            }
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range amplitudes, non-positive periods
    /// or durations, or negative factors.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            RateProfile::Constant => Ok(()),
            RateProfile::Diurnal { amplitude, period_s } => {
                if !(amplitude > 0.0 && amplitude < 1.0) {
                    return Err(format!("diurnal amplitude must be in (0,1), got {amplitude}"));
                }
                if !(period_s.is_finite() && period_s > 0.0) {
                    return Err(format!("diurnal period must be > 0, got {period_s}"));
                }
                Ok(())
            }
            RateProfile::FlashCrowd { start_s, duration_s, factor, .. } => {
                if start_s < 0.0 || !start_s.is_finite() {
                    return Err(format!("flash-crowd start must be >= 0, got {start_s}"));
                }
                if !(duration_s.is_finite() && duration_s > 0.0) {
                    return Err(format!("flash-crowd duration must be > 0, got {duration_s}"));
                }
                if !(factor.is_finite() && factor >= 0.0) {
                    return Err(format!("flash-crowd factor must be >= 0, got {factor}"));
                }
                Ok(())
            }
            RateProfile::Step { at_s, factor, .. } => {
                if at_s < 0.0 || !at_s.is_finite() {
                    return Err(format!("step time must be >= 0, got {at_s}"));
                }
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(format!("step factor must be > 0, got {factor}"));
                }
                Ok(())
            }
        }
    }

    /// Whether this profile ever deviates from 1.0.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        matches!(self, RateProfile::Constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        let p = RateProfile::Constant;
        for t in [0.0, 1e3, 1e6] {
            assert_eq!(p.multiplier(0, t), 1.0);
            assert_eq!(p.multiplier(19, t), 1.0);
        }
        assert!(p.is_constant());
    }

    #[test]
    fn diurnal_oscillates_around_one() {
        let p = RateProfile::Diurnal { amplitude: 0.5, period_s: 100.0 };
        assert!((p.multiplier(0, 0.0) - 1.0).abs() < 1e-12);
        assert!((p.multiplier(0, 25.0) - 1.5).abs() < 1e-12, "peak at quarter period");
        assert!((p.multiplier(3, 75.0) - 0.5).abs() < 1e-12, "trough at three quarters");
        // Mean over a full period is 1.
        let n = 1000;
        let mean: f64 =
            (0..n).map(|i| p.multiplier(0, 100.0 * i as f64 / n as f64)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn flash_crowd_windows_correctly() {
        let p = RateProfile::FlashCrowd { domain: 2, start_s: 10.0, duration_s: 5.0, factor: 4.0 };
        assert_eq!(p.multiplier(2, 9.999), 1.0);
        assert_eq!(p.multiplier(2, 10.0), 4.0);
        assert_eq!(p.multiplier(2, 14.999), 4.0);
        assert_eq!(p.multiplier(2, 15.0), 1.0);
        assert_eq!(p.multiplier(0, 12.0), 1.0);
        assert!(!p.is_constant());
    }

    #[test]
    fn step_is_permanent() {
        let p = RateProfile::Step { domain: 1, at_s: 50.0, factor: 0.25 };
        assert_eq!(p.multiplier(1, 49.0), 1.0);
        assert_eq!(p.multiplier(1, 50.0), 0.25);
        assert_eq!(p.multiplier(1, 1e9), 0.25);
        assert_eq!(p.multiplier(0, 1e9), 1.0);
    }

    #[test]
    fn validation() {
        assert!(RateProfile::Constant.validate().is_ok());
        assert!(RateProfile::Diurnal { amplitude: 0.3, period_s: 3600.0 }.validate().is_ok());
        assert!(RateProfile::Diurnal { amplitude: 1.5, period_s: 3600.0 }.validate().is_err());
        assert!(RateProfile::Diurnal { amplitude: 0.3, period_s: 0.0 }.validate().is_err());
        assert!(RateProfile::FlashCrowd { domain: 0, start_s: -1.0, duration_s: 5.0, factor: 2.0 }
            .validate()
            .is_err());
        assert!(RateProfile::FlashCrowd { domain: 0, start_s: 0.0, duration_s: 0.0, factor: 2.0 }
            .validate()
            .is_err());
        assert!(RateProfile::Step { domain: 0, at_s: 0.0, factor: 0.0 }.validate().is_err());
    }
}
