//! Identifier newtypes shared by the workload-facing crates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a client domain (a campus/ISP network behind one local
/// name server), `0` being the most popular domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainId(pub usize);

impl DomainId {
    /// The domain's rank index (0 = most popular under Zipf ordering).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Identifier of one simulated client (browser + its host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClientId(pub usize);

impl ClientId {
    /// The client's index within the population.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(DomainId(3).to_string(), "dom3");
        assert_eq!(DomainId(3).index(), 3);
        assert_eq!(ClientId(7).to_string(), "client7");
        assert_eq!(ClientId(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(DomainId(1) < DomainId(2));
        let set: HashSet<ClientId> = [ClientId(1), ClientId(1), ClientId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
