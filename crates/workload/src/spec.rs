//! Workload specification and the realized workload.

use serde::{Deserialize, Serialize};

use crate::{perturbation_multipliers, ClientPartition, DomainId, RateProfile, SessionModel};

/// How the client population is spread over the domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientDistribution {
    /// Pure (or generalized) Zipf with the given exponent — the paper's
    /// realistic skewed case; exponent 1.0 is the default.
    Zipf {
        /// The Zipf skew exponent (1.0 = pure Zipf).
        exponent: f64,
    },
    /// Equal share per domain — the paper's "ideal" envelope workload.
    Uniform,
    /// Explicit per-domain client counts (e.g. from a trace).
    Explicit(Vec<usize>),
}

impl Default for ClientDistribution {
    fn default() -> Self {
        ClientDistribution::Zipf { exponent: 1.0 }
    }
}

/// Declarative description of a workload; [`build`](WorkloadSpec::build)
/// realizes it into a [`Workload`].
///
/// # Examples
///
/// ```
/// use geodns_workload::WorkloadSpec;
///
/// let w = WorkloadSpec::paper_default().build().unwrap();
/// assert_eq!(w.num_clients(), 500);
/// assert_eq!(w.num_domains(), 20);
/// assert!((w.total_offered_hit_rate() - 333.3).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Total client population (paper default: 500).
    pub n_clients: usize,
    /// Number of connected domains `K` (paper default: 20).
    pub n_domains: usize,
    /// How clients are spread over domains.
    pub distribution: ClientDistribution,
    /// Session-level parameters.
    pub session: SessionModel,
    /// Worst-case estimation-error perturbation applied to the *actual*
    /// request rates (Figures 6–7); 0 disables it.
    pub rate_error: f64,
    /// Time-varying rate profile composed on top of the static
    /// perturbation (extension: the paper's "dynamic environment").
    #[serde(default)]
    pub profile: RateProfile,
}

impl WorkloadSpec {
    /// The paper's default workload: 500 clients, K = 20 domains, pure Zipf,
    /// default session model, no perturbation.
    #[must_use]
    pub fn paper_default() -> Self {
        WorkloadSpec {
            n_clients: 500,
            n_domains: 20,
            distribution: ClientDistribution::default(),
            session: SessionModel::paper_default(),
            rate_error: 0.0,
            profile: RateProfile::Constant,
        }
    }

    /// The paper's "ideal" envelope: same population, uniformly spread.
    #[must_use]
    pub fn ideal() -> Self {
        WorkloadSpec { distribution: ClientDistribution::Uniform, ..Self::paper_default() }
    }

    /// Realizes the specification.
    ///
    /// # Errors
    ///
    /// Returns a message if any parameter is invalid (empty population,
    /// impossible perturbation, bad session model, …).
    pub fn build(&self) -> Result<Workload, String> {
        self.session.validate()?;
        self.profile.validate()?;
        if let RateProfile::FlashCrowd { domain, .. } | RateProfile::Step { domain, .. } =
            self.profile
        {
            if domain >= self.n_domains {
                return Err(format!(
                    "profile targets domain {domain} but there are only {} domains",
                    self.n_domains
                ));
            }
        }
        let partition = match &self.distribution {
            ClientDistribution::Zipf { exponent } => {
                ClientPartition::zipf(self.n_clients, self.n_domains, *exponent)?
            }
            ClientDistribution::Uniform => {
                ClientPartition::uniform(self.n_clients, self.n_domains)?
            }
            ClientDistribution::Explicit(counts) => {
                if counts.len() != self.n_domains {
                    return Err(format!(
                        "explicit counts cover {} domains but n_domains = {}",
                        counts.len(),
                        self.n_domains
                    ));
                }
                let total: usize = counts.iter().sum();
                if total != self.n_clients {
                    return Err(format!(
                        "explicit counts sum to {total} but n_clients = {}",
                        self.n_clients
                    ));
                }
                ClientPartition::explicit(counts.clone())?
            }
        };

        let nominal: Vec<f64> = partition
            .counts()
            .iter()
            .map(|&c| c as f64 * self.session.mean_hit_rate_per_client())
            .collect();

        let multipliers = if self.rate_error > 0.0 {
            perturbation_multipliers(&nominal, self.rate_error)?
        } else {
            vec![1.0; partition.num_domains()]
        };

        let client_domain: Vec<DomainId> = partition.domain_map();
        debug_assert_eq!(client_domain.len(), self.n_clients);

        Ok(Workload {
            spec: self.clone(),
            partition,
            nominal_rates: nominal,
            rate_multipliers: multipliers,
            client_domain,
        })
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A realized workload: the client→domain map, nominal per-domain hit rates
/// (what an oracle estimator knows) and actual rate multipliers (what the
/// clients really do).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    spec: WorkloadSpec,
    partition: ClientPartition,
    nominal_rates: Vec<f64>,
    rate_multipliers: Vec<f64>,
    client_domain: Vec<DomainId>,
}

impl Workload {
    /// The specification this workload was built from.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The session model (shared by all clients).
    #[must_use]
    pub fn session(&self) -> &SessionModel {
        &self.spec.session
    }

    /// The client partition over domains.
    #[must_use]
    pub fn partition(&self) -> &ClientPartition {
        &self.partition
    }

    /// Total number of clients.
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.client_domain.len()
    }

    /// Number of domains `K`.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.partition.num_domains()
    }

    /// The domain client `c` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn domain_of_client(&self, c: usize) -> DomainId {
        self.client_domain[c]
    }

    /// The *nominal* per-domain offered hit rates (hits/s) — what a perfect
    /// estimator with unperturbed knowledge reports. These are the paper's
    /// hidden load weights up to a common factor.
    #[must_use]
    pub fn nominal_rates(&self) -> &[f64] {
        &self.nominal_rates
    }

    /// The actual rate multiplier of each domain (1.0 unless the workload
    /// is perturbed).
    #[must_use]
    pub fn rate_multipliers(&self) -> &[f64] {
        &self.rate_multipliers
    }

    /// The actual per-domain offered hit rates (nominal × multiplier).
    #[must_use]
    pub fn actual_rates(&self) -> Vec<f64> {
        self.nominal_rates.iter().zip(&self.rate_multipliers).map(|(r, m)| r * m).collect()
    }

    /// Total offered hit rate across all domains (hits/s). Invariant under
    /// perturbation.
    #[must_use]
    pub fn total_offered_hit_rate(&self) -> f64 {
        self.actual_rates().iter().sum()
    }

    /// The rate multiplier for one client (that of its domain).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn client_rate_multiplier(&self, c: usize) -> f64 {
        self.rate_multipliers[self.client_domain[c].index()]
    }

    /// The *instantaneous* rate multiplier for one client at simulation
    /// time `t_s`: the static perturbation composed with the time-varying
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn client_rate_multiplier_at(&self, c: usize, t_s: f64) -> f64 {
        let domain = self.client_domain[c].index();
        self.rate_multipliers[domain] * self.spec.profile.multiplier(domain, t_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_paper_default() {
        let w = WorkloadSpec::paper_default().build().unwrap();
        assert_eq!(w.num_clients(), 500);
        assert_eq!(w.num_domains(), 20);
        assert_eq!(w.rate_multipliers(), &[1.0; 20][..]);
        assert_eq!(w.partition().total_clients(), 500);
    }

    #[test]
    fn ideal_is_uniform() {
        let w = WorkloadSpec::ideal().build().unwrap();
        let rates = w.nominal_rates();
        for r in rates {
            assert!((r - rates[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn client_domain_map_consistent_with_partition() {
        let w = WorkloadSpec::paper_default().build().unwrap();
        let mut counts = vec![0usize; w.num_domains()];
        for c in 0..w.num_clients() {
            counts[w.domain_of_client(c).index()] += 1;
        }
        assert_eq!(counts, w.partition().counts());
    }

    #[test]
    fn perturbation_conserves_total_rate() {
        let mut spec = WorkloadSpec::paper_default();
        let unperturbed = spec.build().unwrap().total_offered_hit_rate();
        spec.rate_error = 0.3;
        let w = spec.build().unwrap();
        assert!((w.total_offered_hit_rate() - unperturbed).abs() < 1e-9);
        assert!(w.rate_multipliers()[0] > 1.0);
        assert!(w.client_rate_multiplier(0) > 1.0, "client 0 is in the busiest domain");
    }

    #[test]
    fn nominal_rates_ignore_perturbation() {
        let mut spec = WorkloadSpec::paper_default();
        spec.rate_error = 0.3;
        let perturbed = spec.build().unwrap();
        spec.rate_error = 0.0;
        let clean = spec.build().unwrap();
        assert_eq!(perturbed.nominal_rates(), clean.nominal_rates());
    }

    #[test]
    fn explicit_counts_validated() {
        let mut spec = WorkloadSpec::paper_default();
        spec.distribution = ClientDistribution::Explicit(vec![100; 5]);
        assert!(spec.build().is_err(), "domain count mismatch");
        spec.n_domains = 5;
        spec.n_clients = 499;
        assert!(spec.build().is_err(), "client total mismatch");
        spec.n_clients = 500;
        assert!(spec.build().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let spec = WorkloadSpec::paper_default();
        let json = serde_json_roundtrip(&spec);
        assert_eq!(json, spec);
    }

    fn serde_json_roundtrip(spec: &WorkloadSpec) -> WorkloadSpec {
        // serde_json is not a dependency of this crate; round-trip through
        // the serde test in geodns-core instead. Here we only exercise the
        // Serialize impl compiles by cloning.
        spec.clone()
    }
}
