//! Workload skew characterization.

use serde::{Deserialize, Serialize};

/// Summary statistics of how skewed a per-domain load vector is — used to
/// sanity-check generated workloads against the paper's motivating
/// observation that "in average 75% of the client requests come from only
/// 10% of the domains".
///
/// # Examples
///
/// ```
/// use geodns_workload::{SkewSummary, WorkloadSpec};
///
/// let w = WorkloadSpec::paper_default().build().unwrap();
/// let s = SkewSummary::from_rates(w.nominal_rates());
/// assert!(s.top_share(0.10) > 0.25, "top 10% of domains dominate");
/// assert!(s.gini > 0.3, "pure Zipf over 20 domains is quite unequal");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewSummary {
    /// Per-domain load shares, sorted descending, summing to 1.
    pub sorted_shares: Vec<f64>,
    /// Gini coefficient of the load vector (0 = equal, →1 = concentrated).
    pub gini: f64,
}

impl SkewSummary {
    /// Characterizes a per-domain rate (or count) vector.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or sums to zero.
    #[must_use]
    pub fn from_rates(rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "need at least one domain");
        let total: f64 = rates.iter().sum();
        assert!(total > 0.0, "rates must not all be zero");
        let mut shares: Vec<f64> = rates.iter().map(|r| r / total).collect();
        shares.sort_by(|a, b| b.total_cmp(a));

        // Gini via the sorted-share formula on the ascending ordering.
        let n = shares.len() as f64;
        let mut asc = shares.clone();
        asc.reverse();
        let weighted: f64 = asc.iter().enumerate().map(|(i, s)| (i as f64 + 1.0) * s).sum();
        let gini = ((2.0 * weighted) / n - (n + 1.0) / n).max(0.0);

        SkewSummary { sorted_shares: shares, gini }
    }

    /// The fraction of total load carried by the busiest `frac` of domains
    /// (e.g. `top_share(0.10)` = share of the top 10%).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `(0, 1]`.
    #[must_use]
    pub fn top_share(&self, frac: f64) -> f64 {
        assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0,1], got {frac}");
        let k = ((self.sorted_shares.len() as f64 * frac).ceil() as usize).max(1);
        self.sorted_shares.iter().take(k).sum()
    }

    /// Number of domains.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.sorted_shares.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_zero_gini() {
        let s = SkewSummary::from_rates(&[1.0; 10]);
        assert!(s.gini.abs() < 1e-12);
        assert!((s.top_share(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concentration_raises_gini() {
        let flat = SkewSummary::from_rates(&[1.0; 10]);
        let skewed = SkewSummary::from_rates(&[100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(skewed.gini > flat.gini);
        assert!(skewed.top_share(0.1) > 0.9);
    }

    #[test]
    fn shares_sorted_and_normalized() {
        let s = SkewSummary::from_rates(&[3.0, 1.0, 2.0]);
        assert_eq!(s.num_domains(), 3);
        assert!(s.sorted_shares.windows(2).all(|w| w[0] >= w[1]));
        assert!((s.sorted_shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_share_of_everything_is_one() {
        let s = SkewSummary::from_rates(&[5.0, 4.0, 3.0]);
        assert!((s.top_share(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn empty_rejected() {
        let _ = SkewSummary::from_rates(&[]);
    }
}
