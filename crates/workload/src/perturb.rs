//! Request-rate perturbation for the estimation-error experiments.

/// Computes per-domain request-rate multipliers realizing the paper's
/// worst-case estimation error (Figures 6–7):
///
/// > "For the case of a e% error, the request rate of the busiest domain is
/// > increased by e% and the request rates of the other domains are
/// > proportionally decreased to maintain the same total request rate."
///
/// `shares` are the nominal per-domain load shares (client population
/// shares); `error` is the fractional error, e.g. `0.30` for 30%. Returns a
/// multiplier `m_j` per domain such that the *actual* rate of domain `j`
/// becomes `m_j ×` nominal, with `Σ share_j · m_j = 1` (total conserved).
///
/// # Examples
///
/// ```
/// use geodns_workload::perturbation_multipliers;
///
/// let shares = [0.5, 0.3, 0.2];
/// let m = perturbation_multipliers(&shares, 0.2).unwrap();
/// assert!((m[0] - 1.2).abs() < 1e-12, "busiest inflated by 20%");
/// let total: f64 = shares.iter().zip(&m).map(|(s, m)| s * m).sum();
/// assert!((total - 1.0).abs() < 1e-12, "total rate conserved");
/// ```
///
/// # Errors
///
/// Returns an error if `shares` is empty, contains non-positive entries,
/// `error` is negative/non-finite, or the error is so large the remaining
/// domains would need negative rates.
pub fn perturbation_multipliers(shares: &[f64], error: f64) -> Result<Vec<f64>, String> {
    if shares.is_empty() {
        return Err("need at least one domain share".into());
    }
    if shares.iter().any(|&s| !s.is_finite() || s <= 0.0) {
        return Err("shares must be finite and positive".into());
    }
    if !error.is_finite() || error < 0.0 {
        return Err(format!("error must be finite and >= 0, got {error}"));
    }
    let total: f64 = shares.iter().sum();
    let busiest = shares
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .expect("non-empty");

    if shares.len() == 1 {
        // A single domain cannot be skewed while conserving the total.
        return Ok(vec![1.0]);
    }

    let s1 = shares[busiest] / total;
    let rest = 1.0 - s1;
    let taken = s1 * error;
    if taken >= rest {
        return Err(format!(
            "error {error} would drive the non-busiest domains below zero (busiest share {s1:.3})"
        ));
    }
    let shrink = 1.0 - taken / rest;
    Ok(shares
        .iter()
        .enumerate()
        .map(|(j, _)| if j == busiest { 1.0 + error } else { shrink })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_is_identity() {
        let m = perturbation_multipliers(&[0.6, 0.4], 0.0).unwrap();
        assert_eq!(m, vec![1.0, 1.0]);
    }

    #[test]
    fn conserves_total_rate() {
        let shares = [0.4, 0.25, 0.2, 0.1, 0.05];
        for e in [0.1, 0.3, 0.5, 1.0] {
            let m = perturbation_multipliers(&shares, e).unwrap();
            let total: f64 = shares.iter().zip(&m).map(|(s, m)| s * m).sum();
            assert!((total - 1.0).abs() < 1e-12, "error {e}: total {total}");
        }
    }

    #[test]
    fn increases_skew() {
        let shares = [0.4, 0.3, 0.3];
        let m = perturbation_multipliers(&shares, 0.25).unwrap();
        assert!(m[0] > 1.0);
        assert!(m[1] < 1.0 && m[2] < 1.0);
        assert_eq!(m[1], m[2], "non-busiest shrink proportionally");
    }

    #[test]
    fn unnormalized_shares_accepted() {
        let counts = [139.0, 70.0, 46.0];
        let m = perturbation_multipliers(&counts, 0.2).unwrap();
        assert!((m[0] - 1.2).abs() < 1e-12);
        let before: f64 = counts.iter().sum();
        let after: f64 = counts.iter().zip(&m).map(|(c, m)| c * m).sum();
        assert!((after - before).abs() < 1e-9);
    }

    #[test]
    fn single_domain_is_noop() {
        assert_eq!(perturbation_multipliers(&[1.0], 0.5).unwrap(), vec![1.0]);
    }

    #[test]
    fn rejects_impossible_errors() {
        // Busiest holds 90%: a 20% inflation needs 0.18 from the other 0.10.
        assert!(perturbation_multipliers(&[0.9, 0.1], 0.2).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(perturbation_multipliers(&[], 0.1).is_err());
        assert!(perturbation_multipliers(&[0.0, 1.0], 0.1).is_err());
        assert!(perturbation_multipliers(&[0.5, 0.5], -0.1).is_err());
        assert!(perturbation_multipliers(&[0.5, 0.5], f64::NAN).is_err());
    }
}
