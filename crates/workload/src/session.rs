//! The client session model (paper §4.1).

use geodns_simcore::dist::{DiscreteUniform, Distribution, Exponential, Geometric};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samplers for the three session-level random quantities of the paper's
/// client model: pages per session, hits per page, and think time between
/// pages.
///
/// Defaults are the paper's: mean 20 pages/session, `U{5..15}` hits/page,
/// exponential think time with mean 15 s.
///
/// # Examples
///
/// ```
/// use geodns_workload::SessionModel;
/// use geodns_simcore::RngStreams;
///
/// let m = SessionModel::paper_default();
/// let mut rng = RngStreams::new(1).stream("session");
/// assert!(m.sample_pages(&mut rng) >= 1);
/// assert!((5..=15).contains(&m.sample_hits(&mut rng)));
/// assert!(m.sample_think(&mut rng) >= 0.0);
/// assert!((m.mean_hit_rate_per_client() - 10.0 / 15.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// Mean number of page requests per session (geometric, min 1).
    pub pages_mean: f64,
    /// Minimum hits per page (inclusive).
    pub hits_lo: u64,
    /// Maximum hits per page (inclusive).
    pub hits_hi: u64,
    /// Mean think time between page requests, seconds (exponential).
    pub think_mean_s: f64,
}

impl SessionModel {
    /// The paper's default session parameters.
    #[must_use]
    pub fn paper_default() -> Self {
        SessionModel { pages_mean: 20.0, hits_lo: 5, hits_hi: 15, think_mean_s: 15.0 }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if any parameter is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.pages_mean.is_finite() && self.pages_mean >= 1.0) {
            return Err(format!("pages_mean must be >= 1, got {}", self.pages_mean));
        }
        if self.hits_lo == 0 || self.hits_lo > self.hits_hi {
            return Err(format!(
                "hits range must satisfy 1 <= lo <= hi, got {}..={}",
                self.hits_lo, self.hits_hi
            ));
        }
        if !(self.think_mean_s.is_finite() && self.think_mean_s > 0.0) {
            return Err(format!("think_mean_s must be > 0, got {}", self.think_mean_s));
        }
        Ok(())
    }

    /// Draws the number of page requests for a new session.
    pub fn sample_pages<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        Geometric::with_mean(self.pages_mean).expect("validated pages_mean").sample(rng)
    }

    /// Draws the number of hits (HTML page + embedded objects) for a page.
    pub fn sample_hits<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        DiscreteUniform::new(self.hits_lo, self.hits_hi).expect("validated hits range").sample(rng)
    }

    /// Draws one think time, in seconds.
    pub fn sample_think<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Exponential::with_mean(self.think_mean_s).sample(rng)
    }

    /// Draws a think time whose mean is scaled by `rate_multiplier` (used by
    /// the perturbation model: a domain sped up by 1.3× thinks 1/1.3 as
    /// long).
    ///
    /// # Panics
    ///
    /// Panics if `rate_multiplier` is not finite and positive.
    pub fn sample_think_scaled<R: Rng + ?Sized>(&self, rng: &mut R, rate_multiplier: f64) -> f64 {
        assert!(
            rate_multiplier.is_finite() && rate_multiplier > 0.0,
            "rate multiplier must be positive, got {rate_multiplier}"
        );
        Exponential::with_mean(self.think_mean_s / rate_multiplier).sample(rng)
    }

    /// Mean hits per page.
    #[must_use]
    pub fn mean_hits_per_page(&self) -> f64 {
        0.5 * (self.hits_lo as f64 + self.hits_hi as f64)
    }

    /// The long-run hit rate one client offers in the closed loop, ignoring
    /// response times: one page burst per think period.
    #[must_use]
    pub fn mean_hit_rate_per_client(&self) -> f64 {
        self.mean_hits_per_page() / self.think_mean_s
    }
}

impl Default for SessionModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodns_simcore::RngStreams;

    #[test]
    fn paper_default_offers_two_thirds_of_500() {
        // 500 clients at the default session model offer ≈333 hits/s, i.e.
        // 2/3 of the paper's 500 hits/s site capacity.
        let m = SessionModel::paper_default();
        let offered = 500.0 * m.mean_hit_rate_per_client();
        assert!((offered - 333.33).abs() < 0.5, "offered = {offered}");
    }

    #[test]
    fn samples_respect_ranges() {
        let m = SessionModel::paper_default();
        let mut rng = RngStreams::new(2).stream("sm");
        for _ in 0..5000 {
            assert!(m.sample_pages(&mut rng) >= 1);
            let h = m.sample_hits(&mut rng);
            assert!((5..=15).contains(&h));
            assert!(m.sample_think(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn mean_pages_matches() {
        let m = SessionModel::paper_default();
        let mut rng = RngStreams::new(3).stream("pg");
        let n = 100_000;
        let total: u64 = (0..n).map(|_| m.sample_pages(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 20.0).abs() / 20.0 < 0.02, "mean pages {mean}");
    }

    #[test]
    fn scaled_think_changes_rate() {
        let m = SessionModel::paper_default();
        let mut rng = RngStreams::new(4).stream("sc");
        let n = 50_000;
        let fast: f64 =
            (0..n).map(|_| m.sample_think_scaled(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((fast - 7.5).abs() < 0.2, "2x rate halves the mean think, got {fast}");
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut m = SessionModel::paper_default();
        m.pages_mean = 0.5;
        assert!(m.validate().is_err());
        let mut m = SessionModel::paper_default();
        m.hits_lo = 0;
        assert!(m.validate().is_err());
        let mut m = SessionModel::paper_default();
        m.hits_lo = 10;
        m.hits_hi = 5;
        assert!(m.validate().is_err());
        let mut m = SessionModel::paper_default();
        m.think_mean_s = 0.0;
        assert!(m.validate().is_err());
        assert!(SessionModel::paper_default().validate().is_ok());
    }
}
