//! Session-trace recording and replay.
//!
//! A *trace* is the fully materialized randomness of a workload: for every
//! session, which client started it, when, how many pages it fetched, how
//! many hits each page carried, and the think times between pages. Freezing
//! a trace lets two scheduling algorithms be compared on the *identical*
//! request stream — stronger than common random numbers — and lets
//! measured or synthetic traces from outside the generator drive the
//! model. Traces serialize to a simple line-oriented text format, one
//! session per line:
//!
//! ```text
//! client start_s hits1,hits2,… think1,think2,…
//! ```

use geodns_simcore::{RngStreams, SimTime};
use serde::{Deserialize, Serialize};

use crate::Workload;

/// One recorded session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSession {
    /// The client that ran the session.
    pub client: usize,
    /// Session start, seconds.
    pub start_s: f64,
    /// Hits per page, one entry per page (length = page count).
    pub hits: Vec<u64>,
    /// Think time after each page, seconds (same length as `hits`).
    pub thinks: Vec<f64>,
}

impl TraceSession {
    /// Total hits of the session.
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when lengths mismatch or values are out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.hits.is_empty() {
            return Err("session must fetch at least one page".into());
        }
        if self.hits.len() != self.thinks.len() {
            return Err(format!("{} pages but {} think times", self.hits.len(), self.thinks.len()));
        }
        if self.hits.contains(&0) {
            return Err("every page carries at least one hit".into());
        }
        if !(self.start_s.is_finite() && self.start_s >= 0.0) {
            return Err(format!("bad start time {}", self.start_s));
        }
        if self.thinks.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err("think times must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// A recorded workload trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The sessions, in non-decreasing start order.
    pub sessions: Vec<TraceSession>,
}

impl Trace {
    /// Generates a trace from a workload over `[0, horizon_s)`: each
    /// client's sessions are laid out back-to-back exactly as the live
    /// generator would (zero service time assumed — replaying through the
    /// simulator reintroduces queueing).
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` is not positive.
    #[must_use]
    pub fn generate(workload: &Workload, horizon_s: f64, seed: u64) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        let streams = RngStreams::new(seed);
        let session = workload.session();
        let mut sessions = Vec::new();

        for client in 0..workload.num_clients() {
            let mut rng = streams.stream_indexed("trace-client", client as u64);
            let mut t = 0.0;
            while t < horizon_s {
                let pages = session.sample_pages(&mut rng) as usize;
                let mut hits = Vec::with_capacity(pages);
                let mut thinks = Vec::with_capacity(pages);
                let mut span = 0.0;
                for _ in 0..pages {
                    hits.push(session.sample_hits(&mut rng));
                    let mult = workload.client_rate_multiplier_at(client, t + span);
                    let think = session.sample_think_scaled(&mut rng, mult);
                    thinks.push(think);
                    span += think;
                }
                sessions.push(TraceSession { client, start_s: t, hits, thinks });
                t += span;
                if span <= 0.0 {
                    break; // degenerate: avoid an infinite loop
                }
            }
        }
        sessions.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        Trace { sessions }
    }

    /// Number of sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Total hits across all sessions.
    #[must_use]
    pub fn total_hits(&self) -> u64 {
        self.sessions.iter().map(TraceSession::total_hits).sum()
    }

    /// The time of the last session start, or zero when empty.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.sessions.last().map(|s| s.start_s).unwrap_or(0.0))
    }

    /// Validates every session and the global start ordering.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.sessions.iter().enumerate() {
            s.validate().map_err(|e| format!("session {i}: {e}"))?;
        }
        if self.sessions.windows(2).any(|w| w[1].start_s < w[0].start_s) {
            return Err("sessions must be sorted by start time".into());
        }
        Ok(())
    }

    /// Serializes to the line format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sessions {
            let hits = s.hits.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            let thinks = s.thinks.iter().map(|t| format!("{t:.6}")).collect::<Vec<_>>().join(",");
            out.push_str(&format!("{} {:.6} {} {}\n", s.client, s.start_s, hits, thinks));
        }
        out
    }

    /// Parses the line format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut sessions = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what}", lineno + 1);
            let client: usize = parts
                .next()
                .ok_or_else(|| err("missing client"))?
                .parse()
                .map_err(|_| err("bad client"))?;
            let start_s: f64 = parts
                .next()
                .ok_or_else(|| err("missing start"))?
                .parse()
                .map_err(|_| err("bad start"))?;
            let hits: Vec<u64> = parts
                .next()
                .ok_or_else(|| err("missing hits"))?
                .split(',')
                .map(|h| h.parse().map_err(|_| err("bad hit count")))
                .collect::<Result<_, _>>()?;
            let thinks: Vec<f64> = parts
                .next()
                .ok_or_else(|| err("missing thinks"))?
                .split(',')
                .map(|t| t.parse().map_err(|_| err("bad think time")))
                .collect::<Result<_, _>>()?;
            let session = TraceSession { client, start_s, hits, thinks };
            session.validate().map_err(|e| err(&e))?;
            sessions.push(session);
        }
        let trace = Trace { sessions };
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    fn small_workload() -> Workload {
        let mut spec = WorkloadSpec::paper_default();
        spec.n_clients = 20;
        spec.n_domains = 4;
        spec.build().unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let w = small_workload();
        let a = Trace::generate(&w, 600.0, 7);
        let b = Trace::generate(&w, 600.0, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.validate().is_ok());
    }

    #[test]
    fn different_seeds_differ() {
        let w = small_workload();
        let a = Trace::generate(&w, 600.0, 7);
        let b = Trace::generate(&w, 600.0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn every_client_appears() {
        let w = small_workload();
        let trace = Trace::generate(&w, 600.0, 1);
        let mut seen = vec![false; w.num_clients()];
        for s in &trace.sessions {
            seen[s.client] = true;
        }
        assert!(seen.iter().all(|&s| s), "600 s is ≥ one session per client");
    }

    #[test]
    fn hit_volume_matches_offered_load() {
        let w = small_workload();
        let horizon = 3000.0;
        let trace = Trace::generate(&w, horizon, 3);
        // 20 clients × 10 hits / 15 s ≈ 13.3 hits/s over the horizon.
        // Sessions that *start* before the horizon may extend past it, so
        // the trace overshoots slightly; accept a generous band.
        let rate = trace.total_hits() as f64 / horizon;
        assert!((10.0..20.0).contains(&rate), "hit rate {rate}");
    }

    #[test]
    fn text_round_trip() {
        let w = small_workload();
        let trace = Trace::generate(&w, 300.0, 5);
        let text = trace.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.sessions.iter().zip(&back.sessions) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.hits, b.hits);
            assert!((a.start_s - b.start_s).abs() < 1e-5);
        }
    }

    #[test]
    fn text_format_tolerates_comments_and_blanks() {
        let text = "# a comment\n\n0 0.0 5,6 1.0,2.0\n";
        let trace = Trace::from_text(text).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.sessions[0].total_hits(), 11);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Trace::from_text("0 0.0 5,6").is_err(), "missing thinks");
        assert!(Trace::from_text("x 0.0 5 1.0").is_err(), "bad client");
        assert!(Trace::from_text("0 0.0 5,0 1.0,1.0").is_err(), "zero-hit page");
        assert!(Trace::from_text("0 0.0 5 1.0,2.0").is_err(), "length mismatch");
    }

    #[test]
    fn unsorted_traces_rejected() {
        let text = "0 10.0 5 1.0\n0 5.0 5 1.0\n";
        assert!(Trace::from_text(text).is_err());
    }
}
