//! Partitioning the client population among domains.

use geodns_simcore::dist::Zipf;
use serde::{Deserialize, Serialize};

use crate::DomainId;

/// An assignment of a client population to `K` domains.
///
/// The paper assumes "clients are partitioned among the K domains on a pure
/// Zipf's distribution basis": domain `i` (0-indexed) holds a share of
/// clients proportional to `1/(i+1)`. Counts are integral, produced by the
/// largest-remainder method so the total is conserved exactly.
///
/// # Examples
///
/// ```
/// use geodns_workload::ClientPartition;
///
/// let p = ClientPartition::zipf(500, 20, 1.0).unwrap();
/// assert_eq!(p.total_clients(), 500);
/// assert_eq!(p.num_domains(), 20);
/// assert!(p.count(0) > p.count(19), "rank 0 is the most populous");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientPartition {
    counts: Vec<usize>,
}

impl ClientPartition {
    /// Partitions `n_clients` among `n_domains` proportionally to a Zipf law
    /// with the given exponent (exponent 0 = uniform).
    ///
    /// Construction is O(clients + domains): shares come straight from the
    /// closed-form Zipf weights — same values, to the bit, as
    /// [`Zipf::prob`](geodns_simcore::dist::Zipf::prob) — without building
    /// the sampler's alias table, so a 10k-domain partition materializes
    /// instantly.
    ///
    /// # Errors
    ///
    /// Returns an error if either count is zero, there are fewer clients
    /// than domains, or the exponent is invalid.
    pub fn zipf(n_clients: usize, n_domains: usize, exponent: f64) -> Result<Self, String> {
        if n_clients == 0 || n_domains == 0 {
            return Err("need at least one client and one domain".into());
        }
        if n_clients < n_domains {
            return Err(format!("{n_clients} clients cannot populate {n_domains} domains"));
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(format!("zipf exponent must be finite and >= 0, got {exponent}"));
        }
        // `w / total` with `total = Σ w` in rank order is exactly how the
        // alias samplers normalize, so these shares match `Zipf::prob`
        // bit for bit (pinned by test) while skipping the table build.
        let weights = Zipf::weights(n_domains, exponent);
        let total: f64 = weights.iter().sum();
        let shares: Vec<f64> = weights.iter().map(|w| w / total).collect();
        Ok(Self::largest_remainder(n_clients, &shares))
    }

    /// Partitions `n_clients` equally (the paper's "ideal" envelope
    /// workload).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientPartition::zipf`].
    pub fn uniform(n_clients: usize, n_domains: usize) -> Result<Self, String> {
        Self::zipf(n_clients, n_domains, 0.0)
    }

    /// Builds a partition from explicit per-domain counts.
    ///
    /// # Errors
    ///
    /// Returns an error if `counts` is empty or all zero.
    pub fn explicit(counts: Vec<usize>) -> Result<Self, String> {
        if counts.is_empty() {
            return Err("explicit partition needs at least one domain".into());
        }
        if counts.iter().all(|&c| c == 0) {
            return Err("explicit partition must hold at least one client".into());
        }
        Ok(ClientPartition { counts })
    }

    /// Apportions `total` units over fractional `shares` with the
    /// largest-remainder (Hamilton) method, guaranteeing every domain at
    /// least one client when `total >= shares.len()`.
    fn largest_remainder(total: usize, shares: &[f64]) -> Self {
        let n = shares.len();
        let sum: f64 = shares.iter().sum();
        let ideal: Vec<f64> = shares.iter().map(|s| s / sum * total as f64).collect();
        let mut counts: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();

        // Guarantee one client per domain before distributing remainders:
        // a domain with zero clients would be unobservable to the DNS.
        for c in counts.iter_mut() {
            if *c == 0 {
                *c = 1;
            }
        }
        let assigned: usize = counts.iter().sum();
        if assigned < total {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let ra = ideal[a] - ideal[a].floor();
                let rb = ideal[b] - ideal[b].floor();
                rb.total_cmp(&ra)
            });
            let mut left = total - assigned;
            let mut i = 0;
            while left > 0 {
                counts[order[i % n]] += 1;
                left -= 1;
                i += 1;
            }
        } else if assigned > total {
            // The one-per-domain floor overdrew; take back from the largest.
            let mut excess = assigned - total;
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| counts[b].cmp(&counts[a]));
            let mut i = 0;
            while excess > 0 {
                let d = order[i % n];
                if counts[d] > 1 {
                    counts[d] -= 1;
                    excess -= 1;
                }
                i += 1;
            }
        }
        ClientPartition { counts }
    }

    /// Number of domains.
    #[must_use]
    pub fn num_domains(&self) -> usize {
        self.counts.len()
    }

    /// Clients in domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn count(&self, d: usize) -> usize {
        self.counts[d]
    }

    /// Per-domain client counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total clients across all domains.
    #[must_use]
    pub fn total_clients(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The domain of client `c` under the canonical enumeration (domain 0's
    /// clients first, then domain 1's, …).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn domain_of(&self, c: usize) -> DomainId {
        let mut remaining = c;
        for (d, &n) in self.counts.iter().enumerate() {
            if remaining < n {
                return DomainId(d);
            }
            remaining -= n;
        }
        panic!("client index {c} out of range ({} clients)", self.total_clients());
    }

    /// The full client→domain map under the canonical enumeration (domain
    /// 0's clients first, then domain 1's, …), built in one
    /// O(clients + domains) pass — use this instead of calling
    /// [`domain_of`](ClientPartition::domain_of) per client, which walks the
    /// counts and would cost O(clients × domains) over a population.
    #[must_use]
    pub fn domain_map(&self) -> Vec<DomainId> {
        let mut map = Vec::with_capacity(self.total_clients());
        for (d, &n) in self.counts.iter().enumerate() {
            map.extend(std::iter::repeat_n(DomainId(d), n));
        }
        map
    }

    /// The half-open client-index range `[start, end)` owned by domain `d`
    /// under the canonical enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn client_range(&self, d: usize) -> std::ops::Range<usize> {
        assert!(d < self.counts.len(), "domain {d} out of range ({} domains)", self.counts.len());
        let start: usize = self.counts[..d].iter().sum();
        start..start + self.counts[d]
    }

    /// The relative population share of each domain (sums to 1).
    #[must_use]
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total_clients() as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserves_total() {
        for k in [1, 5, 10, 20, 50, 100] {
            let p = ClientPartition::zipf(500, k, 1.0).unwrap();
            assert_eq!(p.total_clients(), 500, "K = {k}");
        }
    }

    #[test]
    fn zipf_is_monotone() {
        let p = ClientPartition::zipf(500, 20, 1.0).unwrap();
        for d in 1..20 {
            assert!(p.count(d) <= p.count(d - 1), "domain {d}");
        }
    }

    #[test]
    fn every_domain_populated() {
        let p = ClientPartition::zipf(100, 100, 1.0).unwrap();
        assert!(p.counts().iter().all(|&c| c >= 1));
        assert_eq!(p.total_clients(), 100);
    }

    #[test]
    fn uniform_is_flat() {
        let p = ClientPartition::uniform(500, 20).unwrap();
        for d in 0..20 {
            assert_eq!(p.count(d), 25);
        }
    }

    #[test]
    fn paper_default_partition_shape() {
        // K=20, 500 clients, pure Zipf: domain 0 share = 1/H_20 ≈ 27.8%.
        let p = ClientPartition::zipf(500, 20, 1.0).unwrap();
        let h20: f64 = (1..=20).map(|i| 1.0 / f64::from(i)).sum();
        let expect = 500.0 / h20;
        assert!(
            (p.count(0) as f64 - expect).abs() <= 1.0,
            "domain 0 has {} clients, expected ≈{expect:.1}",
            p.count(0)
        );
    }

    #[test]
    fn domain_of_walks_the_enumeration() {
        let p = ClientPartition::explicit(vec![2, 3, 1]).unwrap();
        assert_eq!(p.domain_of(0), DomainId(0));
        assert_eq!(p.domain_of(1), DomainId(0));
        assert_eq!(p.domain_of(2), DomainId(1));
        assert_eq!(p.domain_of(4), DomainId(1));
        assert_eq!(p.domain_of(5), DomainId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn domain_of_rejects_overflow() {
        let p = ClientPartition::explicit(vec![1]).unwrap();
        let _ = p.domain_of(1);
    }

    #[test]
    fn domain_map_matches_domain_of() {
        let p = ClientPartition::zipf(500, 20, 1.0).unwrap();
        let map = p.domain_map();
        assert_eq!(map.len(), 500);
        for (c, &d) in map.iter().enumerate() {
            assert_eq!(d, p.domain_of(c), "client {c}");
        }
    }

    #[test]
    fn client_ranges_tile_the_population() {
        let p = ClientPartition::explicit(vec![2, 3, 1]).unwrap();
        assert_eq!(p.client_range(0), 0..2);
        assert_eq!(p.client_range(1), 2..5);
        assert_eq!(p.client_range(2), 5..6);
        let map = p.domain_map();
        for d in 0..3 {
            for c in p.client_range(d) {
                assert_eq!(map[c], DomainId(d));
            }
        }
    }

    #[test]
    fn ten_thousand_domains_build_instantly() {
        // O(clients + domains): a 10k-domain, 1M-client partition plus its
        // full client→domain map in well under a second even in debug mode
        // (the old per-client `domain_of` walk would be ~10^10 steps here).
        let p = ClientPartition::zipf(1_000_000, 10_000, 1.0).unwrap();
        assert_eq!(p.total_clients(), 1_000_000);
        assert!(p.counts().iter().all(|&c| c >= 1));
        let map = p.domain_map();
        assert_eq!(map.len(), 1_000_000);
        assert_eq!(map[0], DomainId(0));
        assert_eq!(map[999_999], DomainId(9_999));
    }

    #[test]
    fn shares_pin_to_zipf_prob_bit_for_bit() {
        // The construction shortcut must keep producing exactly the shares
        // `Zipf::prob` reports, or seeded partitions would shift.
        let z = Zipf::new(137, 1.0).unwrap();
        let a = ClientPartition::zipf(10_000, 137, 1.0).unwrap();
        let shares: Vec<f64> = (0..137).map(|i| z.prob(i)).collect();
        let b = ClientPartition::largest_remainder(10_000, &shares);
        assert_eq!(a, b);
    }

    #[test]
    fn shares_sum_to_one() {
        let p = ClientPartition::zipf(500, 20, 1.0).unwrap();
        assert!((p.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(ClientPartition::zipf(0, 5, 1.0).is_err());
        assert!(ClientPartition::zipf(5, 0, 1.0).is_err());
        assert!(ClientPartition::zipf(3, 5, 1.0).is_err());
        assert!(ClientPartition::explicit(vec![]).is_err());
        assert!(ClientPartition::explicit(vec![0, 0]).is_err());
    }
}
