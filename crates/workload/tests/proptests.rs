//! Property-based tests for the workload model.

use geodns_workload::{perturbation_multipliers, ClientPartition, SessionModel, WorkloadSpec};
use proptest::prelude::*;

proptest! {
    /// Zipf partitioning conserves the client population exactly and
    /// populates every domain.
    #[test]
    fn partition_conserves_clients(
        n_clients in 1usize..2000,
        n_domains in 1usize..150,
        exponent in 0.0f64..2.5,
    ) {
        prop_assume!(n_clients >= n_domains);
        let p = ClientPartition::zipf(n_clients, n_domains, exponent).unwrap();
        prop_assert_eq!(p.total_clients(), n_clients);
        prop_assert!(p.counts().iter().all(|&c| c >= 1));
    }

    /// Positive-exponent Zipf partitions are non-increasing in rank.
    #[test]
    fn partition_counts_monotone(n_domains in 1usize..100, exponent in 0.5f64..2.0) {
        let p = ClientPartition::zipf(1000, n_domains, exponent).unwrap();
        for d in 1..n_domains {
            prop_assert!(p.count(d) <= p.count(d - 1) + 1, "rounding may wobble by one");
        }
    }

    /// domain_of is the inverse of the partition enumeration.
    #[test]
    fn domain_of_consistent(n_domains in 1usize..50) {
        let p = ClientPartition::zipf(500, n_domains, 1.0).unwrap();
        let mut counts = vec![0usize; n_domains];
        for c in 0..500 {
            counts[p.domain_of(c).index()] += 1;
        }
        prop_assert_eq!(counts.as_slice(), p.counts());
    }

    /// Perturbation conserves the total rate for any feasible error.
    #[test]
    fn perturbation_conserves_total(
        shares in prop::collection::vec(0.01f64..10.0, 2..40),
        error in 0.0f64..0.9,
    ) {
        let total: f64 = shares.iter().sum();
        let busiest = shares.iter().cloned().fold(f64::MIN, f64::max) / total;
        prop_assume!(busiest * error < 1.0 - busiest);
        let m = perturbation_multipliers(&shares, error).unwrap();
        let after: f64 = shares.iter().zip(&m).map(|(s, m)| s * m).sum();
        prop_assert!((after - total).abs() < 1e-6 * total);
        prop_assert!(m.iter().all(|&x| x > 0.0));
    }

    /// Session samples stay within their declared supports.
    #[test]
    fn session_samples_in_support(
        seed in 0u64..500,
        pages_mean in 1.0f64..100.0,
        think in 0.1f64..100.0,
        lo in 1u64..20,
        extra in 0u64..20,
    ) {
        let m = SessionModel {
            pages_mean,
            hits_lo: lo,
            hits_hi: lo + extra,
            think_mean_s: think,
        };
        prop_assert!(m.validate().is_ok());
        let mut rng = geodns_simcore::RngStreams::new(seed).stream("wl");
        for _ in 0..20 {
            prop_assert!(m.sample_pages(&mut rng) >= 1);
            let h = m.sample_hits(&mut rng);
            prop_assert!((lo..=lo + extra).contains(&h));
            prop_assert!(m.sample_think(&mut rng) >= 0.0);
        }
    }

    /// Building a workload never panics for sane specs, and its nominal
    /// rates sum to the analytic offered load.
    #[test]
    fn workload_rates_sum(n_domains in 1usize..60, error in 0.0f64..0.5) {
        let mut spec = WorkloadSpec::paper_default();
        spec.n_domains = n_domains;
        spec.rate_error = error;
        let w = match spec.build() {
            Ok(w) => w,
            // Very skewed shares can make the perturbation infeasible;
            // that's a validated error, not a panic.
            Err(_) => return Ok(()),
        };
        let expect = 500.0 * spec.session.mean_hit_rate_per_client();
        let nominal: f64 = w.nominal_rates().iter().sum();
        let actual: f64 = w.actual_rates().iter().sum();
        prop_assert!((nominal - expect).abs() < 1e-6 * expect);
        prop_assert!((actual - expect).abs() < 1e-6 * expect);
    }
}
