//! Property-based tests for the simulation substrate.

use geodns_simcore::dist::{
    Discrete, Distribution, Empirical, Exponential, Geometric, Uniform, Zipf, ZipfAlias,
};
use geodns_simcore::stats::{Cdf, Histogram, P2Quantile, Tally};
use geodns_simcore::{CalendarQueue, EventQueue, HeapQueue, QueueKind, RngStreams, SimTime};
use proptest::prelude::*;

/// One step of a random queue workload: push an event at the given offset
/// from the current maximum time, or pop.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Push(f64),
    Pop,
}

fn queue_ops(len: usize) -> impl Strategy<Value = Vec<QueueOp>> {
    // Mostly pushes with a wide mix of deltas: ties (0.0), short hops, and
    // far-future jumps that land in the overflow list; one pop in three.
    prop::collection::vec(
        (0u8..6, 0.0f64..50.0).prop_map(|(kind, x)| match kind {
            0 => QueueOp::Push(0.0),
            1 => QueueOp::Push(x),
            2 => QueueOp::Push(x * 100.0),
            3 => QueueOp::Push(x * 10_000.0),
            _ => QueueOp::Pop,
        }),
        1..len,
    )
}

proptest! {
    /// Random push/pop interleavings against a sorted-vec oracle: both
    /// queue kinds must agree with the oracle on every pop, for any mix of
    /// tie, near, and far-future times (the latter exercising the calendar
    /// overflow list and bucket-width recalibration).
    #[test]
    fn queues_match_sorted_vec_oracle(ops in queue_ops(300)) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        // Oracle: (time, seq) pairs kept sorted ascending; pop = remove(0).
        let mut oracle: Vec<(SimTime, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut high = SimTime::ZERO;

        for op in ops {
            match op {
                QueueOp::Push(delta) => {
                    // Anchor pushes at the highest time seen so the trace
                    // stays causal, the way an engine drives the queue.
                    let t = high + delta;
                    high = if t > high { t } else { high };
                    cal.push(t, seq);
                    heap.push(t, seq);
                    let at = oracle.partition_point(|&(ot, os)| (ot, os) < (t, seq));
                    oracle.insert(at, (t, seq));
                    seq += 1;
                }
                QueueOp::Pop => {
                    let expect = if oracle.is_empty() { None } else { Some(oracle.remove(0)) };
                    prop_assert_eq!(cal.pop(), expect, "calendar vs oracle");
                    prop_assert_eq!(heap.pop(), expect, "heap vs oracle");
                }
            }
        }
        // Drain: the full remaining order must match too.
        while let Some(expected) = (!oracle.is_empty()).then(|| oracle.remove(0)) {
            prop_assert_eq!(cal.pop(), Some(expected), "calendar drain");
            prop_assert_eq!(heap.pop(), Some(expected), "heap drain");
        }
        prop_assert_eq!(cal.pop(), None);
        prop_assert_eq!(heap.pop(), None);
    }

    /// FIFO among same-time events survives calendar bucket resizes: a
    /// burst of ties pushed before, across, and after a forced growth
    /// rebuild pops back in exact insertion order.
    #[test]
    fn tie_fifo_survives_bucket_resizes(
        n_ties in 1usize..120,
        tie_at in 0.0f64..1000.0,
        filler in prop::collection::vec(0.0f64..1000.0, 64..256),
    ) {
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let mut q = EventQueue::with_kind(kind);
            // Interleave tied events with spread-out filler so the calendar
            // crosses at least one grow threshold mid-sequence.
            let mut expected_ties = Vec::new();
            for (i, &f) in filler.iter().enumerate() {
                q.push(SimTime::from_secs(f), usize::MAX - i);
                if i < n_ties {
                    q.push(SimTime::from_secs(tie_at), i);
                    expected_ties.push(i);
                }
            }
            let mut got_ties = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((t, payload)) = q.pop() {
                prop_assert!(t >= last, "time went backwards under {kind:?}");
                last = t;
                if payload < usize::MAX / 2 {
                    got_ties.push(payload);
                }
            }
            prop_assert_eq!(&got_ties, &expected_ties, "tie FIFO broke under {:?}", kind);
        }
    }

    /// The event queue always yields events in non-decreasing time order,
    /// with FIFO order among events that share a timestamp.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u32..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), (t, i));
        }
        let mut last: Option<(SimTime, (u32, usize))> = None;
        while let Some((time, payload)) = q.pop() {
            if let Some((lt, lp)) = last {
                prop_assert!(time >= lt, "time went backwards");
                if time == lt {
                    prop_assert!(payload.1 > lp.1, "FIFO violated on tie");
                }
            }
            last = Some((time, payload));
        }
    }

    /// Tally::merge is equivalent to recording both sample sets sequentially.
    #[test]
    fn tally_merge_matches_sequential(
        a in prop::collection::vec(-1e6f64..1e6, 0..50),
        b in prop::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut ta = Tally::new();
        let mut tb = Tally::new();
        let mut whole = Tally::new();
        for &x in &a { ta.record(x); whole.record(x); }
        for &x in &b { tb.record(x); whole.record(x); }
        ta.merge(&tb);
        prop_assert_eq!(ta.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((ta.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((ta.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        }
    }

    /// A histogram's CDF is monotone non-decreasing and bounded by [0, 1].
    #[test]
    fn histogram_cdf_is_monotone(samples in prop::collection::vec(-0.5f64..1.5, 1..300)) {
        let mut h = Histogram::new(0.0, 1.0, 50).unwrap();
        for &s in &samples { h.record(s); }
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = f64::from(i) / 100.0;
            let c = h.cdf_at(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12, "CDF decreased at {x}");
            prev = c;
        }
    }

    /// Exact CDF: prob_lt <= prob_le, quantile inverts prob_le.
    #[test]
    fn cdf_strict_weak_consistency(samples in prop::collection::vec(-100f64..100.0, 1..200), x in -100f64..100.0) {
        let mut c = Cdf::new();
        for &s in &samples { c.record(s); }
        prop_assert!(c.prob_lt(x) <= c.prob_le(x));
        let q = c.quantile(0.5).unwrap();
        prop_assert!(c.prob_le(q) >= 0.5);
    }

    /// Zipf probabilities are normalized and non-increasing in rank.
    #[test]
    fn zipf_probabilities_sane(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|i| z.prob(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.prob(i) <= z.prob(i - 1) + 1e-12);
        }
    }

    /// The compact `ZipfAlias` is pinned against the reference `Zipf` over
    /// the whole parameter space: identical analytic probabilities (to the
    /// bit) and identical sample streams from equal RNG states, so swapping
    /// one for the other can never perturb a seeded run.
    #[test]
    fn zipf_alias_pins_to_reference_zipf(n in 1usize..400, s in 0.0f64..3.0, seed in 0u64..1000) {
        let a = ZipfAlias::new(n, s).unwrap();
        let z = Zipf::new(n, s).unwrap();
        for i in 0..n {
            prop_assert_eq!(a.prob(i).to_bits(), z.prob(i).to_bits(), "prob({}) diverged", i);
        }
        let mut rng_a = RngStreams::new(seed).stream("zipf-alias-pin");
        let mut rng_z = RngStreams::new(seed).stream("zipf-alias-pin");
        for draw in 0..500 {
            prop_assert_eq!(a.sample(&mut rng_a), z.sample(&mut rng_z), "draw {} diverged", draw);
        }
    }

    /// A capped CDF that never exceeds its cap is indistinguishable from an
    /// exact one: same retained multiset, same quantiles, to the bit.
    #[test]
    fn capped_cdf_exact_below_cap(
        samples in prop::collection::vec(-1e3f64..1e3, 1..100),
        seed in 0u64..1000,
        q in 0.0f64..1.0,
    ) {
        let mut exact = Cdf::new();
        let mut capped = Cdf::with_cap(100, seed);
        for &s in &samples {
            exact.record(s);
            capped.record(s);
        }
        prop_assert_eq!(capped.count(), exact.count());
        prop_assert_eq!(capped.seen(), samples.len() as u64);
        prop_assert_eq!(
            capped.quantile(q).unwrap().to_bits(),
            exact.quantile(q).unwrap().to_bits()
        );
        prop_assert_eq!(capped.mean().to_bits(), exact.mean().to_bits());
    }

    /// Merging CDFs shard-by-shard matches recording the union sequentially
    /// (uncapped): quantiles agree bit-for-bit after the sort.
    #[test]
    fn cdf_merge_matches_sequential(
        a in prop::collection::vec(-1e3f64..1e3, 0..60),
        b in prop::collection::vec(-1e3f64..1e3, 1..60),
        q in 0.0f64..1.0,
    ) {
        let mut ca = Cdf::new();
        let mut cb = Cdf::new();
        let mut whole = Cdf::new();
        for &x in &a { ca.record(x); whole.record(x); }
        for &x in &b { cb.record(x); whole.record(x); }
        ca.merge(&cb);
        prop_assert_eq!(ca.seen(), whole.seen());
        prop_assert_eq!(ca.quantile(q).unwrap().to_bits(), whole.quantile(q).unwrap().to_bits());
    }

    /// Alias-method sampling only produces indices with positive weight.
    #[test]
    fn discrete_support_respected(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Discrete::from_weights(&weights).unwrap();
        let mut rng = RngStreams::new(seed).stream("prop");
        for _ in 0..200 {
            let i = d.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {i}");
        }
    }

    /// Exponential samples are non-negative; uniform samples respect bounds.
    #[test]
    fn continuous_supports(seed in 0u64..1000, mean in 0.001f64..1e4, lo in -1e3f64..1e3, width in 0.001f64..1e3) {
        let mut rng = RngStreams::new(seed).stream("sup");
        let e = Exponential::with_mean(mean);
        prop_assert!(e.sample(&mut rng) >= 0.0);
        let u = Uniform::new(lo, lo + width).unwrap();
        let x = u.sample(&mut rng);
        prop_assert!(x >= lo && x < lo + width);
    }

    /// Geometric samples are at least 1.
    #[test]
    fn geometric_support(seed in 0u64..1000, mean in 1.0f64..100.0) {
        let g = Geometric::with_mean(mean).unwrap();
        let mut rng = RngStreams::new(seed).stream("geo");
        for _ in 0..50 {
            prop_assert!(g.sample(&mut rng) >= 1);
        }
    }

    /// Empirical resampling stays within the observed range.
    #[test]
    fn empirical_stays_in_range(samples in prop::collection::vec(-50f64..50.0, 1..100), seed in 0u64..100) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let d = Empirical::from_samples(samples).unwrap();
        let mut rng = RngStreams::new(seed).stream("emp");
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    /// P² estimates stay within the sample range.
    #[test]
    fn p2_stays_in_range(samples in prop::collection::vec(-1e3f64..1e3, 5..200), p in 0.01f64..0.99) {
        let mut q = P2Quantile::new(p).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &s in &samples { q.record(s); }
        let v = q.value().unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "estimate {v} outside [{lo}, {hi}]");
    }

    /// Named RNG streams are reproducible and name-sensitive.
    #[test]
    fn rng_streams_deterministic(seed in 0u64..u64::MAX, idx in 0u64..1000) {
        use rand::Rng;
        let f = RngStreams::new(seed);
        let a: u64 = f.stream_indexed("tag", idx).gen();
        let b: u64 = f.stream_indexed("tag", idx).gen();
        prop_assert_eq!(a, b);
    }
}
