//! Property-based tests for the simulation substrate.

use geodns_simcore::dist::{
    Discrete, Distribution, Empirical, Exponential, Geometric, Uniform, Zipf,
};
use geodns_simcore::stats::{Cdf, Histogram, P2Quantile, Tally};
use geodns_simcore::{EventQueue, RngStreams, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue always yields events in non-decreasing time order,
    /// with FIFO order among events that share a timestamp.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u32..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), (t, i));
        }
        let mut last: Option<(SimTime, (u32, usize))> = None;
        while let Some((time, payload)) = q.pop() {
            if let Some((lt, lp)) = last {
                prop_assert!(time >= lt, "time went backwards");
                if time == lt {
                    prop_assert!(payload.1 > lp.1, "FIFO violated on tie");
                }
            }
            last = Some((time, payload));
        }
    }

    /// Tally::merge is equivalent to recording both sample sets sequentially.
    #[test]
    fn tally_merge_matches_sequential(
        a in prop::collection::vec(-1e6f64..1e6, 0..50),
        b in prop::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut ta = Tally::new();
        let mut tb = Tally::new();
        let mut whole = Tally::new();
        for &x in &a { ta.record(x); whole.record(x); }
        for &x in &b { tb.record(x); whole.record(x); }
        ta.merge(&tb);
        prop_assert_eq!(ta.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((ta.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((ta.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        }
    }

    /// A histogram's CDF is monotone non-decreasing and bounded by [0, 1].
    #[test]
    fn histogram_cdf_is_monotone(samples in prop::collection::vec(-0.5f64..1.5, 1..300)) {
        let mut h = Histogram::new(0.0, 1.0, 50).unwrap();
        for &s in &samples { h.record(s); }
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = f64::from(i) / 100.0;
            let c = h.cdf_at(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-12, "CDF decreased at {x}");
            prev = c;
        }
    }

    /// Exact CDF: prob_lt <= prob_le, quantile inverts prob_le.
    #[test]
    fn cdf_strict_weak_consistency(samples in prop::collection::vec(-100f64..100.0, 1..200), x in -100f64..100.0) {
        let mut c = Cdf::new();
        for &s in &samples { c.record(s); }
        prop_assert!(c.prob_lt(x) <= c.prob_le(x));
        let q = c.quantile(0.5).unwrap();
        prop_assert!(c.prob_le(q) >= 0.5);
    }

    /// Zipf probabilities are normalized and non-increasing in rank.
    #[test]
    fn zipf_probabilities_sane(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|i| z.prob(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.prob(i) <= z.prob(i - 1) + 1e-12);
        }
    }

    /// Alias-method sampling only produces indices with positive weight.
    #[test]
    fn discrete_support_respected(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Discrete::from_weights(&weights).unwrap();
        let mut rng = RngStreams::new(seed).stream("prop");
        for _ in 0..200 {
            let i = d.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {i}");
        }
    }

    /// Exponential samples are non-negative; uniform samples respect bounds.
    #[test]
    fn continuous_supports(seed in 0u64..1000, mean in 0.001f64..1e4, lo in -1e3f64..1e3, width in 0.001f64..1e3) {
        let mut rng = RngStreams::new(seed).stream("sup");
        let e = Exponential::with_mean(mean);
        prop_assert!(e.sample(&mut rng) >= 0.0);
        let u = Uniform::new(lo, lo + width).unwrap();
        let x = u.sample(&mut rng);
        prop_assert!(x >= lo && x < lo + width);
    }

    /// Geometric samples are at least 1.
    #[test]
    fn geometric_support(seed in 0u64..1000, mean in 1.0f64..100.0) {
        let g = Geometric::with_mean(mean).unwrap();
        let mut rng = RngStreams::new(seed).stream("geo");
        for _ in 0..50 {
            prop_assert!(g.sample(&mut rng) >= 1);
        }
    }

    /// Empirical resampling stays within the observed range.
    #[test]
    fn empirical_stays_in_range(samples in prop::collection::vec(-50f64..50.0, 1..100), seed in 0u64..100) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let d = Empirical::from_samples(samples).unwrap();
        let mut rng = RngStreams::new(seed).stream("emp");
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    /// P² estimates stay within the sample range.
    #[test]
    fn p2_stays_in_range(samples in prop::collection::vec(-1e3f64..1e3, 5..200), p in 0.01f64..0.99) {
        let mut q = P2Quantile::new(p).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &s in &samples { q.record(s); }
        let v = q.value().unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "estimate {v} outside [{lo}, {hi}]");
    }

    /// Named RNG streams are reproducible and name-sensitive.
    #[test]
    fn rng_streams_deterministic(seed in 0u64..u64::MAX, idx in 0u64..1000) {
        use rand::Rng;
        let f = RngStreams::new(seed);
        let a: u64 = f.stream_indexed("tag", idx).gen();
        let b: u64 = f.stream_indexed("tag", idx).gen();
        prop_assert_eq!(a, b);
    }
}
