//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point on the simulation clock, in seconds since the start of the run.
///
/// `SimTime` is a thin newtype over `f64` that statically rules out the two
/// things that break discrete-event simulations: NaN timestamps (which would
/// poison the event-queue ordering) and negative time. Construction goes
/// through [`SimTime::new`], which rejects both.
///
/// The type is totally ordered ([`Ord`]) — valid instances never hold NaN —
/// so it can key a `BinaryHeap` directly.
///
/// # Examples
///
/// ```
/// use geodns_simcore::SimTime;
///
/// let t = SimTime::new(8.0).unwrap();
/// let later = t + 4.0;
/// assert_eq!(later.as_secs(), 12.0);
/// assert!(later > t);
/// assert!(SimTime::new(f64::NAN).is_err());
/// assert!(SimTime::new(-1.0).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

/// Error returned when constructing a [`SimTime`] from an invalid float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The provided value was NaN.
    NotANumber,
    /// The provided value was negative.
    Negative,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::NotANumber => write!(f, "simulation time must not be NaN"),
            TimeError::Negative => write!(f, "simulation time must be non-negative"),
        }
    }
}

impl std::error::Error for TimeError {}

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a simulation time `secs` seconds after the start of the run.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::NotANumber`] for NaN and [`TimeError::Negative`]
    /// for negative values.
    pub fn new(secs: f64) -> Result<Self, TimeError> {
        if secs.is_nan() {
            Err(TimeError::NotANumber)
        } else if secs < 0.0 {
            Err(TimeError::Negative)
        } else {
            Ok(SimTime(secs))
        }
    }

    /// Creates a simulation time, panicking on NaN or negative input.
    ///
    /// Convenient in model code where the argument is a literal or an
    /// already-validated value.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Self::new(secs).expect("invalid simulation time")
    }

    /// This time as seconds since the start of the run.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The elapsed seconds from `earlier` to `self`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Valid SimTime never holds NaN, so total_cmp agrees with the IEEE
        // partial order on the reachable values.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// Advances the time by `rhs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the result would be NaN or negative (e.g. adding `-inf`).
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}s)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SimTime::new(0.0).is_ok());
        assert!(SimTime::new(1e12).is_ok());
        assert_eq!(SimTime::new(f64::NAN), Err(TimeError::NotANumber));
        assert_eq!(SimTime::new(-0.5), Err(TimeError::Negative));
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0);
        assert_eq!((t + 5.0).as_secs(), 15.0);
        assert_eq!((t + 5.0) - t, 5.0);
        assert_eq!(t.since(t + 5.0), 0.0, "since saturates at zero");
        assert_eq!((t + 5.0).since(t), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn add_cannot_go_negative() {
        let _ = SimTime::from_secs(1.0) + (-2.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_secs(3.25);
        let json = serde_json_like(t);
        assert_eq!(json, "3.25");
    }

    // Minimal check without a serde_json dev-dependency: serialize through
    // the Display of the inner value that `#[serde(transparent)]` exposes.
    fn serde_json_like(t: SimTime) -> String {
        format!("{}", t.as_secs())
    }
}
