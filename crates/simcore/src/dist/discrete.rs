//! General finite discrete distribution via Walker/Vose alias sampling.

use rand::Rng;

use super::{Distribution, ParamError};

/// A distribution over `0..n` with arbitrary non-negative weights, sampled in
/// O(1) with the Vose alias method.
///
/// This is the workhorse behind [`Zipf`](super::Zipf) and behind the
/// capacity-weighted random baseline policy.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Discrete, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let d = Discrete::from_weights(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = RngStreams::new(1).stream("d");
/// for _ in 0..100 {
///     assert_ne!(d.sample(&mut rng), 1, "zero-weight index never drawn");
/// }
/// assert!((d.prob(2) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    prob: Vec<f64>,    // normalized probabilities (for introspection)
    accept: Vec<f64>,  // alias-table acceptance thresholds
    alias: Vec<usize>, // alias targets
}

impl Discrete {
    /// Builds the alias table from raw weights.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError::new("discrete distribution needs at least one weight"));
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(ParamError::new(format!("weights must be finite and >= 0, got {w}")));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("weights must not all be zero"));
        }

        let n = weights.len();
        let prob: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Vose's algorithm: split indices into "small" (scaled prob < 1) and
        // "large", pair each small column with a large donor.
        let mut scaled: Vec<f64> = prob.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }

        let mut accept = vec![1.0; n];
        let mut alias = vec![0usize; n];
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            accept[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0 columns.
        for i in large.into_iter().chain(small) {
            accept[i] = 1.0;
            alias[i] = i;
        }

        Ok(Discrete { prob, accept, alias })
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the distribution has zero categories (never true for a
    /// successfully constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalized probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn prob(&self, i: usize) -> f64 {
        self.prob[i]
    }

    /// The full normalized probability vector.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.prob
    }
}

impl Distribution<usize> for Discrete {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let col = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.accept[col] {
            col
        } else {
            self.alias[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngStreams;

    fn frequencies(d: &Discrete, n: usize) -> Vec<f64> {
        let mut rng = RngStreams::new(0xA11A5).stream("alias");
        let mut counts = vec![0usize; d.len()];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        counts.into_iter().map(|c| c as f64 / n as f64).collect()
    }

    #[test]
    fn matches_probabilities() {
        let d = Discrete::from_weights(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let freq = frequencies(&d, 400_000);
        for (i, f) in freq.iter().enumerate() {
            let p = d.prob(i);
            assert!((f - p).abs() < 0.005, "category {i}: freq {f} vs prob {p}");
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let d = Discrete::from_weights(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let freq = frequencies(&d, 50_000);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn single_category() {
        let d = Discrete::from_weights(&[42.0]).unwrap();
        let mut rng = RngStreams::new(1).stream("single");
        assert_eq!(d.sample(&mut rng), 0);
        assert_eq!(d.prob(0), 1.0);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn probabilities_normalized() {
        let d = Discrete::from_weights(&[10.0, 30.0]).unwrap();
        assert!((d.prob(0) - 0.25).abs() < 1e-12);
        assert!((d.prob(1) - 0.75).abs() < 1e-12);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(Discrete::from_weights(&[]).is_err());
        assert!(Discrete::from_weights(&[0.0, 0.0]).is_err());
        assert!(Discrete::from_weights(&[-1.0, 2.0]).is_err());
        assert!(Discrete::from_weights(&[f64::NAN]).is_err());
        assert!(Discrete::from_weights(&[f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn highly_skewed_weights_are_stable() {
        let weights: Vec<f64> = (1..=100).map(|i| 1.0 / f64::from(i)).collect();
        let d = Discrete::from_weights(&weights).unwrap();
        let freq = frequencies(&d, 200_000);
        let h: f64 = (1..=100).map(|i| 1.0 / f64::from(i)).sum();
        assert!((freq[0] - 1.0 / h).abs() < 0.01);
    }
}
