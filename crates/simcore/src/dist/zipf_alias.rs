//! Compact O(1) alias-method Zipf sampler for internet-scale rank counts.

use rand::Rng;

use super::{Distribution, ParamError};

/// Zipf distribution over ranks `0..n` sampled in O(1) from a *compact*
/// alias table: `P(rank i) ∝ 1 / (i+1)^s`.
///
/// [`Zipf`](super::Zipf) routes through the general-purpose
/// [`Discrete`](super::Discrete), which retains the full normalized
/// probability vector alongside its alias columns (3 words per rank, plus a
/// transient weight vector during construction). At the paper's `K = 20`
/// that is irrelevant; at the 10k+ domains the scale experiments sweep it
/// is pure waste, because Zipf probabilities have a closed form. This
/// sampler keeps only the acceptance thresholds (`f64`) and alias targets
/// (`u32`) — 12 bytes per rank — and answers [`prob`](ZipfAlias::prob)
/// analytically from the stored normalizer.
///
/// The alias table is built with the *identical* Vose pairing order as
/// `Discrete::from_weights`, so a `ZipfAlias` and a `Zipf` over the same
/// `(n, s)` draw **bit-identical sample sequences** from equal RNG states —
/// pinned by a property test. Either sampler can therefore back a workload
/// without perturbing seeded runs.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Distribution, ZipfAlias};
/// use geodns_simcore::RngStreams;
///
/// let z = ZipfAlias::new(10_000, 1.0).unwrap(); // 10k-domain workload
/// let mut rng = RngStreams::new(1).stream("zipf");
/// assert!(z.sample(&mut rng) < 10_000);
/// assert!(z.prob(0) > z.prob(9_999));
/// assert!(z.table_bytes() < 10_000 * 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfAlias {
    n: usize,
    exponent: f64,
    /// Sum of the unnormalized weights `Σ 1/(i+1)^s` (the generalized
    /// harmonic number `H_{n,s}`), accumulated in rank order so
    /// `prob(i)` reproduces `Discrete`'s normalization bit for bit.
    total: f64,
    accept: Vec<f64>,
    alias: Vec<u32>,
}

impl ZipfAlias {
    /// Creates the sampler over `n` ranks with skew exponent `s`.
    ///
    /// Construction is a single O(n) Vose pass; no probability vector is
    /// retained.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`, `n` exceeds `u32` range (the alias
    /// targets are stored as `u32`), or the exponent is not finite and
    /// `>= 0`.
    pub fn new(n: usize, exponent: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf needs at least one rank"));
        }
        if n > u32::MAX as usize {
            return Err(ParamError::new(format!("alias table caps ranks at u32::MAX, got {n}")));
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(ParamError::new(format!(
                "zipf exponent must be finite and >= 0, got {exponent}"
            )));
        }

        // Weight and normalizer exactly as `Zipf::weights` + `Discrete`
        // compute them, so probabilities (and the alias pairing below)
        // match the reference sampler bit for bit.
        let weight = |i: usize| 1.0 / ((i + 1) as f64).powf(exponent);
        let mut total = 0.0;
        for i in 0..n {
            total += weight(i);
        }

        // Vose's algorithm over the scaled probabilities, replicating the
        // `Discrete::from_weights` pairing order: indices partitioned into
        // "small"/"large" in ascending rank, then popped LIFO.
        let mut scaled: Vec<f64> = (0..n).map(|i| weight(i) / total * n as f64).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        let mut accept = vec![1.0; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            let (s_i, l_i) = (s as usize, l as usize);
            accept[s_i] = scaled[s_i];
            alias[s_i] = l;
            scaled[l_i] = (scaled[l_i] + scaled[s_i]) - 1.0;
            if scaled[l_i] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0 columns; `accept` already says so
        // and `alias` already self-targets.

        Ok(ZipfAlias { n, exponent, total, accept, alias })
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The normalized probability of rank `i`, computed analytically.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn prob(&self, i: usize) -> f64 {
        assert!(i < self.n, "rank {i} out of range ({} ranks)", self.n);
        1.0 / ((i + 1) as f64).powf(self.exponent) / self.total
    }

    /// The generalized harmonic number `H_{n,s}` normalizing this law.
    #[must_use]
    pub fn harmonic(&self) -> f64 {
        self.total
    }

    /// Retained table footprint in bytes (acceptance thresholds + alias
    /// targets) — the scale bench's bytes-per-domain accounting reads this.
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.accept.capacity() * std::mem::size_of::<f64>()
            + self.alias.capacity() * std::mem::size_of::<u32>()
    }
}

impl Distribution<usize> for ZipfAlias {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let col = rng.gen_range(0..self.n);
        if rng.gen::<f64>() < self.accept[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Zipf;
    use crate::RngStreams;

    #[test]
    fn probabilities_match_the_reference_sampler_exactly() {
        for (n, s) in [(1, 1.0), (4, 1.0), (20, 1.0), (100, 0.0), (137, 0.8), (1000, 2.5)] {
            let a = ZipfAlias::new(n, s).unwrap();
            let z = Zipf::new(n, s).unwrap();
            for i in 0..n {
                assert_eq!(
                    a.prob(i).to_bits(),
                    z.prob(i).to_bits(),
                    "prob({i}) diverged at n={n}, s={s}"
                );
            }
            assert_eq!(a.harmonic().to_bits(), Zipf::weights(n, s).iter().sum::<f64>().to_bits());
        }
    }

    #[test]
    fn sample_stream_is_bit_identical_to_zipf() {
        let a = ZipfAlias::new(500, 1.0).unwrap();
        let z = Zipf::new(500, 1.0).unwrap();
        let mut rng_a = RngStreams::new(0xA1).stream("alias-pin");
        let mut rng_z = RngStreams::new(0xA1).stream("alias-pin");
        for draw in 0..10_000 {
            assert_eq!(a.sample(&mut rng_a), z.sample(&mut rng_z), "draw {draw}");
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let z = ZipfAlias::new(20, 1.0).unwrap();
        let mut rng = RngStreams::new(0x21).stream("zipf-alias");
        let mut counts = [0usize; 20];
        let n = 300_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let f = count as f64 / n as f64;
            assert!((f - z.prob(i)).abs() < 0.01, "rank {i}: {f} vs {}", z.prob(i));
        }
    }

    #[test]
    fn ten_thousand_ranks_build_instantly_and_compactly() {
        let z = ZipfAlias::new(10_000, 1.0).unwrap();
        assert_eq!(z.n(), 10_000);
        // 12 bytes per rank (f64 accept + u32 alias), modulo Vec headroom.
        assert!(z.table_bytes() <= 10_000 * 12 * 2, "table is {} bytes", z.table_bytes());
        let sum: f64 = (0..10_000).map(|i| z.prob(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ZipfAlias::new(0, 1.0).is_err());
        assert!(ZipfAlias::new(5, -1.0).is_err());
        assert!(ZipfAlias::new(5, f64::NAN).is_err());
        assert!(ZipfAlias::new(5, f64::INFINITY).is_err());
    }
}
