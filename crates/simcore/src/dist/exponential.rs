//! Exponential distribution (inter-arrival and think times).

use rand::Rng;

use super::{Distribution, ParamError};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used throughout the paper's model: think times between page requests and
/// per-hit service times are exponential.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Exponential, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let think = Exponential::with_mean(15.0); // paper's mean think time
/// let mut rng = RngStreams::new(1).stream("think");
/// let x = think.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert!((think.mean() - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (events per
    /// unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive. Use [`Exponential::try_new`]
    /// for a fallible variant.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        Self::try_new(rate).expect("invalid exponential rate")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns an error unless `rate` is finite and strictly positive.
    pub fn try_new(rate: f64) -> Result<Self, ParamError> {
        if rate.is_finite() && rate > 0.0 {
            Ok(Exponential { rate })
        } else {
            Err(ParamError::new(format!("exponential rate must be finite and > 0, got {rate}")))
        }
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be finite and > 0, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF. `gen::<f64>()` is in [0, 1); use 1-u in (0, 1] so the
        // logarithm never sees zero.
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{mean_of, var_of};
    use super::*;

    #[test]
    fn mean_matches() {
        let d = Exponential::with_mean(15.0);
        let m = mean_of(&d, 200_000);
        assert!((m - 15.0).abs() / 15.0 < 0.02, "sample mean {m}");
    }

    #[test]
    fn variance_matches() {
        let d = Exponential::new(2.0); // var = 1/λ² = 0.25
        let v = var_of(&d, 200_000);
        assert!((v - 0.25).abs() / 0.25 < 0.05, "sample var {v}");
    }

    #[test]
    fn samples_nonnegative_and_finite() {
        let d = Exponential::new(1e6);
        let mut rng = crate::RngStreams::new(3).stream("exp");
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(Exponential::try_new(0.0).is_err());
        assert!(Exponential::try_new(-1.0).is_err());
        assert!(Exponential::try_new(f64::NAN).is_err());
        assert!(Exponential::try_new(f64::INFINITY).is_err());
    }

    #[test]
    fn accessors() {
        let d = Exponential::new(4.0);
        assert_eq!(d.rate(), 4.0);
        assert_eq!(d.mean(), 0.25);
    }
}
