//! Empirical distribution (inverse-CDF resampling of observed data).

use rand::Rng;

use super::{Distribution, ParamError};

/// Resamples from an observed data set by inverse-CDF interpolation.
///
/// Lets trace-derived data (e.g. measured hidden-load weights or think
/// times) drive the simulation instead of a parametric law.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Empirical, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let d = Empirical::from_samples(vec![1.0, 2.0, 2.0, 10.0]).unwrap();
/// let mut rng = RngStreams::new(1).stream("emp");
/// let x = d.sample(&mut rng);
/// assert!((1.0..=10.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from raw samples.
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty or contains non-finite values.
    pub fn from_samples(mut samples: Vec<f64>) -> Result<Self, ParamError> {
        if samples.is_empty() {
            return Err(ParamError::new("empirical distribution needs at least one sample"));
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(ParamError::new("empirical samples must be finite"));
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        Ok(Empirical { sorted: samples })
    }

    /// Number of underlying samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (`0 <= q <= 1`) by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] + frac * (self.sorted[hi] - self.sorted[lo])
    }

    /// The sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

impl Distribution<f64> for Empirical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngStreams;

    #[test]
    fn quantiles_interpolate() {
        let d = Empirical::from_samples(vec![0.0, 10.0]).unwrap();
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(0.5), 5.0);
        assert_eq!(d.quantile(1.0), 10.0);
    }

    #[test]
    fn single_sample_is_constant() {
        let d = Empirical::from_samples(vec![4.2]).unwrap();
        let mut rng = RngStreams::new(1).stream("e1");
        assert_eq!(d.sample(&mut rng), 4.2);
        assert_eq!(d.quantile(0.3), 4.2);
    }

    #[test]
    fn resampled_mean_tracks_data() {
        let data: Vec<f64> = (0..1000).map(f64::from).collect();
        let d = Empirical::from_samples(data).unwrap();
        let mut rng = RngStreams::new(2).stream("e2");
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 5.0, "resampled mean {mean} vs {}", d.mean());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Empirical::from_samples(vec![]).is_err());
        assert!(Empirical::from_samples(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let d = Empirical::from_samples(vec![1.0]).unwrap();
        let _ = d.quantile(1.5);
    }
}
