//! Log-normal distribution.

use rand::Rng;

use super::{Distribution, Normal, ParamError};

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Web object sizes and transfer times are classically heavy-tailed and often
/// modeled log-normal (Arlitt & Williamson, SIGMETRICS'96 — the workload
/// characterization the paper cites); provided for extension workloads.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{LogNormal, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let d = LogNormal::new(0.0, 0.5).unwrap();
/// let mut rng = RngStreams::new(1).stream("ln");
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-space parameters `mu`,
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mu` is finite and `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal { inner: Normal::new(mu, sigma)? })
    }

    /// The arithmetic mean `exp(mu + sigma²/2)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.inner.mu() + 0.5 * self.inner.sigma() * self.inner.sigma()).exp()
    }

    /// The median `exp(mu)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.inner.mu().exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::mean_of;
    use super::*;

    #[test]
    fn mean_matches() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let m = mean_of(&d, 300_000);
        let expect = d.mean();
        assert!((m - expect).abs() / expect < 0.02, "sample mean {m} vs {expect}");
    }

    #[test]
    fn strictly_positive() {
        let d = LogNormal::new(-2.0, 2.0).unwrap();
        let mut rng = crate::RngStreams::new(2).stream("ln+");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.5, 1.0).unwrap();
        assert!((d.median() - 1.5f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
    }
}
