//! Geometric distribution (discrete analogue of the exponential).

use rand::Rng;

use super::{Distribution, ParamError};

/// Geometric distribution on `{1, 2, 3, …}` with success probability `p`
/// (mean `1/p`).
///
/// Used as the integer-valued stand-in for "exponentially distributed number
/// of page requests per session": the memoryless discrete law with a given
/// mean, guaranteeing at least one page per session.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Geometric, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let pages = Geometric::with_mean(20.0).unwrap();
/// let mut rng = RngStreams::new(1).stream("pages");
/// assert!(pages.sample(&mut rng) >= 1);
/// assert!((pages.mean() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Geometric { p })
        } else {
            Err(ParamError::new(format!("geometric p must be in (0, 1], got {p}")))
        }
    }

    /// Creates a geometric distribution with the given mean (`>= 1`).
    ///
    /// # Errors
    ///
    /// Returns an error if `mean < 1` or is not finite.
    pub fn with_mean(mean: f64) -> Result<Self, ParamError> {
        if mean.is_finite() && mean >= 1.0 {
            Self::new(1.0 / mean)
        } else {
            Err(ParamError::new(format!("geometric mean must be >= 1, got {mean}")))
        }
    }

    /// Success probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }
}

impl Distribution<u64> for Geometric {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Inversion: ceil(ln(1-u) / ln(1-p)) is geometric on {1, 2, ...}.
        let u: f64 = rng.gen();
        let x = ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil();
        if x < 1.0 {
            1
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngStreams;

    #[test]
    fn mean_matches() {
        let d = Geometric::with_mean(20.0).unwrap();
        let mut rng = RngStreams::new(0x6E0).stream("geo");
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() / 20.0 < 0.02, "sample mean {mean}");
    }

    #[test]
    fn support_starts_at_one() {
        let d = Geometric::new(0.99).unwrap();
        let mut rng = RngStreams::new(1).stream("geo1");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 1);
        }
    }

    #[test]
    fn p_one_is_constant_one() {
        let d = Geometric::new(1.0).unwrap();
        let mut rng = RngStreams::new(2).stream("geo2");
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(f64::NAN).is_err());
        assert!(Geometric::with_mean(0.5).is_err());
    }
}
