//! Normal distribution via the Marsaglia polar method.

use rand::Rng;
use std::cell::Cell;

use super::{Distribution, ParamError};

/// Normal (Gaussian) distribution with mean `mu` and standard deviation
/// `sigma`.
///
/// Provided for extension workloads (noisy capacity estimates, measurement
/// jitter) and as the base of [`LogNormal`](super::LogNormal).
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Normal, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let n = Normal::new(0.0, 1.0).unwrap();
/// let mut rng = RngStreams::new(1).stream("n");
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
    // The polar method produces two variates per iteration; cache the spare.
    spare: Cell<Option<f64>>,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mu` is finite and `sigma` is finite and
    /// strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if mu.is_finite() && sigma.is_finite() && sigma > 0.0 {
            Ok(Normal { mu, sigma, spare: Cell::new(None) })
        } else {
            Err(ParamError::new(format!(
                "normal requires finite mu and sigma > 0, got mu={mu}, sigma={sigma}"
            )))
        }
    }

    /// The mean.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a standard-normal variate.
    pub fn standard<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare.set(Some(v * factor));
                return u * factor;
            }
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * self.standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{mean_of, var_of};
    use super::*;

    #[test]
    fn moments_match() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let m = mean_of(&d, 200_000);
        let v = var_of(&d, 200_000);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn roughly_symmetric() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = crate::RngStreams::new(7).stream("sym");
        let n = 100_000;
        let above = (0..n).filter(|_| d.sample(&mut rng) > 0.0).count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "P(X>0) = {frac}");
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
