//! Continuous and discrete uniform distributions.

use rand::Rng;

use super::{Distribution, ParamError};

/// Continuous uniform distribution on `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Uniform, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let u = Uniform::new(2.0, 4.0).unwrap();
/// let mut rng = RngStreams::new(1).stream("u");
/// let x = u.sample(&mut rng);
/// assert!((2.0..4.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if lo.is_finite() && hi.is_finite() && lo < hi {
            Ok(Uniform { lo, hi })
        } else {
            Err(ParamError::new(format!(
                "uniform bounds must be finite with lo < hi, got [{lo}, {hi})"
            )))
        }
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound (exclusive).
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The mean `(lo + hi) / 2`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }
}

/// Discrete uniform distribution on the inclusive integer range `lo..=hi`.
///
/// The paper draws the number of hits per Web page from `U{5..15}`.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{DiscreteUniform, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let hits = DiscreteUniform::new(5, 15).unwrap();
/// let mut rng = RngStreams::new(1).stream("hits");
/// let h = hits.sample(&mut rng);
/// assert!((5..=15).contains(&h));
/// assert_eq!(hits.mean(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscreteUniform {
    lo: u64,
    hi: u64,
}

impl DiscreteUniform {
    /// Creates a discrete uniform distribution on `lo..=hi`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Result<Self, ParamError> {
        if lo <= hi {
            Ok(DiscreteUniform { lo, hi })
        } else {
            Err(ParamError::new(format!("discrete uniform requires lo <= hi, got {lo}..={hi}")))
        }
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper bound (inclusive).
    #[must_use]
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The mean `(lo + hi) / 2`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo as f64 + self.hi as f64)
    }
}

impl Distribution<u64> for DiscreteUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(self.lo..=self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::mean_of;
    use super::*;
    use crate::RngStreams;

    #[test]
    fn continuous_mean() {
        let d = Uniform::new(10.0, 30.0).unwrap();
        let m = mean_of(&d, 100_000);
        assert!((m - 20.0).abs() < 0.1, "sample mean {m}");
    }

    #[test]
    fn continuous_bounds_respected() {
        let d = Uniform::new(-1.0, 1.0).unwrap();
        let mut rng = RngStreams::new(2).stream("u");
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn continuous_rejects_bad_bounds() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn discrete_covers_support() {
        let d = DiscreteUniform::new(5, 15).unwrap();
        let mut rng = RngStreams::new(3).stream("du");
        let mut seen = [false; 16];
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((5..=15).contains(&x));
            seen[x as usize] = true;
        }
        assert!(seen[5..=15].iter().all(|&s| s), "all 11 values should appear in 10k draws");
    }

    #[test]
    fn discrete_singleton() {
        let d = DiscreteUniform::new(7, 7).unwrap();
        let mut rng = RngStreams::new(4).stream("one");
        assert_eq!(d.sample(&mut rng), 7);
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn discrete_rejects_inverted() {
        assert!(DiscreteUniform::new(3, 2).is_err());
    }
}
