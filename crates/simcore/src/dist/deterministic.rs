//! Degenerate (constant) distribution.

use rand::Rng;

use super::Distribution;

/// A "distribution" that always returns the same value.
///
/// Useful for ablations (e.g. deterministic service times) and for plugging
/// constants into APIs that expect a [`Distribution`].
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Deterministic, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let d = Deterministic::new(7.5);
/// let mut rng = RngStreams::new(1).stream("c");
/// assert_eq!(d.sample(&mut rng), 7.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deterministic<T>(T);

impl<T: Clone> Deterministic<T> {
    /// Wraps `value` as a constant distribution.
    #[must_use]
    pub fn new(value: T) -> Self {
        Deterministic(value)
    }

    /// The wrapped value.
    #[must_use]
    pub fn value(&self) -> &T {
        &self.0
    }
}

impl<T: Clone> Distribution<T> for Deterministic<T> {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngStreams;

    #[test]
    fn always_same_value() {
        let d = Deterministic::new(3u64);
        let mut rng = RngStreams::new(1).stream("det");
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3);
        }
        assert_eq!(*d.value(), 3);
    }

    #[test]
    fn works_for_non_numeric_types() {
        let d = Deterministic::new("hello");
        let mut rng = RngStreams::new(1).stream("det2");
        assert_eq!(d.sample(&mut rng), "hello");
    }
}
