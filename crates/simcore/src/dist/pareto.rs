//! Pareto distribution.

use rand::Rng;

use super::{Distribution, ParamError};

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`:
/// `P(X > x) = (x_min / x)^alpha` for `x >= x_min`.
///
/// The canonical heavy-tailed law for Web workloads; provided for extension
/// scenarios (long-tailed per-domain request bursts).
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Pareto, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let d = Pareto::new(1.0, 2.5).unwrap();
/// let mut rng = RngStreams::new(1).stream("p");
/// assert!(d.sample(&mut rng) >= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `x_min > 0` and `alpha > 0`, both finite.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, ParamError> {
        if x_min.is_finite() && x_min > 0.0 && alpha.is_finite() && alpha > 0.0 {
            Ok(Pareto { x_min, alpha })
        } else {
            Err(ParamError::new(format!(
                "pareto requires x_min > 0 and alpha > 0, got x_min={x_min}, alpha={alpha}"
            )))
        }
    }

    /// The mean, or `None` when `alpha <= 1` (infinite mean).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.x_min / (1.0 - u).powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::mean_of;
    use super::*;

    #[test]
    fn mean_matches_when_finite() {
        let d = Pareto::new(2.0, 3.0).unwrap(); // mean = 3
        let m = mean_of(&d, 400_000);
        assert!((m - 3.0).abs() < 0.05, "sample mean {m}");
        assert_eq!(d.mean(), Some(3.0));
    }

    #[test]
    fn infinite_mean_reported() {
        assert_eq!(Pareto::new(1.0, 1.0).unwrap().mean(), None);
        assert_eq!(Pareto::new(1.0, 0.5).unwrap().mean(), None);
    }

    #[test]
    fn support_respects_x_min() {
        let d = Pareto::new(5.0, 1.2).unwrap();
        let mut rng = crate::RngStreams::new(3).stream("p2");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(f64::NAN, 1.0).is_err());
    }
}
