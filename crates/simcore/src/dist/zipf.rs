//! Zipf distribution over ranked categories.

use rand::Rng;

use super::{Discrete, Distribution, ParamError};

/// Zipf distribution over ranks `0..n`: `P(rank i) ∝ 1 / (i+1)^s`.
///
/// The paper partitions the 500 clients among the `K` connected domains by a
/// *pure* Zipf law (`s = 1`), citing the observation that ~75% of client
/// requests come from only 10% of domains. Sampling is O(1) through an
/// internal alias table.
///
/// # Examples
///
/// ```
/// use geodns_simcore::dist::{Zipf, Distribution};
/// use geodns_simcore::RngStreams;
///
/// let z = Zipf::new(20, 1.0).unwrap(); // the paper's default: K = 20 domains
/// let mut rng = RngStreams::new(1).stream("zipf");
/// let rank = z.sample(&mut rng);
/// assert!(rank < 20);
/// assert!(z.prob(0) > z.prob(19), "rank 0 is the most popular");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: usize,
    exponent: f64,
    inner: Discrete,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with the given exponent.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `exponent` is not finite and
    /// non-negative (exponent 0 degenerates to the uniform distribution,
    /// which is allowed and used by the paper's "ideal" envelope).
    pub fn new(n: usize, exponent: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf needs at least one rank"));
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(ParamError::new(format!(
                "zipf exponent must be finite and >= 0, got {exponent}"
            )));
        }
        let weights = Self::weights(n, exponent);
        let inner = Discrete::from_weights(&weights)?;
        Ok(Zipf { n, exponent, inner })
    }

    /// The unnormalized weight vector `1/(i+1)^s` for `i in 0..n`.
    #[must_use]
    pub fn weights(n: usize, exponent: f64) -> Vec<f64> {
        (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(exponent)).collect()
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The skew exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The normalized probability of rank `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn prob(&self, i: usize) -> f64 {
        self.inner.prob(i)
    }

    /// The generalized harmonic number `H_{n,s}` normalizing this law.
    #[must_use]
    pub fn harmonic(&self) -> f64 {
        (1..=self.n).map(|i| 1.0 / (i as f64).powf(self.exponent)).sum()
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.inner.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngStreams;

    #[test]
    fn pure_zipf_probabilities() {
        let z = Zipf::new(4, 1.0).unwrap();
        let h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((z.prob(0) - 1.0 / h).abs() < 1e-12);
        assert!((z.prob(3) - 0.25 / h).abs() < 1e-12);
        assert!((z.harmonic() - h).abs() < 1e-12);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for i in 0..10 {
            assert!((z.prob(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn ranks_are_monotonically_less_likely() {
        let z = Zipf::new(50, 1.0).unwrap();
        for i in 1..50 {
            assert!(z.prob(i) < z.prob(i - 1));
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let z = Zipf::new(20, 1.0).unwrap();
        let mut rng = RngStreams::new(0x21).stream("zipf");
        let mut counts = [0usize; 20];
        let n = 300_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let f = count as f64 / n as f64;
            assert!((f - z.prob(i)).abs() < 0.01, "rank {i}: {f} vs {}", z.prob(i));
        }
    }

    #[test]
    fn paper_skew_property_holds() {
        // "75% of the client requests come from only 10% of the domains":
        // with pure Zipf over 100 domains the top 10 carry H_10/H_100 ≈ 56%;
        // the paper's statistic includes request-rate skew too, but the top
        // ranks must dominate. Check top-10% carries more than 5x its
        // uniform share.
        let z = Zipf::new(100, 1.0).unwrap();
        let top: f64 = (0..10).map(|i| z.prob(i)).sum();
        assert!(top > 0.5, "top 10% of ranks carry {top}");
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
    }
}
