//! Random-variate distributions for the workload and service models.
//!
//! Implemented from scratch (rather than via `rand_distr`) because the
//! substrate rule of this reproduction is to build dependencies ourselves;
//! each sampler is unit- and property-tested against its analytic moments.
//!
//! All samplers implement [`Distribution`], mirroring the shape of
//! `rand::distributions::Distribution` but local to this crate so that model
//! code depends only on `geodns-simcore`.

mod deterministic;
mod discrete;
mod empirical;
mod exponential;
mod geometric;
mod lognormal;
mod normal;
mod pareto;
mod uniform;
mod zipf;
mod zipf_alias;

pub use deterministic::Deterministic;
pub use discrete::Discrete;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use geometric::Geometric;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use pareto::Pareto;
pub use uniform::{DiscreteUniform, Uniform};
pub use zipf::Zipf;
pub use zipf_alias::ZipfAlias;

use rand::Rng;
use std::fmt;

/// A source of independent, identically distributed samples.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draws `n` samples into a `Vec`.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<T>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Error raised when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
pub(crate) mod test_util {
    use super::Distribution;
    use crate::RngStreams;

    /// Sample mean over `n` draws from a fresh deterministic stream.
    pub fn mean_of<D: Distribution<f64>>(d: &D, n: usize) -> f64 {
        let mut rng = RngStreams::new(0xDEAD_BEEF).stream("dist-test");
        let mut acc = 0.0;
        for _ in 0..n {
            acc += d.sample(&mut rng);
        }
        acc / n as f64
    }

    /// Sample variance over `n` draws.
    pub fn var_of<D: Distribution<f64>>(d: &D, n: usize) -> f64 {
        let mut rng = RngStreams::new(0xFEED_F00D).stream("dist-test-var");
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }
}
