//! MSER-5 initial-transient (warm-up) detection.
//!
//! White's Marginal Standard Error Rule: batch the output series into
//! groups of 5, then pick the truncation point that minimizes the marginal
//! standard error of the retained mean. The classic automated answer to
//! "how much warm-up should a steady-state simulation discard?" — used
//! here to justify the repository's 30-minute default against the paper's
//! unstated choice.

/// The result of an MSER-5 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MserResult {
    /// Number of *raw observations* to discard from the front.
    pub truncate: usize,
    /// The mean of the retained observations.
    pub retained_mean: f64,
    /// The MSER statistic (squared marginal standard error) at the chosen
    /// truncation.
    pub statistic: f64,
}

/// Runs MSER-5 on an output series.
///
/// Returns `None` when the series is too short to batch (fewer than 10
/// raw observations → 2 batches). Following standard practice, truncation
/// points beyond half the series are not considered (a minimum that keeps
/// the estimator from chasing end-of-run noise).
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::mser5;
///
/// // A decaying transient on top of a flat steady state.
/// let series: Vec<f64> = (0..500)
///     .map(|i| 1.0 + 10.0 * (-(i as f64) / 20.0).exp())
///     .collect();
/// let result = mser5(&series).unwrap();
/// assert!(result.truncate >= 30, "transient must be cut, got {}", result.truncate);
/// assert!((result.retained_mean - 1.0).abs() < 0.2);
/// ```
#[must_use]
pub fn mser5(series: &[f64]) -> Option<MserResult> {
    const B: usize = 5;
    let n_batches = series.len() / B;
    if n_batches < 2 {
        return None;
    }
    let batches: Vec<f64> =
        (0..n_batches).map(|i| series[i * B..(i + 1) * B].iter().sum::<f64>() / B as f64).collect();

    let max_trunc = n_batches / 2;
    let mut best: Option<(usize, f64, f64)> = None; // (d, statistic, mean)
    for d in 0..=max_trunc {
        let retained = &batches[d..];
        let m = retained.len() as f64;
        let mean = retained.iter().sum::<f64>() / m;
        let ss: f64 = retained.iter().map(|x| (x - mean) * (x - mean)).sum();
        let stat = ss / (m * m);
        if best.is_none_or(|(_, s, _)| stat < s) {
            best = Some((d, stat, mean));
        }
    }
    best.map(|(d, statistic, retained_mean)| MserResult {
        truncate: d * B,
        retained_mean,
        statistic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential};
    use crate::RngStreams;

    #[test]
    fn stationary_series_needs_no_truncation() {
        let d = Exponential::with_mean(2.0);
        let mut rng = RngStreams::new(0x1157).stream("mser");
        let series: Vec<f64> = (0..1000).map(|_| d.sample(&mut rng)).collect();
        let r = mser5(&series).unwrap();
        // Some small truncation may win by chance, but not a big one.
        assert!(r.truncate <= 100, "truncated {} of a stationary series", r.truncate);
        assert!((r.retained_mean - 2.0).abs() < 0.2);
    }

    #[test]
    fn transient_is_detected() {
        let d = Exponential::with_mean(1.0);
        let mut rng = RngStreams::new(0x1158).stream("mser");
        // 100 inflated observations, then stationary around 1.
        let series: Vec<f64> = (0..1000)
            .map(|i| {
                let base = d.sample(&mut rng);
                if i < 100 {
                    base + 20.0
                } else {
                    base
                }
            })
            .collect();
        let r = mser5(&series).unwrap();
        assert!(
            (95..=160).contains(&r.truncate),
            "should cut ≈100 observations, cut {}",
            r.truncate
        );
        assert!((r.retained_mean - 1.0).abs() < 0.15);
    }

    #[test]
    fn too_short_series_yields_none() {
        assert!(mser5(&[1.0; 9]).is_none());
        assert!(mser5(&[]).is_none());
        assert!(mser5(&[1.0; 10]).is_some());
    }

    #[test]
    fn constant_series_is_trivial() {
        let r = mser5(&[7.0; 100]).unwrap();
        assert_eq!(r.truncate, 0);
        assert_eq!(r.retained_mean, 7.0);
        assert_eq!(r.statistic, 0.0);
    }

    #[test]
    fn truncation_capped_at_half() {
        // A series that keeps drifting: MSER must not eat more than half.
        let series: Vec<f64> = (0..200).map(f64::from).collect();
        let r = mser5(&series).unwrap();
        assert!(r.truncate <= 100);
    }
}
