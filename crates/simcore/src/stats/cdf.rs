//! Exact empirical CDF over retained samples.

use serde::{Deserialize, Serialize};

/// An exact empirical cumulative distribution function.
///
/// Unlike [`Histogram`](super::Histogram), this retains every sample, so
/// quantiles and probabilities are exact — use it when the sample count is
/// modest (e.g. the per-interval max-utilization series of a single run:
/// 5 h / 8 s ≈ 2250 points).
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::Cdf;
///
/// let mut cdf = Cdf::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     cdf.record(x);
/// }
/// assert_eq!(cdf.prob_lt(2.5), 0.5);
/// assert_eq!(cdf.prob_le(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: std::cell::Cell<bool>,
}

impl Cdf {
    /// Creates an empty CDF.
    #[must_use]
    pub fn new() -> Self {
        Cdf { samples: Vec::new(), sorted: std::cell::Cell::new(true) }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN samples, which have no place in an ordering.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "CDF samples must not be NaN");
        self.samples.push(x);
        self.sorted.set(false);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted.get() {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted.set(true);
        }
    }

    /// `P(X < x)` — the paper's "cumulative frequency" (fraction of
    /// observation instants strictly below `x`). Returns 0 when empty.
    #[must_use]
    pub fn prob_lt(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s < x);
        idx as f64 / self.samples.len() as f64
    }

    /// `P(X <= x)`. Returns 0 when empty.
    #[must_use]
    pub fn prob_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The exact `q`-quantile (smallest sample `s` with `P(X <= s) >= q`),
    /// or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.samples[idx])
    }

    /// The sample mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The maximum sample, or `None` when empty.
    #[must_use]
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Evaluates the CDF at each point of `xs`, returning `(x, P(X < x))`
    /// pairs — the series plotted in the paper's Figures 1 and 2.
    #[must_use]
    pub fn curve(&mut self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.prob_lt(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaviour() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.prob_lt(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.max(), None);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn strict_vs_weak_inequality() {
        let mut c = Cdf::new();
        for x in [1.0, 1.0, 2.0, 3.0] {
            c.record(x);
        }
        assert_eq!(c.prob_lt(1.0), 0.0);
        assert_eq!(c.prob_le(1.0), 0.5);
        assert_eq!(c.prob_lt(3.0), 0.75);
        assert_eq!(c.prob_le(3.0), 1.0);
    }

    #[test]
    fn quantiles_exact() {
        let mut c = Cdf::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            c.record(x);
        }
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(0.2), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.max(), Some(5.0));
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut c = Cdf::new();
        c.record(2.0);
        assert_eq!(c.prob_lt(3.0), 1.0);
        c.record(4.0);
        assert_eq!(c.prob_lt(3.0), 0.5, "re-sorts after new samples");
    }

    #[test]
    fn curve_matches_pointwise_queries() {
        let mut c = Cdf::new();
        for i in 0..10 {
            c.record(f64::from(i));
        }
        let pts = c.curve(&[0.0, 5.0, 10.0]);
        assert_eq!(pts, vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        Cdf::new().record(f64::NAN);
    }
}
