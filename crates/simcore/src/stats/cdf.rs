//! Exact empirical CDF over retained samples, with an optional memory cap.

use serde::{Deserialize, Serialize};

use crate::split_mix_64;

/// An exact empirical cumulative distribution function.
///
/// Unlike [`Histogram`](super::Histogram), this retains every sample, so
/// quantiles and probabilities are exact — use it when the sample count is
/// modest (e.g. the per-interval max-utilization series of a single run:
/// 5 h / 8 s ≈ 2250 points).
///
/// For runs whose sample count is *not* modest (the scale experiments record
/// one perceived-latency sample per page hit — hundreds of millions at 1M
/// clients), construct with [`with_cap`](Cdf::with_cap): samples beyond the
/// cap go through a seeded reservoir (Vitter's Algorithm R), so memory stays
/// bounded at `cap` while quantiles remain unbiased estimates. Below the cap
/// the retained set — and therefore every quantile — is *byte-identical* to
/// the uncapped CDF, which is pinned by test.
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::Cdf;
///
/// let mut cdf = Cdf::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     cdf.record(x);
/// }
/// assert_eq!(cdf.prob_lt(2.5), 0.5);
/// assert_eq!(cdf.prob_le(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
///
/// let mut capped = Cdf::with_cap(1000, 42);
/// for x in 0..1_000_000 {
///     capped.record(f64::from(x));
/// }
/// assert_eq!(capped.count(), 1000, "memory bounded");
/// assert_eq!(capped.seen(), 1_000_000, "every sample counted");
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: std::cell::Cell<bool>,
    /// Retained-sample cap; 0 means unlimited (exact mode).
    #[serde(skip)]
    cap: usize,
    /// Total samples recorded, including those the reservoir dropped.
    #[serde(skip)]
    seen: u64,
    /// splitmix64 state driving reservoir replacement decisions. Dedicated
    /// to this CDF so capping never perturbs the model's named RNG streams.
    #[serde(skip)]
    rng_state: u64,
}

impl Cdf {
    /// Creates an empty CDF that retains every sample exactly.
    #[must_use]
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: std::cell::Cell::new(true),
            cap: 0,
            seen: 0,
            rng_state: 0,
        }
    }

    /// Creates an empty CDF that retains at most `cap` samples: exact below
    /// the cap, a seeded uniform reservoir beyond it. `cap = 0` means
    /// unlimited (identical to [`new`](Cdf::new)).
    #[must_use]
    pub fn with_cap(cap: usize, seed: u64) -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: std::cell::Cell::new(true),
            cap,
            seen: 0,
            rng_state: seed,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN samples, which have no place in an ordering.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "CDF samples must not be NaN");
        self.seen += 1;
        if self.cap == 0 || self.samples.len() < self.cap {
            self.samples.push(x);
            self.sorted.set(false);
        } else {
            // Algorithm R: the t-th sample replaces a random reservoir slot
            // with probability cap/t (modulo bias is < cap/2^64 — nil).
            self.rng_state = self.rng_state.wrapping_add(1);
            let j = split_mix_64(self.rng_state) % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
                self.sorted.set(false);
            }
        }
    }

    /// Number of *retained* samples (≤ [`seen`](Cdf::seen) when capped).
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Total number of samples recorded, including any the reservoir
    /// replaced. Equals [`count`](Cdf::count) for uncapped CDFs.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained-sample cap (0 = unlimited).
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Retained-sample heap footprint in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<f64>()
    }

    /// Merges another CDF's retained samples into this one (parallel-shard
    /// friendly). Quantiles of the merged set are order-invariant: samples
    /// are re-sorted on the next query, so merging shards in any order
    /// yields the same multiset. Counts of *seen* samples add. The merged
    /// set is allowed to exceed `cap` — shard merging happens once, at
    /// harvest, where `shards × cap` is the intended bound.
    pub fn merge(&mut self, other: &Cdf) {
        if other.samples.is_empty() && other.seen == 0 {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.seen += other.seen;
        self.sorted.set(false);
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted.get() {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted.set(true);
        }
    }

    /// `P(X < x)` — the paper's "cumulative frequency" (fraction of
    /// observation instants strictly below `x`). Returns 0 when empty.
    #[must_use]
    pub fn prob_lt(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s < x);
        idx as f64 / self.samples.len() as f64
    }

    /// `P(X <= x)`. Returns 0 when empty.
    #[must_use]
    pub fn prob_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The exact `q`-quantile (smallest sample `s` with `P(X <= s) >= q`),
    /// or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.samples[idx])
    }

    /// The sample mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The maximum sample, or `None` when empty.
    #[must_use]
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Evaluates the CDF at each point of `xs`, returning `(x, P(X < x))`
    /// pairs — the series plotted in the paper's Figures 1 and 2.
    #[must_use]
    pub fn curve(&mut self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.prob_lt(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaviour() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.prob_lt(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.max(), None);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn strict_vs_weak_inequality() {
        let mut c = Cdf::new();
        for x in [1.0, 1.0, 2.0, 3.0] {
            c.record(x);
        }
        assert_eq!(c.prob_lt(1.0), 0.0);
        assert_eq!(c.prob_le(1.0), 0.5);
        assert_eq!(c.prob_lt(3.0), 0.75);
        assert_eq!(c.prob_le(3.0), 1.0);
    }

    #[test]
    fn quantiles_exact() {
        let mut c = Cdf::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            c.record(x);
        }
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(0.2), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(5.0));
        assert_eq!(c.max(), Some(5.0));
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut c = Cdf::new();
        c.record(2.0);
        assert_eq!(c.prob_lt(3.0), 1.0);
        c.record(4.0);
        assert_eq!(c.prob_lt(3.0), 0.5, "re-sorts after new samples");
    }

    #[test]
    fn curve_matches_pointwise_queries() {
        let mut c = Cdf::new();
        for i in 0..10 {
            c.record(f64::from(i));
        }
        let pts = c.curve(&[0.0, 5.0, 10.0]);
        assert_eq!(pts, vec![(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        Cdf::new().record(f64::NAN);
    }

    #[test]
    fn below_cap_is_byte_identical_to_exact() {
        let mut exact = Cdf::new();
        let mut capped = Cdf::with_cap(2250, 0xC4A7);
        let mut x = 0.1_f64;
        for _ in 0..2250 {
            x = (x * 1.37 + 0.11) % 5.0;
            exact.record(x);
            capped.record(x);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(
                exact.quantile(q).unwrap().to_bits(),
                capped.quantile(q).unwrap().to_bits(),
                "quantile {q}"
            );
        }
        assert_eq!(exact.prob_lt(2.5).to_bits(), capped.prob_lt(2.5).to_bits());
        assert_eq!(exact.mean().to_bits(), capped.mean().to_bits());
        assert_eq!(capped.seen(), 2250);
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_representative() {
        let cap = 1000;
        let mut c = Cdf::with_cap(cap, 7);
        let n: u32 = 200_000;
        for i in 0..n {
            c.record(f64::from(i));
        }
        assert_eq!(c.count(), cap);
        assert_eq!(c.seen(), u64::from(n));
        assert!(c.bytes() <= cap * 8 * 2, "retained {} bytes", c.bytes());
        // Uniform over [0, n): the reservoir median should sit near n/2.
        let median = c.quantile(0.5).unwrap();
        let mid = f64::from(n) / 2.0;
        assert!((median - mid).abs() < mid * 0.1, "median {median} vs {mid}");
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let run = |seed| {
            let mut c = Cdf::with_cap(100, seed);
            for i in 0..10_000 {
                c.record(f64::from(i));
            }
            c.quantile(0.5).unwrap()
        };
        assert_eq!(run(1).to_bits(), run(1).to_bits());
        assert_ne!(run(1).to_bits(), run(2).to_bits(), "different seeds, different reservoir");
    }

    #[test]
    fn merge_is_order_invariant_and_counts_add() {
        let mut a = Cdf::new();
        let mut b = Cdf::new();
        for i in 0..50 {
            a.record(f64::from(i));
            b.record(f64::from(100 - i));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.seen(), 100);
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(ab.quantile(q).unwrap().to_bits(), ba.quantile(q).unwrap().to_bits());
        }
        let mut empty = Cdf::new();
        empty.merge(&Cdf::new());
        assert!(empty.is_empty());
    }
}
