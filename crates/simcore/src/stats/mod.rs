//! Online statistics for summarizing simulation runs.
//!
//! The paper's headline metric is the *cumulative frequency of the maximum
//! server utilization*: the fraction of observation instants at which every
//! server's utilization stayed below a level `x`. That is a CDF over a
//! sampled time series, served here by [`Histogram`]. The supporting cast:
//!
//! * [`Tally`] — count/mean/variance/min/max over samples (Welford).
//! * [`TimeWeighted`] — time-averaged piecewise-constant signals (queue
//!   lengths, utilizations).
//! * [`P2Quantile`] — constant-memory quantile estimation (Jain & Chlamtac).
//! * [`BatchMeans`] — 95% confidence intervals for steady-state means, the
//!   method behind the paper's "CI within 4% of the mean" statement.
//! * [`Cdf`] — exact empirical CDF over retained samples.

mod autocorr;
mod batch;
mod cdf;
mod histogram;
mod mser;
mod quantile;
mod student_t;
mod tally;
mod timeweighted;

pub use autocorr::{acf, autocorrelation, suggest_batch_size};
pub use batch::{BatchMeans, ConfidenceInterval};
pub use cdf::Cdf;
pub use histogram::Histogram;
pub use mser::{mser5, MserResult};
pub use quantile::P2Quantile;
pub use student_t::t_critical_95;
pub use tally::Tally;
pub use timeweighted::TimeWeighted;
