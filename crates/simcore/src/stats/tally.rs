//! Sample tally with Welford's online moments.

use serde::{Deserialize, Serialize};

/// Count, mean, variance, min and max of a stream of samples, computed
/// online in O(1) memory with Welford's numerically stable recurrence.
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::Tally;
///
/// let mut t = Tally::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     t.record(x);
/// }
/// assert_eq!(t.count(), 8);
/// assert_eq!(t.mean(), 5.0);
/// assert_eq!(t.min(), Some(2.0));
/// assert_eq!(t.max(), Some(9.0));
/// assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean, or `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance, or `0.0` with fewer than two samples.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another tally into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut t = Tally::new();
        t.record(3.5);
        assert_eq!(t.mean(), 3.5);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), Some(3.5));
        assert_eq!(t.max(), Some(3.5));
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| (f64::from(i) * 0.37).sin() * 10.0).collect();
        let mut t = Tally::new();
        for &x in &data {
            t.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((t.mean() - mean).abs() < 1e-10);
        assert!((t.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = Tally::new();
        let mut b = Tally::new();
        let mut whole = Tally::new();
        for x in a_data {
            a.record(x);
            whole.record(x);
        }
        for x in b_data {
            b.record(x);
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut t = Tally::new();
        t.record(5.0);
        let before = t.clone();
        t.merge(&Tally::new());
        assert_eq!(t, before);

        let mut empty = Tally::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
