//! Sample autocorrelation of an output series.
//!
//! Batch-means confidence intervals are only valid once batch means are
//! roughly uncorrelated; the autocorrelation function is the diagnostic.
//! The per-interval maximum-utilization series this repository summarizes
//! is strongly positively correlated at short lags (queues have memory),
//! which is exactly why [`BatchMeans`](super::BatchMeans) batches before
//! forming intervals.

/// The lag-`k` sample autocorrelation of `series`, the standard biased
/// estimator `r_k = Σ (x_t − x̄)(x_{t+k} − x̄) / Σ (x_t − x̄)²`.
///
/// Returns `None` when the series is shorter than `k + 2` or has zero
/// variance.
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::autocorrelation;
///
/// let alternating: Vec<f64> = (0..100).map(|i| f64::from(i % 2)).collect();
/// let r1 = autocorrelation(&alternating, 1).unwrap();
/// assert!(r1 < -0.9, "period-2 series anti-correlates at lag 1: {r1}");
/// ```
#[must_use]
pub fn autocorrelation(series: &[f64], k: usize) -> Option<f64> {
    let n = series.len();
    if n < k + 2 {
        return None;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom <= 0.0 {
        return None;
    }
    let numer: f64 = (0..n - k).map(|t| (series[t] - mean) * (series[t + k] - mean)).sum();
    Some(numer / denom)
}

/// The autocorrelation function up to `max_lag`, skipping lags the series
/// cannot support.
#[must_use]
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag).map_while(|k| autocorrelation(series, k)).collect()
}

/// A heuristic batch size for batch-means analysis: the smallest lag at
/// which the autocorrelation drops below `threshold` (commonly 0.1),
/// doubled for safety; falls back to `series.len() / 20` when the series
/// never decorrelates within the first `series.len() / 4` lags.
///
/// Returns `None` for series too short to analyze (< 20 samples).
#[must_use]
pub fn suggest_batch_size(series: &[f64], threshold: f64) -> Option<usize> {
    if series.len() < 20 {
        return None;
    }
    let max_lag = series.len() / 4;
    for k in 1..=max_lag {
        match autocorrelation(series, k) {
            Some(r) if r.abs() < threshold => return Some((2 * k).max(2)),
            Some(_) => {}
            None => break,
        }
    }
    Some((series.len() / 20).max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential};
    use crate::RngStreams;

    #[test]
    fn iid_series_is_uncorrelated() {
        let d = Exponential::with_mean(1.0);
        let mut rng = RngStreams::new(0xACF).stream("acf");
        let series: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        for k in 1..5 {
            let r = autocorrelation(&series, k).unwrap();
            assert!(r.abs() < 0.03, "lag {k}: r = {r}");
        }
    }

    #[test]
    fn ar1_series_shows_geometric_decay() {
        // x_{t+1} = 0.8 x_t + noise: r_k ≈ 0.8^k.
        let d = Exponential::with_mean(1.0);
        let mut rng = RngStreams::new(0xAC1).stream("ar1");
        let mut x = 0.0;
        let series: Vec<f64> = (0..50_000)
            .map(|_| {
                x = 0.8 * x + d.sample(&mut rng);
                x
            })
            .collect();
        let r1 = autocorrelation(&series, 1).unwrap();
        let r3 = autocorrelation(&series, 3).unwrap();
        assert!((r1 - 0.8).abs() < 0.03, "r1 = {r1}");
        assert!((r3 - 0.512).abs() < 0.05, "r3 = {r3}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), None, "too short");
        assert_eq!(autocorrelation(&[5.0; 100], 1), None, "zero variance");
        assert!(autocorrelation(&[1.0, 2.0, 3.0], 1).is_some());
    }

    #[test]
    fn acf_length_tracks_series() {
        let series: Vec<f64> = (0..30).map(f64::from).collect();
        let f = acf(&series, 5);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn batch_size_suggestions() {
        // IID: decorrelated at lag 1 → suggest 2.
        let d = Exponential::with_mean(1.0);
        let mut rng = RngStreams::new(7).stream("bs");
        let iid: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(suggest_batch_size(&iid, 0.1), Some(2));

        // AR(1) with 0.8: |r_k| < 0.1 around k = ln(0.1)/ln(0.8) ≈ 10.
        let mut x = 0.0;
        let ar1: Vec<f64> = (0..50_000)
            .map(|_| {
                x = 0.8 * x + d.sample(&mut rng);
                x
            })
            .collect();
        let suggested = suggest_batch_size(&ar1, 0.1).unwrap();
        assert!((12..=80).contains(&suggested), "suggested {suggested}");

        assert_eq!(suggest_batch_size(&[1.0; 10], 0.1), None, "too short");
    }
}
