//! Two-sided 95% Student-t critical values.

/// Two-sided 95% critical value of the Student-t distribution with `df`
/// degrees of freedom.
///
/// Exact table values for `df <= 30`, the classic interpolation anchors up
/// to 120, then the normal limit `1.96`. Enough for batch-means confidence
/// intervals, where `df` is the batch count minus one.
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::t_critical_95;
///
/// assert!((t_critical_95(1) - 12.706).abs() < 1e-3);
/// assert!((t_critical_95(10) - 2.228).abs() < 1e-3);
/// assert!((t_critical_95(1_000_000) - 1.96).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if `df == 0`.
#[must_use]
pub fn t_critical_95(df: u64) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 1–10
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11–20
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21–30
    ];
    match df {
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_decreasing() {
        let mut prev = t_critical_95(1);
        for df in 2..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t({df}) = {t} > t({}) = {prev}", df - 1);
            prev = t;
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(t_critical_95(5), 2.571);
        assert_eq!(t_critical_95(30), 2.042);
        assert_eq!(t_critical_95(50), 2.000);
        assert_eq!(t_critical_95(10_000), 1.96);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_df_panics() {
        let _ = t_critical_95(0);
    }
}
