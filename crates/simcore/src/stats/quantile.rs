//! P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

/// Constant-memory estimator of one quantile of a stream.
///
/// Maintains five markers whose heights are adjusted with a piecewise-
/// parabolic (P²) update; after a modest number of samples the middle marker
/// approximates the target quantile without storing the stream.
///
/// # Accuracy caveat
///
/// The P² update assumes the stream is close to exchangeable. On strongly
/// autocorrelated streams (e.g. response times during congestion episodes,
/// where thousands of consecutive samples come from the same busy period)
/// the marker *positions* converge to the desired ranks while the marker
/// *heights* stay stuck at values interpolated during one regime, and the
/// estimate can be off by a large factor. For such streams, or whenever the
/// sample count is modest enough to retain, prefer the exact
/// [`Cdf`](super::Cdf).
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5).unwrap();
/// for i in 0..10_001 {
///     q.record(f64::from(i));
/// }
/// let med = q.value().unwrap();
/// assert!((med - 5000.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < p < 1`.
    pub fn new(p: f64) -> Result<Self, String> {
        if !(p > 0.0 && p < 1.0) {
            return Err(format!("P2 quantile must be in (0,1), got {p}"));
        }
        Ok(P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        })
    }

    /// The target quantile `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` with no samples.
    ///
    /// With fewer than five samples, falls back to the exact order statistic
    /// of what has been seen.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let idx = ((self.p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            return Some(sorted[idx]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential, Uniform};
    use crate::RngStreams;

    #[test]
    fn uniform_median() {
        let mut q = P2Quantile::new(0.5).unwrap();
        let d = Uniform::new(0.0, 1.0).unwrap();
        let mut rng = RngStreams::new(0x9).stream("p2");
        for _ in 0..100_000 {
            q.record(d.sample(&mut rng));
        }
        let est = q.value().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn exponential_p95() {
        let mut q = P2Quantile::new(0.95).unwrap();
        let d = Exponential::new(1.0);
        let mut rng = RngStreams::new(0xA).stream("p2e");
        for _ in 0..200_000 {
            q.record(d.sample(&mut rng));
        }
        let exact = -(0.05f64).ln(); // ≈ 2.9957
        let est = q.value().unwrap();
        assert!((est - exact).abs() / exact < 0.05, "p95 estimate {est} vs {exact}");
    }

    #[test]
    fn few_samples_fall_back_to_order_statistic() {
        let mut q = P2Quantile::new(0.5).unwrap();
        q.record(10.0);
        q.record(2.0);
        q.record(6.0);
        assert_eq!(q.value(), Some(6.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn empty_has_no_value() {
        let q = P2Quantile::new(0.9).unwrap();
        assert_eq!(q.value(), None);
    }

    #[test]
    fn rejects_degenerate_quantiles() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(f64::NAN).is_err());
    }

    #[test]
    fn monotone_stream() {
        let mut q = P2Quantile::new(0.25).unwrap();
        for i in 0..40_000 {
            q.record(f64::from(i));
        }
        let est = q.value().unwrap();
        assert!((est - 10_000.0).abs() < 500.0, "q25 of 0..40000 is ≈10000, got {est}");
    }
}
