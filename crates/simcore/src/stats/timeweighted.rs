//! Time-weighted average of a piecewise-constant signal.

use crate::SimTime;

/// Time-averaged statistics for a piecewise-constant signal such as a queue
/// length or an instantaneous utilization.
///
/// Call [`update`](TimeWeighted::update) whenever the signal changes; the
/// accumulator weights each value by how long it was held.
///
/// # Examples
///
/// ```
/// use geodns_simcore::{SimTime, stats::TimeWeighted};
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::from_secs(10.0), 1.0); // signal was 0 for 10 s
/// tw.update(SimTime::from_secs(30.0), 0.0); // signal was 1 for 20 s
/// let avg = tw.time_average(SimTime::from_secs(40.0)); // then 0 for 10 s
/// assert!((avg - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    current: f64,
    weighted_sum: f64,
    start: SimTime,
    max: f64,
    min: f64,
}

impl TimeWeighted {
    /// Starts tracking a signal whose value is `initial` at time `start`.
    #[must_use]
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            current: initial,
            weighted_sum: 0.0,
            start,
            max: initial,
            min: initial,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (signals cannot change
    /// in the past).
    pub fn update(&mut self, now: SimTime, value: f64) {
        assert!(now >= self.last_time, "time-weighted update must move forward");
        self.weighted_sum += self.current * now.since(self.last_time);
        self.last_time = now;
        self.current = value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// The current value of the signal.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The time average over `[start, now]`.
    ///
    /// Returns the current value if no time has elapsed.
    #[must_use]
    pub fn time_average(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.start);
        if elapsed <= 0.0 {
            return self.current;
        }
        let tail = self.current * now.since(self.last_time);
        (self.weighted_sum + tail) / elapsed
    }

    /// Largest value the signal has taken.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Smallest value the signal has taken.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Restarts the accumulation window at `now`, keeping the current value
    /// (used to discard the warm-up transient).
    pub fn reset_window(&mut self, now: SimTime) {
        assert!(now >= self.last_time, "cannot reset into the past");
        self.last_time = now;
        self.start = now;
        self.weighted_sum = 0.0;
        self.max = self.current;
        self.min = self.current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_signal_averages_to_itself() {
        let tw = TimeWeighted::new(t(0.0), 3.0);
        assert_eq!(tw.time_average(t(100.0)), 3.0);
    }

    #[test]
    fn step_signal() {
        let mut tw = TimeWeighted::new(t(0.0), 0.0);
        tw.update(t(4.0), 2.0);
        // 0 for 4 s, then 2 for 6 s → (0*4 + 2*6)/10 = 1.2
        assert!((tw.time_average(t(10.0)) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_extremes() {
        let mut tw = TimeWeighted::new(t(0.0), 5.0);
        tw.update(t(1.0), -2.0);
        tw.update(t(2.0), 9.0);
        assert_eq!(tw.min(), -2.0);
        assert_eq!(tw.max(), 9.0);
        assert_eq!(tw.current(), 9.0);
    }

    #[test]
    fn zero_elapsed_returns_current() {
        let tw = TimeWeighted::new(t(5.0), 7.0);
        assert_eq!(tw.time_average(t(5.0)), 7.0);
    }

    #[test]
    fn reset_window_discards_history() {
        let mut tw = TimeWeighted::new(t(0.0), 100.0);
        tw.update(t(10.0), 1.0);
        tw.reset_window(t(10.0));
        assert_eq!(tw.time_average(t(20.0)), 1.0);
        assert_eq!(tw.max(), 1.0);
    }

    #[test]
    #[should_panic(expected = "move forward")]
    fn backwards_update_panics() {
        let mut tw = TimeWeighted::new(t(10.0), 0.0);
        tw.update(t(5.0), 1.0);
    }
}
