//! Batch-means confidence intervals for steady-state simulation output.

use super::student_t::t_critical_95;
use super::tally::Tally;

/// A 95% confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate (grand mean of the batch means).
    pub mean: f64,
    /// The half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Relative half-width `half_width / |mean|`; infinite when the mean
    /// is zero. The paper reports this as "within 4% of the mean".
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// Whether `value` lies inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }
}

/// Batch-means estimator: correlated samples are grouped into fixed-size
/// batches whose means are approximately independent, giving a valid
/// Student-t confidence interval for the steady-state mean.
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100).unwrap();
/// for i in 0..10_000 {
///     bm.record(f64::from(i % 7));
/// }
/// let ci = bm.confidence_interval().unwrap();
/// assert!(ci.contains(3.0)); // mean of 0..7
/// assert!(ci.relative_half_width() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMeans {
    batch_size: u64,
    current: Tally,
    batch_means: Tally,
    overall: Tally,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Errors
    ///
    /// Returns an error if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Result<Self, String> {
        if batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        Ok(BatchMeans {
            batch_size,
            current: Tally::new(),
            batch_means: Tally::new(),
            overall: Tally::new(),
        })
    }

    /// Records one (possibly autocorrelated) sample.
    pub fn record(&mut self, x: f64) {
        self.overall.record(x);
        self.current.record(x);
        if self.current.count() == self.batch_size {
            self.batch_means.record(self.current.mean());
            self.current = Tally::new();
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// Total samples recorded (including the partial batch).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Mean over all samples (not just completed batches).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// The 95% confidence interval over completed batch means, or `None`
    /// with fewer than two batches.
    #[must_use]
    pub fn confidence_interval(&self) -> Option<ConfidenceInterval> {
        let k = self.batch_means.count();
        if k < 2 {
            return None;
        }
        let t = t_critical_95(k - 1);
        let half_width = t * self.batch_means.std_dev() / (k as f64).sqrt();
        Some(ConfidenceInterval { mean: self.batch_means.mean(), half_width })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential};
    use crate::RngStreams;

    #[test]
    fn iid_interval_covers_true_mean() {
        let d = Exponential::with_mean(4.0);
        let mut rng = RngStreams::new(0xB).stream("bm");
        let mut bm = BatchMeans::new(500).unwrap();
        for _ in 0..100_000 {
            bm.record(d.sample(&mut rng));
        }
        let ci = bm.confidence_interval().unwrap();
        assert!(ci.contains(4.0), "CI [{} ± {}] misses 4.0", ci.mean, ci.half_width);
        assert!(ci.relative_half_width() < 0.04, "paper-level precision");
    }

    #[test]
    fn too_few_batches_yields_none() {
        let mut bm = BatchMeans::new(100).unwrap();
        for i in 0..150 {
            bm.record(f64::from(i));
        }
        assert_eq!(bm.batches(), 1);
        assert!(bm.confidence_interval().is_none());
    }

    #[test]
    fn counts_include_partial_batch() {
        let mut bm = BatchMeans::new(10).unwrap();
        for i in 0..25 {
            bm.record(f64::from(i));
        }
        assert_eq!(bm.count(), 25);
        assert_eq!(bm.batches(), 2);
        assert_eq!(bm.mean(), 12.0);
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(BatchMeans::new(0).is_err());
    }

    #[test]
    fn constant_stream_has_zero_width() {
        let mut bm = BatchMeans::new(5).unwrap();
        for _ in 0..50 {
            bm.record(7.0);
        }
        let ci = bm.confidence_interval().unwrap();
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(7.0));
        assert!(!ci.contains(7.1));
    }
}
