//! Fixed-bin histogram with CDF queries.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equally sized bins, plus underflow and
/// overflow counters.
///
/// This is the estimator behind the paper's headline metric: record the
/// maximum server utilization at every observation instant, then read the
/// cumulative frequency with [`cdf_at`](Histogram::cdf_at).
///
/// # Examples
///
/// ```
/// use geodns_simcore::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 100).unwrap();
/// for u in [0.30, 0.50, 0.70, 0.90] {
///     h.record(u);
/// }
/// assert_eq!(h.count(), 4);
/// assert!((h.cdf_at(0.80) - 0.75).abs() < 1e-12); // 3 of 4 below 0.8
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `bins == 0`, the bounds are not finite, or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, String> {
        if bins == 0 {
            return Err("histogram needs at least one bin".into());
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(format!("histogram bounds must be finite with lo < hi, got [{lo}, {hi})"));
        }
        Ok(Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0, count: 0 })
    }

    /// Records one sample. Values below `lo` go to the underflow counter,
    /// values at or above `hi` to the overflow counter.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded samples (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The empirical `P(X < x)`: fraction of samples strictly below the bin
    /// containing `x` (bin-resolution approximation of the CDF).
    ///
    /// Returns 0 when no samples have been recorded.
    #[must_use]
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return (self.count - self.overflow) as f64 / self.count as f64;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
        let below: u64 = self.underflow + self.bins[..idx].iter().sum::<u64>();
        below as f64 / self.count as f64
    }

    /// The smallest bin upper edge `x` with `cdf_at(x) >= q`, i.e. an
    /// approximate `q`-quantile.
    ///
    /// Returns `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            acc += b;
            if acc >= target {
                return Some(self.lo + width * (i + 1) as f64);
            }
        }
        Some(self.hi)
    }

    /// The bin boundaries and counts as `(upper_edge, count)` pairs —
    /// convenient for printing CDF curves.
    #[must_use]
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(|(i, &c)| (self.lo + width * (i + 1) as f64, c)).collect()
    }

    /// Samples that fell below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merges another histogram with identical binning.
    ///
    /// # Panics
    ///
    /// Panics if the bin layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different binning"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.record(0.05);
        h.record(0.95);
        let bins = h.bins();
        assert_eq!(bins[0], (0.1, 1));
        assert_eq!(bins[9].1, 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn cdf_basic() {
        let mut h = Histogram::new(0.0, 1.0, 100).unwrap();
        for i in 0..100 {
            h.record(f64::from(i) / 100.0 + 0.005);
        }
        assert!((h.cdf_at(0.5) - 0.5).abs() < 0.02);
        assert_eq!(h.cdf_at(0.0), 0.0);
        assert_eq!(h.cdf_at(1.0), 1.0);
    }

    #[test]
    fn cdf_counts_overflow_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.record(0.5);
        h.record(5.0); // overflow
        assert_eq!(h.cdf_at(1.0), 0.5, "overflowed sample is never 'below'");
    }

    #[test]
    fn empty_cdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 10).unwrap();
        assert_eq!(h.cdf_at(0.5), 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_tracks_distribution() {
        let mut h = Histogram::new(0.0, 10.0, 100).unwrap();
        for i in 0..1000 {
            h.record(f64::from(i % 10) + 0.5);
        }
        let q = h.quantile(0.5).unwrap();
        assert!((q - 5.0).abs() <= 0.6, "median ≈ 5, got {q}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 1.0, 10).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 10).unwrap();
        a.record(0.25);
        b.record(0.75);
        b.record(-1.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.underflow(), 1);
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn merge_rejects_mismatched() {
        let mut a = Histogram::new(0.0, 1.0, 10).unwrap();
        let b = Histogram::new(0.0, 2.0, 10).unwrap();
        a.merge(&b);
    }

    #[test]
    fn constructor_validation() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 5).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 5).is_err());
    }
}
