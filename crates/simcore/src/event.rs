//! Time-ordered event queues with deterministic FIFO tie-breaking.
//!
//! Two interchangeable implementations of the future event list share the
//! exact `(time, seq)` total order:
//!
//! * [`CalendarQueue`](crate::CalendarQueue) — the bucketed O(1) scheduler,
//!   the default;
//! * [`HeapQueue`] — the classic binary heap, kept as the reference
//!   implementation and differential-testing oracle.
//!
//! [`EventQueue`] is the façade the engine uses: it dispatches to one of
//! the two, selected by [`QueueKind`]. Because both implementations agree
//! on the total order, every simulation result is bit-identical whichever
//! one runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

/// A pending event: its firing time plus an insertion sequence number used to
/// break ties, so that events scheduled for the same instant fire in the
/// order they were scheduled (FIFO). Determinism of the whole simulation
/// hinges on this tie-breaking being stable.
pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Selects the future-event-list implementation behind [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QueueKind {
    /// The bucketed calendar queue (O(1) amortized push/pop; the default).
    #[default]
    Calendar,
    /// The binary heap (O(log n); reference implementation).
    Heap,
}

/// A priority queue of future events backed by a binary heap.
///
/// The reference implementation of the future event list: O(log n) per
/// operation, trivially correct, and the oracle the calendar queue is
/// differentially tested against. Most code should use [`EventQueue`]
/// instead and let [`QueueKind`] pick the implementation.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the sequence counter keeps advancing, so
    /// FIFO ordering guarantees survive a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for HeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

enum Inner<E> {
    Calendar(CalendarQueue<E>),
    Heap(HeapQueue<E>),
}

/// A priority queue of future events, ordered by firing time.
///
/// Events scheduled for the same instant are delivered in scheduling order.
/// This is the "future event list" of a classic discrete-event simulator;
/// most users drive it through [`Engine`](crate::Engine) rather than
/// directly. The backing implementation is a [`CalendarQueue`] by default;
/// [`EventQueue::with_kind`] selects the [`HeapQueue`] reference
/// implementation instead. Both produce the identical pop sequence for any
/// push/pop schedule.
///
/// # Examples
///
/// ```
/// use geodns_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "b");
/// q.push(SimTime::from_secs(1.0), "a");
/// q.push(SimTime::from_secs(2.0), "c"); // same instant as "b": FIFO
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    inner: Inner<E>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (calendar-backed).
    #[must_use]
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// Creates an empty queue backed by the given implementation.
    #[must_use]
    pub fn with_kind(kind: QueueKind) -> Self {
        let inner = match kind {
            QueueKind::Calendar => Inner::Calendar(CalendarQueue::new()),
            QueueKind::Heap => Inner::Heap(HeapQueue::new()),
        };
        EventQueue { inner }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_kind(capacity, QueueKind::Calendar)
    }

    /// Creates an empty queue of the given kind sized for `capacity`
    /// pending events.
    #[must_use]
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        let inner = match kind {
            // The calendar sizes itself from the live pending set; a
            // capacity hint cannot improve on its recalibration.
            QueueKind::Calendar => Inner::Calendar(CalendarQueue::new()),
            QueueKind::Heap => Inner::Heap(HeapQueue::with_capacity(capacity)),
        };
        EventQueue { inner }
    }

    /// Which implementation backs this queue.
    #[must_use]
    pub fn kind(&self) -> QueueKind {
        match &self.inner {
            Inner::Calendar(_) => QueueKind::Calendar,
            Inner::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedules `event` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        match &mut self.inner {
            Inner::Calendar(q) => q.push(time, event),
            Inner::Heap(q) => q.push(time, event),
        }
    }

    /// Removes and returns the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Calendar(q) => q.pop(),
            Inner::Heap(q) => q.pop(),
        }
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Calendar(q) => q.peek_time(),
            Inner::Heap(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Calendar(q) => q.len(),
            Inner::Heap(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events (the sequence counter keeps advancing, so
    /// FIFO ordering guarantees survive a clear).
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Calendar(q) => q.clear(),
            Inner::Heap(q) => q.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Calendar(q) => q.fmt(f),
            Inner::Heap(q) => q.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn both() -> [EventQueue<i32>; 2] {
        [EventQueue::with_kind(QueueKind::Calendar), EventQueue::with_kind(QueueKind::Heap)]
    }

    #[test]
    fn orders_by_time() {
        for mut q in both() {
            q.push(t(3.0), 3);
            q.push(t(1.0), 1);
            q.push(t(2.0), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3], "{:?}", q.kind());
        }
    }

    #[test]
    fn fifo_on_ties() {
        for mut q in both() {
            for i in 0..100 {
                q.push(t(5.0), i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{:?}", q.kind());
        }
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        for mut q in both() {
            q.push(t(1.0), 0);
            q.push(t(5.0), 1);
            assert_eq!(q.pop().unwrap().1, 0);
            q.push(t(5.0), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        for mut q in both() {
            q.push(t(7.0), 0);
            assert_eq!(q.peek_time(), Some(t(7.0)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn clear_empties() {
        for mut q in both() {
            q.push(t(1.0), 0);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn default_kind_is_calendar() {
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Calendar);
        assert_eq!(QueueKind::default(), QueueKind::Calendar);
    }

    /// The tentpole guarantee: both implementations produce the identical
    /// `(time, event)` pop sequence when driven with the same schedule
    /// trace — including same-instant bursts, interleaved pops, far-future
    /// outliers, and enough volume to cross several calendar resizes.
    #[test]
    fn differential_trace_calendar_vs_heap() {
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        // xorshift64* driven schedule: mixed horizons plus frequent ties.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut now = 0.0_f64;
        for i in 0..50_000u64 {
            let r = rng();
            let delay = match r % 10 {
                0..=4 => (r >> 32) as f64 % 8.0,   // near future
                5..=7 => (r >> 32) as f64 % 240.0, // TTL horizon
                8 => 0.0,                          // same-instant tie
                _ => 1e4 + (r >> 32) as f64 % 1e5, // far-future outlier
            };
            let time = t(now + delay);
            cal.push(time, i);
            heap.push(time, i);
            if r % 3 == 0 {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergence at step {i}");
                if let Some((popped, _)) = a {
                    now = popped.as_secs();
                }
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "divergence in final drain");
            if a.is_none() {
                break;
            }
        }
    }
}
