//! Time-ordered event queue with deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: its firing time plus an insertion sequence number used to
/// break ties, so that events scheduled for the same instant fire in the
/// order they were scheduled (FIFO). Determinism of the whole simulation
/// hinges on this tie-breaking being stable.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A priority queue of future events, ordered by firing time.
///
/// Events scheduled for the same instant are delivered in scheduling order.
/// This is the "future event list" of a classic discrete-event simulator;
/// most users drive it through [`Engine`](crate::Engine) rather than
/// directly.
///
/// # Examples
///
/// ```
/// use geodns_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "b");
/// q.push(SimTime::from_secs(1.0), "a");
/// q.push(SimTime::from_secs(2.0), "c"); // same instant as "b": FIFO
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the sequence counter keeps advancing, so
    /// FIFO ordering guarantees survive a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "x");
        q.push(t(5.0), "a");
        assert_eq!(q.pop().unwrap().1, "x");
        q.push(t(5.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(t(7.0), ());
        assert_eq!(q.peek_time(), Some(t(7.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(t(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
