//! A self-resizing calendar queue: the bucketed O(1) future-event list.
//!
//! The classic alternative to a binary-heap future-event list (R. Brown,
//! "Calendar queues: a fast O(1) priority queue implementation for the
//! simulation event set problem", CACM 1988). Time is divided into bucket
//! "days" of a fixed width; day `d` hashes to bucket `d mod nbuckets`, so
//! the bucket array is a circular calendar **year** and an event more than
//! a year ahead simply waits in its bucket until the calendar comes back
//! around. Dequeueing walks the days from the current one, popping the
//! earliest entry whose day has arrived. When the pending set outgrows (or
//! undershoots) the bucket array, the whole calendar is rebuilt with a
//! fresh bucket count and a bucket width recalibrated from the observed
//! inter-event gaps, so both push and pop stay O(1) amortized for the
//! near-constant event horizons discrete-event simulations produce.
//!
//! Two choices make the structure exactly interchangeable with the heap:
//!
//! * every bucket is kept sorted by the `(time, seq)` lexicographic key the
//!   heap uses, so ties break FIFO no matter how entries are distributed;
//! * the current day is an integer counter and an event's day is always
//!   computed as `(time / width) as u64` — the same expression used to pick
//!   its bucket — so there is no accumulated floating-point drift that
//!   could disagree with the bucket assignment and deliver days out of
//!   order.

use crate::event::Entry;
use crate::time::SimTime;

/// Smallest bucket array; also the size an empty queue starts with.
const MIN_BUCKETS: usize = 16;
/// Largest bucket array the resize policy will request.
const MAX_BUCKETS: usize = 1 << 20;
/// Bucket width as a multiple of the mean inter-event gap at the head of
/// the pending set. 2.0 targets ~2 events per day: wide enough that pops
/// rarely cross empty days, narrow enough that in-bucket insertion stays a
/// couple of element moves.
const WIDTH_GAP_FACTOR: f64 = 2.0;
/// How many head events the width recalibration samples.
const WIDTH_SAMPLE: usize = 64;
/// Ceiling on `time / width`: keeps day indices far from `u64` saturation,
/// where distinct times would collapse into one day (still ordered, but a
/// single overfull bucket).
const MAX_DAY: f64 = 1e15;

/// A time-ordered event queue over a circular calendar of bucket days.
///
/// Drop-in alternative to [`HeapQueue`](crate::HeapQueue) with the same
/// deterministic FIFO tie-breaking; see [`EventQueue`](crate::EventQueue)
/// for the façade most code uses.
pub struct CalendarQueue<E> {
    /// Bucket `i` holds every pending event whose day `d = ⌊time/width⌋`
    /// satisfies `d mod nbuckets == i`, sorted **descending** by
    /// `(time, seq)` so the earliest entry pops off the tail in O(1).
    /// `nbuckets` is always a power of two.
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket day, in seconds. Always positive.
    width: f64,
    /// `1.0 / width`, cached: `day_of` runs on every push and pop, and a
    /// multiply is several times cheaper than a divide.
    inv_width: f64,
    /// The day currently being drained. Invariant: every pending event's
    /// day is `>= cur_day` (pushes into the past move it back).
    cur_day: u64,
    /// Total pending events.
    len: usize,
    next_seq: u64,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            buckets: std::iter::repeat_with(Vec::new).take(MIN_BUCKETS).collect(),
            width: 1.0,
            inv_width: 1.0,
            cur_day: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// The day an event at `t` belongs to. Monotone non-decreasing in `t`
    /// (multiplying by a positive constant is monotone under rounding, and
    /// the `as` cast saturates), and the *only* function that maps times to
    /// days — pop's day test and push's bucket choice can never disagree.
    #[inline]
    fn day_of(&self, t: SimTime) -> u64 {
        (t.as_secs() * self.inv_width) as u64
    }

    #[inline]
    fn bucket_of(&self, day: u64) -> usize {
        (day as usize) & (self.buckets.len() - 1)
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = self.day_of(time);
        let idx = self.bucket_of(day);
        let bucket = &mut self.buckets[idx];
        // Descending order: entries *greater* than the new one keep their
        // place at the front. Buckets hold ~2 entries, so a linear scan
        // from the tail beats a binary search.
        let mut pos = bucket.len();
        while pos > 0 {
            let x = &bucket[pos - 1];
            if (x.time, x.seq) > (time, seq) {
                break;
            }
            pos -= 1;
        }
        bucket.insert(pos, Entry { time, seq, event });
        self.len += 1;
        if self.len == 1 || day < self.cur_day {
            // First event after empty/clear, or a push into an
            // already-drained day: re-anchor the drain cursor on it.
            self.cur_day = day;
        }
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut idx = (self.cur_day as usize) & mask;
        for _ in 0..self.buckets.len() {
            if let Some(tail) = self.buckets[idx].last() {
                // The tail is this bucket's (time, seq) minimum; it is due
                // if it belongs to the day the cursor is on (a later day in
                // this bucket means the event is >= a full year away).
                if self.day_of(tail.time) <= self.cur_day {
                    return Some(self.take_tail(idx));
                }
            }
            self.cur_day = self.cur_day.saturating_add(1);
            idx = (idx + 1) & mask;
        }
        // A full lap found nothing due: every pending event is at least a
        // year ahead. Jump the cursor straight to the global minimum (each
        // bucket's tail is its minimum, so the min over tails is global).
        let min_idx = (0..self.buckets.len())
            .filter(|&i| !self.buckets[i].is_empty())
            .min_by(|&a, &b| {
                let ea = self.buckets[a].last().expect("non-empty");
                let eb = self.buckets[b].last().expect("non-empty");
                (ea.time, ea.seq).cmp(&(eb.time, eb.seq))
            })
            .expect("len > 0 but no bucket has entries");
        let min_time = self.buckets[min_idx].last().expect("non-empty").time;
        self.cur_day = self.day_of(min_time);
        Some(self.take_tail(min_idx))
    }

    /// Pops the tail of bucket `idx`, applying the shrink policy.
    fn take_tail(&mut self, idx: usize) -> (SimTime, E) {
        let e = self.buckets[idx].pop().expect("bucket checked non-empty");
        self.len -= 1;
        if 4 * self.len < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.rebuild();
        }
        (e.time, e.event)
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let mut day = self.cur_day;
        for _ in 0..self.buckets.len() {
            if let Some(tail) = self.buckets[self.bucket_of(day)].last() {
                if self.day_of(tail.time) <= day {
                    return Some(tail.time);
                }
            }
            day = day.saturating_add(1);
        }
        self.buckets
            .iter()
            .filter_map(|b| b.last())
            .min_by(|a, b| (a.time, a.seq).cmp(&(b.time, b.seq)))
            .map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events (the sequence counter keeps advancing,
    /// so FIFO guarantees survive a clear).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cur_day = 0;
        self.len = 0;
    }

    /// Number of bucket days (for tests and diagnostics).
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Rebuilds the whole calendar: bucket count from the pending-set size,
    /// bucket width from the observed head gaps, cursor re-anchored on the
    /// earliest pending event.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        debug_assert_eq!(entries.len(), self.len);
        if entries.is_empty() {
            self.buckets.resize_with(MIN_BUCKETS, Vec::new);
            self.width = 1.0;
            self.inv_width = 1.0;
            self.cur_day = 0;
            return;
        }
        // (time, seq) keys are unique, so the unstable sort is fully
        // deterministic.
        entries.sort_unstable_by_key(|a| (a.time, a.seq));

        let nbuckets = entries.len().next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.buckets.resize_with(nbuckets, Vec::new);
        self.width = Self::estimate_width(&entries);
        let t_last = entries[entries.len() - 1].time.as_secs();
        if !(t_last / self.width).is_finite() || t_last / self.width > MAX_DAY {
            // The estimated width is too fine for the absolute times in
            // play; widen so day indices stay well inside u64.
            self.width = t_last / MAX_DAY;
        }
        self.inv_width = 1.0 / self.width;
        self.cur_day = self.day_of(entries[0].time);
        // Distribute in reverse so each bucket fills in descending order
        // with O(1) appends.
        for e in entries.into_iter().rev() {
            let idx = self.bucket_of(self.day_of(e.time));
            self.buckets[idx].push(e);
        }
    }

    /// Bucket width from the mean gap over the first [`WIDTH_SAMPLE`]
    /// pending events (ties at the head fall back to the full span, then
    /// to 1 s). `entries` must be sorted ascending and non-empty.
    fn estimate_width(entries: &[Entry<E>]) -> f64 {
        let n = entries.len();
        let t0 = entries[0].time.as_secs();
        let k = n.min(WIDTH_SAMPLE);
        let mut width = if k >= 2 {
            WIDTH_GAP_FACTOR * (entries[k - 1].time.as_secs() - t0) / (k - 1) as f64
        } else {
            0.0
        };
        if width <= 0.0 {
            let span = entries[n - 1].time.as_secs() - t0;
            width = if span > 0.0 { WIDTH_GAP_FACTOR * span / n as f64 } else { 1.0 };
        }
        width
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width", &self.width)
            .field("cur_day", &self.cur_day)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn orders_by_time() {
        let mut q = CalendarQueue::new();
        q.push(t(3.0), 3);
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties_across_resizes() {
        // 1000 same-instant events force several grow rebuilds; the seq
        // tie-break must survive every recalibration.
        let mut q = CalendarQueue::new();
        for i in 0..1000 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_wait_out_their_year() {
        // Events many calendar years ahead share buckets with near ones;
        // the day test must keep them waiting until their time comes.
        let mut q = CalendarQueue::new();
        q.push(t(1e6), "far");
        q.push(t(0.5), "near");
        q.push(t(2e6), "farther");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_below_the_calendar_cursor_reanchors() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(t(1000.0 + f64::from(i)), i);
        }
        // Drain a few so the cursor sits around day(1000), then push earlier.
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t(3.0), -1);
        assert_eq!(q.pop().unwrap().1, -1);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn grows_and_shrinks() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.push(t(i as f64 * 0.1), i);
        }
        assert!(q.num_buckets() >= 4096, "grew to {}", q.num_buckets());
        for _ in 0..9_990 {
            q.pop().unwrap();
        }
        assert!(q.num_buckets() <= 64, "shrank to {}", q.num_buckets());
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        let times = [7.0, 3.0, 9.0, 3.0, 1e5, 0.0];
        for (i, &s) in times.iter().enumerate() {
            q.push(t(s), i);
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            assert_eq!(peeked, popped);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn clear_keeps_seq_monotone() {
        let mut q = CalendarQueue::new();
        q.push(t(5.0), "a");
        q.clear();
        assert!(q.is_empty());
        q.push(t(5.0), "b");
        q.push(t(5.0), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn mixed_time_scales_stay_ordered() {
        // Forces the MAX_DAY width guard: nanosecond-scale gaps at the head
        // calibrate a ~2e-11 s width, and the lone far event at 1e6 s would
        // then land on day 5e16 — past the guard's ceiling — so the rebuild
        // must widen the days instead of letting indices saturate.
        let mut q = CalendarQueue::new();
        q.push(t(1e6), 1000u64);
        for i in 0..100u64 {
            q.push(t(i as f64 * 1e-11), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<u64> = (0..100).chain([1000]).collect();
        assert_eq!(order, expected);
    }
}
