//! A bounded JSONL (one JSON object per line) trace sink.
//!
//! Observability layers want to stream structured records to disk without
//! ever endangering the run that produces them: a trace of a pathological
//! simulation can easily reach hundreds of millions of events. [`JsonlSink`]
//! therefore enforces a hard record budget — once `max_records` lines have
//! been written, further pushes are counted as dropped instead of written —
//! and buffers through [`BufWriter`] so the per-record cost is a format +
//! memcpy, not a syscall.
//!
//! The sink is deliberately domain-agnostic (any [`serde::Serialize`]
//! record), so the simulation substrate can own the mechanism while each
//! model defines its own record vocabulary.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use serde::Serialize;

/// A bounded, buffered writer of JSON-lines trace records.
///
/// # Examples
///
/// ```no_run
/// use geodns_simcore::JsonlSink;
///
/// let mut sink = JsonlSink::create("trace.jsonl", 1_000_000).unwrap();
/// sink.push(&(1.5_f64, "dns_decision", 3_u32));
/// assert_eq!(sink.written(), 1);
/// sink.flush().unwrap();
/// ```
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
    max_records: u64,
    written: u64,
    dropped: u64,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path` as the sink target, with a
    /// hard budget of `max_records` lines.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>, max_records: u64) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file), max_records))
    }

    /// Wraps an arbitrary writer (e.g. an in-memory buffer in tests).
    #[must_use]
    pub fn from_writer(writer: Box<dyn Write + Send>, max_records: u64) -> Self {
        JsonlSink { out: BufWriter::new(writer), max_records, written: 0, dropped: 0 }
    }

    /// Appends one record as a JSON line. Past the record budget the record
    /// is silently counted as dropped — the producer never fails.
    pub fn push<T: Serialize + ?Sized>(&mut self, record: &T) {
        if self.written >= self.max_records {
            self.dropped += 1;
            return;
        }
        // An I/O error (disk full, closed pipe) must not kill the run that
        // is being observed: treat the record — and the rest of the trace —
        // as dropped.
        let ok = serde_json::to_string(record).ok().is_some_and(|line| {
            self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n")).is_ok()
        });
        if ok {
            self.written += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Records written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Records dropped after the budget was exhausted (or on I/O errors).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The hard record budget.
    #[must_use]
    pub fn max_records(&self) -> u64 {
        self.max_records
    }

    /// Flushes buffered lines to the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("max_records", &self.max_records)
            .field("written", &self.written)
            .field("dropped", &self.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` handle over a shared buffer, so the test can inspect what
    /// the sink wrote after handing ownership away.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_line_per_record() {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::from_writer(Box::new(buf.clone()), 10);
        sink.push(&(1_u64, true));
        sink.push(&(2_u64, false));
        sink.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "[1,true]\n[2,false]\n");
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn budget_bounds_the_trace() {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::from_writer(Box::new(buf.clone()), 3);
        for i in 0..10_u64 {
            sink.push(&i);
        }
        sink.flush().unwrap();
        assert_eq!(sink.written(), 3);
        assert_eq!(sink.dropped(), 7);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 3);
    }
}
