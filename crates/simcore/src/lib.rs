//! Discrete-event simulation substrate for the `geodns` project.
//!
//! The paper evaluated its DNS scheduling algorithms on the proprietary CSIM
//! simulation package; this crate is the from-scratch replacement. It provides
//! the three ingredients every discrete-event model needs:
//!
//! * an **engine** — a virtual clock plus a time-ordered event queue with
//!   deterministic FIFO tie-breaking ([`Engine`], [`EventQueue`]). The
//!   future event list is a self-resizing calendar queue
//!   ([`CalendarQueue`]) by default, with the binary-heap reference
//!   implementation ([`HeapQueue`]) selectable via [`QueueKind`] — both
//!   share the exact `(time, seq)` order, so results are bit-identical
//!   whichever one runs;
//! * **randomness** — reproducible, independently-seeded RNG streams
//!   ([`RngStreams`]) and the random-variate distributions the workload model
//!   draws from ([`dist`]);
//! * **statistics** — online estimators used to summarize runs: tallies,
//!   time-weighted averages, histograms/CDFs, P² quantiles and batch-means
//!   confidence intervals ([`stats`]).
//!
//! The engine is deliberately *event-oriented* rather than process-oriented:
//! models define an event enum and a world struct, and drive the loop
//! themselves. This keeps the substrate free of unsafe coroutine machinery
//! while still expressing the paper's closed-loop client model naturally.
//!
//! # Example
//!
//! A tiny M/M/1 queue, the "hello world" of discrete-event simulation:
//!
//! ```
//! use geodns_simcore::{Engine, SimTime, RngStreams, dist::{Exponential, Distribution}};
//!
//! enum Ev { Arrival, Departure }
//!
//! let mut eng = Engine::<Ev>::new();
//! let streams = RngStreams::new(42);
//! let mut rng = streams.stream("mm1");
//! let (arr, svc) = (Exponential::new(0.9), Exponential::new(1.0));
//!
//! let (mut queue_len, mut arrivals, mut served) = (0u64, 0u64, 0u64);
//! eng.schedule_in(arr.sample(&mut rng), Ev::Arrival);
//! while let Some((_, ev)) = eng.step() {
//!     match ev {
//!         Ev::Arrival => {
//!             arrivals += 1;
//!             queue_len += 1;
//!             if queue_len == 1 {
//!                 eng.schedule_in(svc.sample(&mut rng), Ev::Departure);
//!             }
//!             if arrivals < 1000 {
//!                 eng.schedule_in(arr.sample(&mut rng), Ev::Arrival);
//!             }
//!         }
//!         Ev::Departure => {
//!             queue_len -= 1;
//!             served += 1;
//!             if queue_len > 0 {
//!                 eng.schedule_in(svc.sample(&mut rng), Ev::Departure);
//!             }
//!         }
//!     }
//! }
//! assert_eq!(served, 1000, "every arrival was eventually served");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod calendar;
pub mod dist;
mod engine;
mod event;
mod jsonl;
mod rng;
pub mod stats;
mod time;

pub use bits::DenseBits;
pub use calendar::CalendarQueue;
pub use engine::Engine;
pub use event::{EventQueue, HeapQueue, QueueKind};
pub use jsonl::JsonlSink;
pub use rng::{fnv1a_64, split_mix_64, RngStreams, StreamRng};
pub use time::{SimTime, TimeError};
