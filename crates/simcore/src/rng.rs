//! Reproducible random-number streams.
//!
//! A simulation study lives or dies on reproducibility: the paper reports
//! 95% confidence intervals over five-hour runs, and regenerating its figures
//! requires that the same master seed always produce the same sample paths.
//! This module derives an *independent, named stream* per model component
//! (client workload, service times, policy coin flips, …) from one master
//! seed, so adding a component or reordering draws in one component never
//! perturbs another.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG type handed to model components.
///
/// `SmallRng` (xoshiro-based in `rand 0.8`) is fast and statistically solid
/// for simulation purposes; it is *not* cryptographic, which is fine here.
pub type StreamRng = SmallRng;

/// FNV-1a 64-bit hash. Stable across platforms and Rust versions, unlike
/// `std::hash`, which makes it safe to use for seed derivation.
///
/// # Examples
///
/// ```
/// use geodns_simcore::fnv1a_64;
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a_64(b"clients"), fnv1a_64(b"servers"));
/// ```
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One step of the SplitMix64 generator, used to whiten derived seeds.
///
/// # Examples
///
/// ```
/// use geodns_simcore::split_mix_64;
/// let a = split_mix_64(1);
/// let b = split_mix_64(2);
/// assert_ne!(a, b);
/// ```
#[must_use]
pub fn split_mix_64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A factory of named, independent RNG streams derived from a master seed.
///
/// Streams with different names are decorrelated by hashing the name into
/// the seed; the same `(master_seed, name)` pair always yields the same
/// stream.
///
/// # Examples
///
/// ```
/// use geodns_simcore::RngStreams;
/// use rand::Rng;
///
/// let streams = RngStreams::new(7);
/// let mut a1 = streams.stream("arrivals");
/// let mut a2 = streams.stream("arrivals");
/// let mut b = streams.stream("service");
/// let x: u64 = a1.gen();
/// assert_eq!(x, a2.gen::<u64>(), "same name, same stream");
/// assert_ne!(x, b.gen::<u64>(), "different names decorrelate");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Creates a stream factory for `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        RngStreams { master_seed }
    }

    /// The master seed this factory derives from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG stream for `name`.
    #[must_use]
    pub fn stream(&self, name: &str) -> StreamRng {
        self.stream_indexed(name, 0)
    }

    /// Returns the RNG stream for `(name, index)` — convenient for
    /// per-entity streams such as "one stream per client domain".
    #[must_use]
    pub fn stream_indexed(&self, name: &str, index: u64) -> StreamRng {
        let tag = fnv1a_64(name.as_bytes());
        let mixed = split_mix_64(
            self.master_seed ^ tag.rotate_left(17) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        // Expand to a full 32-byte seed with successive SplitMix64 outputs.
        let mut seed = [0u8; 32];
        let mut s = mixed;
        for chunk in seed.chunks_mut(8) {
            s = split_mix_64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        SmallRng::from_seed(seed)
    }

    /// A derived factory, e.g. for replication `r` of an experiment.
    #[must_use]
    pub fn replicate(&self, replication: u64) -> RngStreams {
        RngStreams {
            master_seed: split_mix_64(
                self.master_seed ^ replication.wrapping_mul(0xd134_2543_de82_ef95),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fnv_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streams_are_reproducible() {
        let s1 = RngStreams::new(123);
        let s2 = RngStreams::new(123);
        let draws1: Vec<u64> =
            (0..8).map(|_| 0).scan(s1.stream("x"), |r, _| Some(r.gen())).collect();
        let draws2: Vec<u64> =
            (0..8).map(|_| 0).scan(s2.stream("x"), |r, _| Some(r.gen())).collect();
        assert_eq!(draws1, draws2);
    }

    #[test]
    fn different_names_differ() {
        let s = RngStreams::new(5);
        let a: u64 = s.stream("alpha").gen();
        let b: u64 = s.stream("beta").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_differ() {
        let s = RngStreams::new(5);
        let a: u64 = s.stream_indexed("dom", 0).gen();
        let b: u64 = s.stream_indexed("dom", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = RngStreams::new(1).stream("x").gen();
        let b: u64 = RngStreams::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn replications_differ_but_are_stable() {
        let base = RngStreams::new(9);
        let r1 = base.replicate(1);
        let r1_again = base.replicate(1);
        let r2 = base.replicate(2);
        assert_eq!(r1.master_seed(), r1_again.master_seed());
        assert_ne!(r1.master_seed(), r2.master_seed());
        assert_ne!(r1.master_seed(), base.master_seed());
    }
}
