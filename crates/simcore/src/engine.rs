//! The simulation engine: virtual clock + future event list.

use crate::event::{EventQueue, QueueKind};
use crate::time::SimTime;

/// A discrete-event simulation engine over an application-defined event type.
///
/// The engine owns the virtual clock and the future event list. Models drive
/// it with a simple loop: [`step`](Engine::step) pops the next event and
/// advances the clock to its timestamp; the model then handles the event and
/// schedules follow-ups with [`schedule_in`](Engine::schedule_in) /
/// [`schedule_at`](Engine::schedule_at).
///
/// Causality is enforced: scheduling in the past panics, which turns subtle
/// model bugs into loud failures at the point of injection.
///
/// # Examples
///
/// ```
/// use geodns_simcore::{Engine, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut eng = Engine::new();
/// eng.schedule_at(SimTime::from_secs(1.0), Ev::Ping);
/// let (t, ev) = eng.step().unwrap();
/// assert_eq!((t, ev), (SimTime::from_secs(1.0), Ev::Ping));
/// eng.schedule_in(0.5, Ev::Pong);
/// assert_eq!(eng.now(), SimTime::from_secs(1.0));
/// assert_eq!(eng.step().unwrap().0, SimTime::from_secs(1.5));
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine { now: SimTime::ZERO, queue: EventQueue::new(), processed: 0 }
    }

    /// Creates an engine whose event list has room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Engine { now: SimTime::ZERO, queue: EventQueue::with_capacity(capacity), processed: 0 }
    }

    /// Creates an engine over the chosen future-event-list implementation.
    ///
    /// Both [`QueueKind`]s deliver events in the identical order, so this
    /// only affects throughput — see the `micro_engine` bench.
    #[must_use]
    pub fn with_kind(kind: QueueKind) -> Self {
        Self::with_capacity_and_kind(0, kind)
    }

    /// Creates an engine of the chosen queue kind sized for `capacity`
    /// pending events.
    #[must_use]
    pub fn with_capacity_and_kind(capacity: usize, kind: QueueKind) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity_and_kind(capacity, kind),
            processed: 0,
        }
    }

    /// Which implementation backs the future event list.
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "cannot schedule an event {delay} seconds in the past");
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule at {time} when the clock is already at {}",
            self.now
        );
        self.queue.push(time, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the event list is exhausted (the clock stays where
    /// it was).
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue yielded an event in the past");
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// The firing time of the next pending event.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drops every pending event, e.g. to terminate a run at a horizon.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut eng = Engine::new();
        eng.schedule_in(2.0, "a");
        eng.schedule_in(1.0, "b");
        assert_eq!(eng.next_event_time(), Some(SimTime::from_secs(1.0)));
        let (t1, e1) = eng.step().unwrap();
        assert_eq!((t1.as_secs(), e1), (1.0, "b"));
        let (t2, e2) = eng.step().unwrap();
        assert_eq!((t2.as_secs(), e2), (2.0, "a"));
        assert_eq!(eng.step(), None);
        assert_eq!(eng.now().as_secs(), 2.0, "clock stays at last event");
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    fn relative_scheduling_is_anchored_at_now() {
        let mut eng = Engine::new();
        eng.schedule_in(5.0, 1);
        eng.step().unwrap();
        eng.schedule_in(5.0, 2);
        assert_eq!(eng.step().unwrap().0.as_secs(), 10.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn negative_delay_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(-1.0, ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule at")]
    fn scheduling_before_now_panics() {
        let mut eng = Engine::new();
        eng.schedule_in(5.0, ());
        eng.step().unwrap();
        eng.schedule_at(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn clear_pending_stops_the_run() {
        let mut eng = Engine::new();
        for i in 0..10 {
            eng.schedule_in(f64::from(i), i);
        }
        eng.step().unwrap();
        eng.clear_pending();
        assert_eq!(eng.pending(), 0);
        assert_eq!(eng.step(), None);
    }
}
