//! Dense bitset for per-entity boolean columns.

/// A fixed-length dense bitset: one bit per index, 64 indices per word.
///
/// Struct-of-arrays entity state (millions of simulated clients) keeps its
/// boolean columns here instead of `Vec<bool>` — 8× denser, and the
/// [`bytes`](DenseBits::bytes) accessor feeds the bytes-per-client
/// accounting that the scale bench gates on.
///
/// # Examples
///
/// ```
/// use geodns_simcore::DenseBits;
///
/// let mut direct = DenseBits::new(100, false);
/// direct.set(42, true);
/// assert!(direct.get(42));
/// assert!(!direct.get(41));
/// assert_eq!(direct.len(), 100);
/// assert_eq!(direct.bytes(), 16); // two u64 words cover 100 bits
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DenseBits {
    words: Vec<u64>,
    len: usize,
}

impl DenseBits {
    /// Creates a bitset of `len` bits, all initialized to `fill`.
    #[must_use]
    pub fn new(len: usize, fill: bool) -> Self {
        let n_words = len.div_ceil(64);
        let mut words = vec![if fill { u64::MAX } else { 0 }; n_words];
        if fill && !len.is_multiple_of(64) {
            // Keep bits past `len` zero so word-level comparisons of two
            // same-length sets cannot disagree on padding.
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        DenseBits { words, len }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap footprint in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_filled_and_cleared() {
        let zeros = DenseBits::new(130, false);
        let ones = DenseBits::new(130, true);
        for i in 0..130 {
            assert!(!zeros.get(i));
            assert!(ones.get(i));
        }
        assert_eq!(zeros.count_ones(), 0);
        assert_eq!(ones.count_ones(), 130);
    }

    #[test]
    fn set_and_clear_round_trip() {
        let mut b = DenseBits::new(200, false);
        for i in (0..200).step_by(3) {
            b.set(i, true);
        }
        for i in 0..200 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(63, true);
        b.set(63, false);
        assert!(!b.get(63));
        assert!(b.get(63 + 3), "neighbours untouched");
    }

    #[test]
    fn filled_padding_bits_stay_zero() {
        let a = DenseBits::new(100, true);
        let mut b = DenseBits::new(100, false);
        for i in 0..100 {
            b.set(i, true);
        }
        assert_eq!(a, b, "fill-at-construction equals set-one-by-one");
    }

    #[test]
    fn word_boundary_lengths() {
        for len in [0, 1, 63, 64, 65, 128] {
            let b = DenseBits::new(len, true);
            assert_eq!(b.len(), len);
            assert_eq!(b.count_ones(), len);
            assert_eq!(b.bytes(), len.div_ceil(64) * 8);
        }
        assert!(DenseBits::new(0, false).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = DenseBits::new(64, false).get(64);
    }
}
