//! Stationary per-server load shares under (policy × TTL) combinations.
//!
//! The core calculation behind the paper's deterministic family: a
//! round-robin DNS *visits* every server equally often, but each visit to
//! server `i` installs a mapping that lives `TTL_i ∝ α_i·ρ` seconds. The
//! fraction of time (and hence of hidden load) a domain spends bound to
//! server `i` is therefore
//!
//! ```text
//! share_i = visit_i · ttl_factor_i / Σ_j visit_j · ttl_factor_j
//! ```
//!
//! With uniform visits and `ttl_factor ∝ α`, the load lands
//! capacity-proportionally — which is exactly what a heterogeneous site
//! needs, and why `DRR-TTL/S_*` balances without probabilistic routing.

/// Normalizes a non-negative vector to sum 1.
///
/// # Panics
///
/// Panics if the vector is empty, contains negatives/non-finite values, or
/// sums to zero.
#[must_use]
pub fn normalize(v: &[f64]) -> Vec<f64> {
    assert!(!v.is_empty(), "need at least one entry");
    assert!(
        v.iter().all(|x| x.is_finite() && *x >= 0.0),
        "entries must be finite and non-negative"
    );
    let total: f64 = v.iter().sum();
    assert!(total > 0.0, "entries must not all be zero");
    v.iter().map(|x| x / total).collect()
}

/// Expected long-run per-server *time-bound* share given per-server visit
/// probabilities and per-server TTL factors: `visit_i · ttl_i`, normalized.
///
/// # Examples
///
/// ```
/// use geodns_analytic::shares::binding_shares;
///
/// // Uniform RR visits, capacity-proportional TTLs (the DRR-TTL/S idea):
/// let alpha = [1.0, 0.8, 0.5];
/// let visits = [1.0 / 3.0; 3];
/// let shares = binding_shares(&visits, &alpha);
/// // Load lands proportionally to capacity.
/// assert!((shares[0] / shares[2] - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn binding_shares(visits: &[f64], ttl_factors: &[f64]) -> Vec<f64> {
    assert_eq!(visits.len(), ttl_factors.len(), "length mismatch");
    let weighted: Vec<f64> = visits.iter().zip(ttl_factors).map(|(v, t)| v * t).collect();
    normalize(&weighted)
}

/// Visit probabilities of plain round-robin: uniform.
#[must_use]
pub fn rr_visits(n: usize) -> Vec<f64> {
    assert!(n > 0, "need at least one server");
    vec![1.0 / n as f64; n]
}

/// Visit probabilities of PRR's capacity-skipping walk: server `i` is
/// accepted with probability `α_i` per encounter, so in the long run its
/// visit share is `α_i / Σα` (the walk is a Markov chain whose stationary
/// distribution weights each server by its acceptance probability).
#[must_use]
pub fn prr_visits(relative_caps: &[f64]) -> Vec<f64> {
    normalize(relative_caps)
}

/// The ideal load share of each server on a heterogeneous site: its share
/// of total capacity.
#[must_use]
pub fn capacity_shares(capacities: &[f64]) -> Vec<f64> {
    normalize(capacities)
}

/// A scalar imbalance measure between an achieved share vector and the
/// ideal: half the L1 distance (total variation), in `[0, 1)`. Zero means
/// perfectly capacity-proportional load.
///
/// # Panics
///
/// Panics on length mismatch.
#[must_use]
pub fn imbalance(achieved: &[f64], ideal: &[f64]) -> f64 {
    assert_eq!(achieved.len(), ideal.len(), "length mismatch");
    0.5 * achieved.iter().zip(ideal).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: [f64; 7] = [1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.5];

    #[test]
    fn rr_with_constant_ttl_misloads_heterogeneous_servers() {
        // RR + constant TTL: every server gets 1/7 of the load, but the
        // weak servers hold only 0.5/5.1 of the capacity each.
        let shares = binding_shares(&rr_visits(7), &[1.0; 7]);
        let ideal = capacity_shares(&ALPHA);
        let imb = imbalance(&shares, &ideal);
        assert!(imb > 0.08, "RR must misload: imbalance {imb}");
        // The weakest server is overloaded by ~46%: (1/7)/(0.5/5.1).
        let overload = shares[6] / ideal[6];
        assert!((overload - (5.1 / 7.0) / 0.5).abs() < 1e-9);
    }

    #[test]
    fn drr_ttl_s_is_capacity_proportional() {
        // RR visits × α-proportional TTLs = capacity shares, exactly.
        let shares = binding_shares(&rr_visits(7), &ALPHA);
        let ideal = capacity_shares(&ALPHA);
        assert!(imbalance(&shares, &ideal) < 1e-12);
    }

    #[test]
    fn prr_with_constant_ttl_is_also_capacity_proportional() {
        // The probabilistic family fixes the same skew from the visit side.
        let shares = binding_shares(&prr_visits(&ALPHA), &[1.0; 7]);
        let ideal = capacity_shares(&ALPHA);
        assert!(imbalance(&shares, &ideal) < 1e-12);
    }

    #[test]
    fn prr_with_scaled_ttl_overshoots() {
        // Combining both corrections squares the bias — shares ∝ α², which
        // is why the paper pairs PRR with unscaled TTL/i and DRR with
        // TTL/S_i, never both corrections at once.
        let shares = binding_shares(&prr_visits(&ALPHA), &ALPHA);
        let ideal = capacity_shares(&ALPHA);
        assert!(imbalance(&shares, &ideal) > 0.05);
        assert!(shares[0] > ideal[0], "strong servers over-weighted");
    }

    #[test]
    fn imbalance_bounds() {
        assert_eq!(imbalance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        let extreme = imbalance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((extreme - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_validates() {
        assert_eq!(normalize(&[2.0, 2.0]), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn normalize_rejects_zeros() {
        let _ = normalize(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn binding_shares_length_checked() {
        let _ = binding_shares(&[0.5, 0.5], &[1.0]);
    }
}
