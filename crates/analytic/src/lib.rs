//! Closed-form models used to *validate* the `geodns` simulator.
//!
//! A simulation study is only as credible as its substrate, so this crate
//! provides the textbook results the model must agree with where theory
//! exists:
//!
//! * [`queueing`] — M/M/1 and M/G/1 (Pollaczek–Khinchine) formulas for a
//!   single server; the simulator's FCFS hit queues are exactly these
//!   systems when driven open-loop.
//! * [`shares`] — stationary per-server load shares implied by each
//!   (selection policy × TTL scheme) combination; the reason the
//!   deterministic `TTL/S_*` family works is a two-line calculation here.
//! * [`control`] — the DNS control-fraction model: how much of the request
//!   stream the scheduler actually steers given TTLs and session
//!   parameters (the paper's "often below 4%").
//!
//! The cross-checks live in `tests/validation.rs` at the workspace root:
//! simulation output is compared against these formulas to a few percent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod queueing;
pub mod shares;
