//! The DNS control-fraction model.
//!
//! The paper's central constraint: "the DNS scheduler has direct control
//! over a very limited fraction of requests (the percentage is often below
//! 4%)". This module predicts that fraction from first principles so the
//! simulator can be validated against it.

/// Parameters of the control-fraction model, all long-run means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlModel {
    /// Number of connected domains `K`.
    pub n_domains: usize,
    /// Total client sessions started per second, site-wide.
    pub session_rate: f64,
    /// The TTL attached to (or effective for) each mapping, seconds.
    pub ttl_s: f64,
}

impl ControlModel {
    /// The paper's defaults: K = 20 domains, 500 clients cycling one
    /// session per (20 pages × 15 s think) = 300 s, constant TTL 240 s.
    #[must_use]
    pub fn paper_default() -> Self {
        ControlModel { n_domains: 20, session_rate: 500.0 / 300.0, ttl_s: 240.0 }
    }

    /// The expected address-request (NS-miss) rate: each continuously
    /// active domain refreshes its mapping every `ttl_s` seconds, so at
    /// most `K / ttl_s` requests per second reach the DNS. Domains whose
    /// session inter-arrival exceeds the TTL refresh *less* often — they
    /// are capped at their own session rate — so this is an upper bound
    /// that is tight when every domain stays busy.
    #[must_use]
    pub fn address_rate_upper_bound(&self) -> f64 {
        self.n_domains as f64 / self.ttl_s
    }

    /// The expected fraction of sessions that are DNS-routed (miss the NS
    /// cache): the ratio of the address-request rate to the session rate,
    /// clamped to 1.
    #[must_use]
    pub fn control_fraction(&self) -> f64 {
        (self.address_rate_upper_bound() / self.session_rate).min(1.0)
    }
}

/// Per-domain refinement: given each domain's session rate, the expected
/// address-request rate accounting for sparse domains (a domain cannot
/// refresh faster than it starts sessions).
///
/// # Panics
///
/// Panics if `ttl_s` is not positive or any rate is negative.
#[must_use]
pub fn address_rate_per_domain(session_rates: &[f64], ttl_s: f64) -> f64 {
    assert!(ttl_s > 0.0, "TTL must be positive");
    session_rates
        .iter()
        .map(|&r| {
            assert!(r >= 0.0, "session rates must be non-negative");
            // A domain with session inter-arrival T_s = 1/r refreshes once
            // per max(ttl, T_s): its miss process is the renewal of
            // "first session after expiry".
            if r <= 0.0 {
                0.0
            } else {
                1.0 / (ttl_s + 1.0 / r)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_about_five_percent() {
        let m = ControlModel::paper_default();
        // 20/240 ≈ 0.083 req/s over 1.67 sessions/s ≈ 5%.
        let f = m.control_fraction();
        assert!((0.03..0.08).contains(&f), "control fraction {f}");
    }

    #[test]
    fn smaller_ttl_means_more_control() {
        let mut m = ControlModel::paper_default();
        let base = m.control_fraction();
        m.ttl_s = 60.0;
        assert!(m.control_fraction() > base * 3.0);
    }

    #[test]
    fn control_fraction_clamps_at_one() {
        let m = ControlModel { n_domains: 1000, session_rate: 0.1, ttl_s: 1.0 };
        assert_eq!(m.control_fraction(), 1.0);
    }

    #[test]
    fn sparse_domains_refresh_less_often() {
        // A domain with one session per hour cannot produce 1/240 misses/s.
        let rate = address_rate_per_domain(&[1.0 / 3600.0], 240.0);
        assert!(rate < 1.0 / 3600.0 + 1e-9);
        // A busy domain approaches the 1/TTL ceiling.
        let busy = address_rate_per_domain(&[100.0], 240.0);
        assert!((busy - 1.0 / 240.01).abs() < 1e-6);
    }

    #[test]
    fn per_domain_sum_is_below_upper_bound() {
        let rates = vec![0.5, 0.1, 0.01, 0.001];
        let refined = address_rate_per_domain(&rates, 240.0);
        let bound = 4.0 / 240.0;
        assert!(refined < bound, "refined {refined} vs bound {bound}");
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_panics() {
        let _ = address_rate_per_domain(&[1.0], 0.0);
    }
}
