//! Single-queue formulas: M/M/1 and M/G/1 (Pollaczek–Khinchine).
//!
//! Each Web server in the model is a FCFS queue with Poisson-ish hit
//! arrivals and i.i.d. service times, so these classical results bound and
//! validate its behaviour.

/// Offered utilization `ρ = λ/μ` of a single queue.
///
/// # Panics
///
/// Panics unless both rates are finite and positive.
#[must_use]
pub fn utilization(lambda: f64, mu: f64) -> f64 {
    assert!(lambda.is_finite() && lambda > 0.0, "arrival rate must be positive");
    assert!(mu.is_finite() && mu > 0.0, "service rate must be positive");
    lambda / mu
}

/// Mean response time (wait + service) of an M/M/1 queue:
/// `E[T] = 1 / (μ − λ)`.
///
/// Returns `None` for an unstable queue (`λ ≥ μ`).
///
/// # Examples
///
/// ```
/// use geodns_analytic::queueing::mm1_mean_response;
///
/// // ρ = 2/3 on a 90 hits/s server: E[T] = 1/(90−60) ≈ 33 ms.
/// let t = mm1_mean_response(60.0, 90.0).unwrap();
/// assert!((t - 1.0 / 30.0).abs() < 1e-12);
/// assert!(mm1_mean_response(100.0, 90.0).is_none());
/// ```
#[must_use]
pub fn mm1_mean_response(lambda: f64, mu: f64) -> Option<f64> {
    let rho = utilization(lambda, mu);
    (rho < 1.0).then(|| 1.0 / (mu - lambda))
}

/// Mean number in system of an M/M/1 queue: `ρ / (1 − ρ)`.
///
/// Returns `None` for an unstable queue.
#[must_use]
pub fn mm1_mean_in_system(lambda: f64, mu: f64) -> Option<f64> {
    let rho = utilization(lambda, mu);
    (rho < 1.0).then(|| rho / (1.0 - rho))
}

/// The `q`-quantile of M/M/1 response time (which is exponential with rate
/// `μ − λ`): `−ln(1−q)/(μ−λ)`.
///
/// Returns `None` for an unstable queue.
///
/// # Panics
///
/// Panics unless `0 < q < 1`.
#[must_use]
pub fn mm1_response_quantile(lambda: f64, mu: f64, q: f64) -> Option<f64> {
    assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
    let rho = utilization(lambda, mu);
    (rho < 1.0).then(|| -(1.0 - q).ln() / (mu - lambda))
}

/// Mean *waiting* time of an M/G/1 queue by Pollaczek–Khinchine:
/// `E[W] = λ·E[S²] / (2(1−ρ))` with `E[S²] = (1 + c²)/μ²`, where `c²` is
/// the squared coefficient of variation of service times (`c² = 1` for
/// exponential, `0` for deterministic).
///
/// Returns `None` for an unstable queue.
///
/// # Panics
///
/// Panics if `scv` is negative or not finite.
#[must_use]
pub fn mg1_mean_wait(lambda: f64, mu: f64, scv: f64) -> Option<f64> {
    assert!(scv.is_finite() && scv >= 0.0, "squared CoV must be >= 0, got {scv}");
    let rho = utilization(lambda, mu);
    if rho >= 1.0 {
        return None;
    }
    let es2 = (1.0 + scv) / (mu * mu);
    Some(lambda * es2 / (2.0 * (1.0 - rho)))
}

/// Mean response time of an M/G/1 queue: P–K waiting time plus one mean
/// service time.
///
/// Returns `None` for an unstable queue.
#[must_use]
pub fn mg1_mean_response(lambda: f64, mu: f64, scv: f64) -> Option<f64> {
    mg1_mean_wait(lambda, mu, scv).map(|w| w + 1.0 / mu)
}

/// The squared coefficient of variation of a Pareto service law with tail
/// index `shape` (needs `shape > 2` for finite variance).
///
/// Returns `None` when the variance is infinite.
///
/// # Panics
///
/// Panics unless `shape > 1` (mean must exist).
#[must_use]
pub fn pareto_scv(shape: f64) -> Option<f64> {
    assert!(shape.is_finite() && shape > 1.0, "pareto shape must exceed 1, got {shape}");
    if shape <= 2.0 {
        return None;
    }
    // For Pareto(x_min, a): mean m = a·x/(a−1), var = x²·a/((a−1)²(a−2)).
    // scv = var/m² = 1/(a(a−2)).
    Some(1.0 / (shape * (shape - 2.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_matches_mg1_with_scv_one() {
        let (l, m) = (60.0, 90.0);
        let mm1 = mm1_mean_response(l, m).unwrap();
        let mg1 = mg1_mean_response(l, m, 1.0).unwrap();
        assert!((mm1 - mg1).abs() < 1e-12, "M/M/1 {mm1} vs M/G/1(c²=1) {mg1}");
    }

    #[test]
    fn md1_waits_half_as_long_as_mm1() {
        let (l, m) = (60.0, 90.0);
        let mm1_wait = mm1_mean_response(l, m).unwrap() - 1.0 / m;
        let md1_wait = mg1_mean_wait(l, m, 0.0).unwrap();
        assert!((md1_wait - 0.5 * mm1_wait).abs() < 1e-12);
    }

    #[test]
    fn instability_detected() {
        assert!(mm1_mean_response(90.0, 90.0).is_none());
        assert!(mm1_mean_in_system(91.0, 90.0).is_none());
        assert!(mg1_mean_wait(100.0, 90.0, 1.0).is_none());
        assert!(mm1_response_quantile(100.0, 90.0, 0.5).is_none());
    }

    #[test]
    fn quantiles_are_exponential() {
        let (l, m) = (30.0, 90.0);
        let median = mm1_response_quantile(l, m, 0.5).unwrap();
        let p95 = mm1_response_quantile(l, m, 0.95).unwrap();
        assert!((median - 0.5f64.ln().abs() / 60.0).abs() < 1e-12);
        assert!(p95 > median * 4.0, "exponential tails: p95/median = ln20/ln2 ≈ 4.32");
    }

    #[test]
    fn mean_in_system_by_littles_law() {
        // L = λ·T (Little's law) must tie the two formulas together.
        let (l, m) = (50.0, 80.0);
        let t = mm1_mean_response(l, m).unwrap();
        let n = mm1_mean_in_system(l, m).unwrap();
        assert!((n - l * t).abs() < 1e-12);
    }

    #[test]
    fn pareto_scv_values() {
        assert!(pareto_scv(2.0).is_none(), "infinite variance at the boundary");
        assert!(pareto_scv(1.5).is_none());
        let scv = pareto_scv(3.0).unwrap();
        assert!((scv - 1.0 / 3.0).abs() < 1e-12);
        assert!(pareto_scv(2.2).unwrap() > 1.0, "α=2.2 is burstier than exponential");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = utilization(0.0, 1.0);
    }
}
