//! Terminal line charts for the figure benches.
//!
//! The paper's figures are line plots; the regeneration targets print the
//! underlying numbers as tables *and* sketch the curves right in the
//! terminal so the shape — orderings, plateaus, crossovers — is visible
//! without leaving the shell.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, in any x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

/// Renders an ASCII line chart of the series onto a `width × height`
/// character canvas with y-axis labels and a legend. Each series is drawn
/// with its own glyph; later series overwrite earlier ones where they
/// collide (so list the most important last).
///
/// Returns an empty string when there is nothing to draw.
///
/// # Examples
///
/// ```
/// use geodns_bench::{ascii_chart, Series};
///
/// let chart = ascii_chart(
///     &[Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)])],
///     40,
///     10,
/// );
/// assert!(chart.contains("up"));
/// assert!(chart.contains('*'));
/// ```
#[must_use]
pub fn ascii_chart(series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() || width < 8 || height < 3 {
        return String::new();
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    let to_col = |x: f64| (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
    let to_row = |y: f64| {
        height - 1 - (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize
    };

    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        let mut pts = s.points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Draw line segments with simple linear interpolation per column.
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let c0 = to_col(x0);
            let c1 = to_col(x1);
            for c in c0..=c1 {
                let frac = if c1 == c0 { 0.0 } else { (c - c0) as f64 / (c1 - c0) as f64 };
                let y = y0 + frac * (y1 - y0);
                canvas[to_row(y)][c.min(width - 1)] = glyph;
            }
        }
        if pts.len() == 1 {
            canvas[to_row(pts[0].1)][to_col(pts[0].0)] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in canvas.iter().enumerate() {
        let y_label = if r == 0 {
            format!("{y_max:>7.2} ")
        } else if r == height - 1 {
            format!("{y_min:>7.2} ")
        } else {
            "        ".to_string()
        };
        out.push_str(&y_label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("         {x_min:<12.4}{:>w$.4}\n", x_max, w = width.saturating_sub(12)));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_line() {
        let chart =
            ascii_chart(&[Series::new("line", vec![(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)])], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("line"));
        // The top-right region should contain the line's end.
        let first_line = chart.lines().next().unwrap();
        assert!(first_line.trim_end().ends_with('*'));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(ascii_chart(&[], 40, 10), "");
        assert_eq!(ascii_chart(&[Series::new("e", vec![])], 40, 10), "");
    }

    #[test]
    fn tiny_canvas_is_rejected() {
        let s = [Series::new("s", vec![(0.0, 1.0)])];
        assert_eq!(ascii_chart(&s, 4, 10), "");
        assert_eq!(ascii_chart(&s, 40, 2), "");
    }

    #[test]
    fn distinct_glyphs_per_series() {
        let chart = ascii_chart(
            &[
                Series::new("a", vec![(0.0, 0.0), (1.0, 0.0)]),
                Series::new("b", vec![(0.0, 1.0), (1.0, 1.0)]),
            ],
            30,
            8,
        );
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = ascii_chart(&[Series::new("c", vec![(5.0, 3.0)])], 30, 8);
        assert!(chart.contains('*'));
    }

    #[test]
    fn axis_labels_present() {
        let chart = ascii_chart(&[Series::new("s", vec![(10.0, 0.25), (20.0, 0.75)])], 40, 10);
        assert!(chart.contains("0.75"));
        assert!(chart.contains("0.25"));
        assert!(chart.contains("10.0000"));
        assert!(chart.contains("20.0000"));
    }
}
