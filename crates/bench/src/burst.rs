//! Per-message send timestamps for batched closed-loop clients.
//!
//! `loadgen` ships a whole window of queries with one `sendmmsg` and
//! drains the answers with `recvmmsg`. Its original RTT clock started
//! *after* the send returned and was read once per `recvmmsg` return —
//! so every answer in a burst inherited one timestamp pair, the send
//! syscall itself was excluded from the measurement, and a query staged
//! first but answered last looked exactly as fast as its neighbours.
//! Under batching that flattens the tail: p99 is precisely the statistic
//! the burst-granular clock cannot see.
//!
//! [`BurstClock`] fixes the attribution: each window slot is stamped
//! when its datagram is committed to the send arena (before the flush
//! syscall), and each answer's RTT is read against *its own slot's*
//! stamp at the instant its `recvmmsg` returned. Slots are re-stamped
//! every burst; the clock allocates once and is reused for the whole
//! run, so it adds nothing to the measured path.

use std::time::Instant;

/// Send timestamps for one in-flight burst, one slot per window index.
#[derive(Debug)]
pub struct BurstClock {
    sent: Vec<Instant>,
}

impl BurstClock {
    /// A clock for bursts of up to `window` messages; all slots start at
    /// "now" so a misused slot yields a small RTT, not a panic or a wild
    /// number.
    #[must_use]
    pub fn new(window: usize) -> Self {
        BurstClock { sent: vec![Instant::now(); window.max(1)] }
    }

    /// How many slots the clock tracks.
    #[must_use]
    pub fn window(&self) -> usize {
        self.sent.len()
    }

    /// Records "now" as `slot`'s send instant. Call when the datagram is
    /// committed to the send batch, before the flush syscall, so the RTT
    /// includes the kernel transmit path.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the window — slot bookkeeping bugs
    /// should fail the run, not skew its tail statistics.
    pub fn stamp(&mut self, slot: usize) {
        self.sent[slot] = Instant::now();
    }

    /// The RTT in microseconds for `slot`'s message, given the instant
    /// its `recvmmsg` call returned.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the window.
    #[must_use]
    pub fn rtt_us(&self, slot: usize, received: Instant) -> f64 {
        received.saturating_duration_since(self.sent[slot]).as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The regression the clock exists to prevent: two messages stamped
    /// at different times must report *different* RTTs when drained by
    /// the same `recvmmsg` return — a burst-granular clock would give
    /// them the same number.
    #[test]
    fn slots_keep_their_own_send_instants() {
        let mut clock = BurstClock::new(2);
        clock.stamp(0);
        std::thread::sleep(Duration::from_millis(20));
        clock.stamp(1);
        std::thread::sleep(Duration::from_millis(5));
        let received = Instant::now();
        let early = clock.rtt_us(0, received);
        let late = clock.rtt_us(1, received);
        assert!(
            early >= late + 15_000.0,
            "slot 0 was in flight ~20 ms longer than slot 1, got {early:.0} vs {late:.0} µs"
        );
        assert!(late >= 4_000.0, "slot 1 waited at least the 5 ms drain, got {late:.0} µs");
    }

    #[test]
    fn restamping_resets_a_slot() {
        let mut clock = BurstClock::new(1);
        clock.stamp(0);
        std::thread::sleep(Duration::from_millis(10));
        clock.stamp(0); // next burst reuses the slot
        let rtt = clock.rtt_us(0, Instant::now());
        assert!(rtt < 10_000.0, "stale stamp leaked into the next burst: {rtt:.0} µs");
    }

    #[test]
    fn received_before_sent_clamps_to_zero() {
        let before = Instant::now();
        let mut clock = BurstClock::new(1);
        std::thread::sleep(Duration::from_millis(1));
        clock.stamp(0);
        assert_eq!(clock.rtt_us(0, before), 0.0);
    }

    #[test]
    fn zero_window_still_constructs() {
        assert_eq!(BurstClock::new(0).window(), 1);
    }
}
