//! `loadgen` — closed-loop UDP load generator for `geodnsd`.
//!
//! ```text
//! loadgen [--target ADDR] [--clients N] [--duration SECS] [--domains K]
//!         [--exponent Z] [--servers N] [--seed N] [--feedback-ms MS]
//!         [--feedback backlogs|alarms|none] [--alarm-threshold X]
//!         [--window W] [--pin BASE] [--min-qps F] [--check-weights TOL]
//!         [--shutdown]
//! ```
//!
//! Replays the paper's §4.1 domain structure over loopback: each burst's
//! *source domain* is drawn from a Zipf law over `K` domains (exponent
//! 1.0 = the paper's pure Zipf client basis), and the generator presents
//! itself as domain `d` by binding the sending socket to `127.0.{d}.1` —
//! every `127.0.0.0/8` address binds locally, and the daemon's example
//! topology maps `127.0.{d}.0/24 → domain d`. Each client thread keeps a
//! window of `--window` queries outstanding (closed loop; default 32,
//! `--window 1` reproduces the classic one-in-flight client): it stages
//! the whole burst, ships it with one `sendmmsg`, and drains the answers
//! with `recvmmsg` — the same batched-socket arenas geodnsd itself uses —
//! so the generator amortizes syscalls exactly like the daemon and can
//! actually saturate it. Measured throughput stays end-to-end: encode →
//! kernel → daemon worker → scheduler → kernel → full parse + validation.
//!
//! Every answered query also contributes an RTT sample, summarized as
//! exact-CDF p50/p95/p99 so a throughput win can't silently trade away
//! tail latency. RTT is attributed **per message**, not per burst: each
//! window slot is stamped ([`geodns_bench::BurstClock`]) when its query
//! is committed to the send arena — before the `sendmmsg` flush, so the
//! kernel transmit path is inside the measurement — and read against the
//! return instant of the `recvmmsg` call that carried *that slot's*
//! answer. (The earlier burst-granular clock started after the send and
//! gave every answer in a burst the same timestamp pair, which both hid
//! the send syscall and flattened the tail.)
//!
//! `--pin BASE` pins client thread `i` to CPU `(BASE + i) mod
//! online_cpus` (best-effort), the client half of the worker×core
//! scaling study: with `geodnsd --pin` on a disjoint core range, a
//! throughput number measures the daemon's scaling rather than the
//! generator and daemon migrating onto each other's cores.
//!
//! A feedback thread (cadence `--feedback-ms`) emulates the Web-server
//! side of the paper's control loop in one of two modes (`--feedback`):
//!
//! * `backlogs` — tally which Web server each answer named, normalize
//!   the tallies into per-server backlog shares, and ship them as
//!   `GDNSCTL1 backlogs <seq> …` datagrams — the live equivalent of the
//!   simulator feeding `set_backlogs`.
//! * `alarms` — the paper's §2 asynchronous alarm mechanism: per tick,
//!   each server's share of the *new* answers over its capacity share is
//!   a utilization proxy; an edge-triggered `AlarmMonitor` (threshold
//!   `--alarm-threshold`, with hysteresis) turns threshold crossings
//!   into `GDNSCTL1 alarm/normal <seq> <server>` datagrams. No
//!   precomputed backlogs: the daemon schedules from its own estimates.
//!
//! Stateful control datagrams carry a monotonically increasing sequence
//! number, so a datagram the kernel delayed or duplicated can only draw
//! a `GDNSCTL1 err stale` ack — never overwrite newer state.
//!
//! With `--check-weights TOL` the generator asks the daemon for its
//! learned relative weights (`GDNSCTL1 weights`) after the run and fails
//! unless every domain's estimate is within `TOL` of the true Zipf share
//! of the offered workload — the closed-loop gate that the daemon's own
//! estimation actually tracked the traffic it was given.
//!
//! Every response is fully parsed; anything unexpected (bad id, rcode,
//! answer count, TTL 0, non-A rdata) counts as *malformed*. With
//! `--min-qps` the process exits non-zero if throughput falls below the
//! floor **or any response at all was malformed**.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use geodns_bench::BurstClock;
use geodns_server::{AlarmMonitor, CapacityPlan, HeterogeneityLevel, Signal};
use geodns_simcore::dist::{Distribution, Zipf};
use geodns_simcore::stats::Cdf;
use geodns_simcore::RngStreams;
use geodns_wire::mmsg::{self, RecvBatch, SendBatch};
use geodns_wire::{Message, QType, Question, Rcode};

/// Upper bound on `--window`: outstanding queries are tracked in a `u64`
/// bitmask, and bursts larger than this stop resembling a closed loop.
const MAX_WINDOW: usize = 64;

/// What the feedback thread emulates (see the [module docs](self)).
#[derive(Clone, Copy, PartialEq, Eq)]
enum FeedbackMode {
    Backlogs,
    Alarms,
    None,
}

impl std::str::FromStr for FeedbackMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "backlogs" => Ok(FeedbackMode::Backlogs),
            "alarms" => Ok(FeedbackMode::Alarms),
            "none" => Ok(FeedbackMode::None),
            other => {
                Err(format!("unknown feedback mode {other:?} (expected backlogs|alarms|none)"))
            }
        }
    }
}

impl FeedbackMode {
    fn as_str(self) -> &'static str {
        match self {
            FeedbackMode::Backlogs => "backlogs",
            FeedbackMode::Alarms => "alarms",
            FeedbackMode::None => "none",
        }
    }
}

#[derive(Clone)]
struct Args {
    target: SocketAddr,
    clients: usize,
    duration_s: f64,
    domains: usize,
    exponent: f64,
    servers: usize,
    seed: u64,
    feedback_ms: u64,
    feedback: FeedbackMode,
    alarm_threshold: f64,
    window: usize,
    pin: Option<usize>,
    min_qps: Option<f64>,
    check_weights: Option<f64>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: "127.0.0.1:5353".parse().expect("valid default addr"),
        clients: 8,
        duration_s: 5.0,
        domains: 4,
        exponent: 1.0,
        servers: 7,
        seed: 42,
        feedback_ms: 200,
        feedback: FeedbackMode::Backlogs,
        alarm_threshold: 1.5,
        window: 32,
        pin: None,
        min_qps: None,
        check_weights: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--target" => args.target = parsed("--target", value("--target")?)?,
            "--clients" => args.clients = parsed("--clients", value("--clients")?)?,
            "--duration" => args.duration_s = parsed("--duration", value("--duration")?)?,
            "--domains" => args.domains = parsed("--domains", value("--domains")?)?,
            "--exponent" => args.exponent = parsed("--exponent", value("--exponent")?)?,
            "--servers" => args.servers = parsed("--servers", value("--servers")?)?,
            "--seed" => args.seed = parsed("--seed", value("--seed")?)?,
            "--feedback-ms" => args.feedback_ms = parsed("--feedback-ms", value("--feedback-ms")?)?,
            "--feedback" => args.feedback = parsed("--feedback", value("--feedback")?)?,
            "--alarm-threshold" => {
                args.alarm_threshold = parsed("--alarm-threshold", value("--alarm-threshold")?)?;
            }
            "--window" => args.window = parsed("--window", value("--window")?)?,
            "--pin" => args.pin = Some(parsed("--pin", value("--pin")?)?),
            "--min-qps" => args.min_qps = Some(parsed("--min-qps", value("--min-qps")?)?),
            "--check-weights" => {
                args.check_weights = Some(parsed("--check-weights", value("--check-weights")?)?);
            }
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--target ADDR] [--clients N] [--duration SECS] \
                     [--domains K] [--exponent Z] [--servers N] [--seed N] \
                     [--feedback-ms MS] [--feedback backlogs|alarms|none] \
                     [--alarm-threshold X] [--window W] [--pin BASE] [--min-qps F] \
                     [--check-weights TOL] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.domains == 0 || args.domains > 256 || args.servers == 0 {
        return Err("--clients/--domains/--servers out of range".into());
    }
    if args.window == 0 || args.window > MAX_WINDOW {
        return Err(format!("--window must be in 1..={MAX_WINDOW}"));
    }
    if !args.target.ip().is_loopback() {
        return Err("loadgen's per-domain 127.0.d.1 source trick only works over loopback".into());
    }
    if !(args.alarm_threshold.is_finite() && args.alarm_threshold > 0.0) {
        return Err(format!("--alarm-threshold must be > 0, got {}", args.alarm_threshold));
    }
    if let Some(tol) = args.check_weights {
        if !(tol.is_finite() && tol > 0.0 && tol <= 1.0) {
            return Err(format!("--check-weights must be in (0, 1], got {tol}"));
        }
    }
    Ok(args)
}

#[derive(Default, Clone, Copy)]
struct ClientStats {
    sent: u64,
    answered: u64,
    malformed: u64,
    timeouts: u64,
}

/// Validates one response; returns the answered server address on success.
///
/// The fast path is an allocation-free structural walk over the exact
/// shape an authoritative answer takes (header, echoed question, one `A`
/// record); anything it cannot account for byte-for-byte falls back to
/// the full [`Message::parse`] validation, so the accepted set is the
/// same — the fast path just avoids paying parser allocations ~300k
/// times a second on the measurement side.
fn validate(resp: &[u8], expect_id: u16) -> Result<[u8; 4], ()> {
    if let Some(r) = fast_validate(resp, expect_id) {
        return r;
    }
    let m = Message::parse(resp).map_err(|_| ())?;
    let ok = m.header.id == expect_id
        && m.header.response
        && m.header.rcode == Rcode::NoError
        && m.answers.len() == 1
        && m.answers[0].rtype == QType::A
        && m.answers[0].ttl >= 1
        && m.answers[0].rdata.len() == 4;
    if !ok {
        return Err(());
    }
    Ok([m.answers[0].rdata[0], m.answers[0].rdata[1], m.answers[0].rdata[2], m.answers[0].rdata[3]])
}

/// Allocation-free structural check of one authoritative `A` answer.
///
/// Returns `Some(Ok(addr))` only when the datagram is *provably* a
/// well-formed single-answer response matching `expect_id` (so the slow
/// parser would accept it too), and `None` for anything it cannot fully
/// account for — the caller then runs the real parser, which is the
/// arbiter of malformed vs. valid.
fn fast_validate(resp: &[u8], expect_id: u16) -> Option<Result<[u8; 4], ()>> {
    // Header: id, QR=1, rcode 0, exactly one question and one answer.
    if resp.len() < 12
        || resp[0..2] != expect_id.to_be_bytes()
        || resp[2] & 0x80 == 0
        || resp[3] & 0x0F != 0
        || resp[4..8] != [0, 1, 0, 1]
    {
        return None;
    }
    // Echoed question: walk uncompressed labels, then QTYPE/QCLASS.
    let mut at = 12usize;
    loop {
        let len = usize::from(*resp.get(at)?);
        if len == 0 {
            at += 1;
            break;
        }
        if len & 0xC0 != 0 {
            return None; // compressed/unknown label form: let the parser judge
        }
        at += 1 + len;
        if at >= resp.len() {
            return None;
        }
    }
    at += 4; // QTYPE + QCLASS
             // Answer name: either a compression pointer or uncompressed labels.
    let name_end = match resp.get(at)? {
        b if b & 0xC0 == 0xC0 => at + 2,
        _ => {
            let mut p = at;
            loop {
                let len = usize::from(*resp.get(p)?);
                if len == 0 {
                    break p + 1;
                }
                if len & 0xC0 != 0 {
                    return None;
                }
                p += 1 + len;
            }
        }
    };
    // TYPE A, CLASS IN, TTL ≥ 1, RDLENGTH 4, 4-byte RDATA, nothing after.
    let fixed = resp.get(name_end..name_end + 10)?;
    if fixed[0..4] != [0, 1, 0, 1] || fixed[8..10] != [0, 4] {
        return None;
    }
    let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
    let rdata = resp.get(name_end + 10..name_end + 14)?;
    if ttl == 0 || resp.len() != name_end + 14 {
        return None;
    }
    Some(Ok([rdata[0], rdata[1], rdata[2], rdata[3]]))
}

/// One closed-loop client: bind one socket per domain at `127.0.{d}.1`,
/// draw each burst's domain from the Zipf law, keep `--window` queries in
/// flight, and batch both directions through the `mmsg` arenas.
///
/// Returns the counters plus the per-query RTT samples (µs); each RTT is
/// measured from the query's own commit into the send arena (before the
/// `sendmmsg` flush) to the return of the `recvmmsg` call that carried
/// its answer, so it includes the transmit syscall and daemon queueing
/// under load — see [`BurstClock`].
fn client_loop(
    worker: u64,
    args: &Args,
    deadline: Instant,
    per_server: &[AtomicU64],
) -> Result<(ClientStats, Vec<f64>), String> {
    let mut sockets = Vec::with_capacity(args.domains);
    for d in 0..args.domains {
        let bind: SocketAddr = format!("127.0.{d}.1:0")
            .parse()
            .map_err(|e| format!("source addr for domain {d}: {e}"))?;
        let s = UdpSocket::bind(bind).map_err(|e| format!("bind {bind}: {e}"))?;
        s.connect(args.target).map_err(|e| format!("connect: {e}"))?;
        s.set_read_timeout(Some(Duration::from_secs(1))).map_err(|e| format!("timeout: {e}"))?;
        sockets.push(s);
    }
    let zipf = Zipf::new(args.domains, args.exponent).map_err(|e| e.to_string())?;
    let mut rng = RngStreams::new(args.seed).stream_indexed("loadgen", worker);
    let query = Message::query(0, Question::a("www.example.org")).to_bytes();
    let window = args.window;
    let mut tx = SendBatch::new(window, 512);
    let mut rx = RecvBatch::new(window, 512);
    let mut clock = BurstClock::new(window);
    let mut stats = ClientStats::default();
    let mut rtts_us: Vec<f64> = Vec::new();
    let mut id: u16 = (worker as u16) << 10;

    while Instant::now() < deadline {
        let domain = zipf.sample(&mut rng);
        let socket = &sockets[domain];
        // Stage the burst: `window` copies of the query, sequential ids,
        // each slot stamped at commit so its RTT covers the flush too.
        let id_base = id;
        for k in 0..window {
            let buf = tx.buffer();
            buf.extend_from_slice(&query);
            let qid = id_base.wrapping_add(k as u16);
            buf[0..2].copy_from_slice(&qid.to_be_bytes());
            tx.commit(args.target);
            clock.stamp(k);
        }
        id = id.wrapping_add(window as u16);
        let out = mmsg::send_batch(socket, &mut tx);
        stats.sent += out.sent;
        // Drain until every in-flight id is answered or the socket read
        // timeout fires; ids lost to send errors simply come up short
        // here and are retired as timeouts.
        let mut outstanding: u64 =
            if window == MAX_WINDOW { u64::MAX } else { (1u64 << window) - 1 };
        while outstanding != 0 {
            match mmsg::recv_batch(socket, &mut rx) {
                Ok(n) => {
                    let received = Instant::now();
                    for i in 0..n {
                        let (resp, _peer) = rx.datagram(i);
                        // The id must belong to this burst and be unseen;
                        // duplicates and strays count as malformed.
                        let rid = if resp.len() >= 2 {
                            u16::from_be_bytes([resp[0], resp[1]])
                        } else {
                            !id_base // guaranteed out of window
                        };
                        let slot = usize::from(rid.wrapping_sub(id_base));
                        if slot >= window || outstanding & (1u64 << slot) == 0 {
                            stats.malformed += 1;
                            continue;
                        }
                        match validate(resp, rid) {
                            Ok(addr) => {
                                outstanding &= !(1u64 << slot);
                                stats.answered += 1;
                                rtts_us.push(clock.rtt_us(slot, received));
                                // Tally which server was named (example
                                // topology: 192.0.2.10 + i) so the feedback
                                // thread can turn observed assignment shares
                                // into backlog signals.
                                let i = usize::from(addr[3].wrapping_sub(10));
                                if addr[..3] == [192, 0, 2] && i < per_server.len() {
                                    per_server[i].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(()) => stats.malformed += 1,
                        }
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    stats.timeouts += u64::from(outstanding.count_ones());
                    break;
                }
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }
    Ok((stats, rtts_us))
}

/// Sends one control datagram and waits briefly for the ack.
fn send_ctl(target: SocketAddr, payload: &str) -> Result<String, String> {
    let s = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("ctl bind: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(1))).map_err(|e| format!("ctl timeout: {e}"))?;
    s.send_to(format!("GDNSCTL1 {payload}").as_bytes(), target)
        .map_err(|e| format!("ctl send: {e}"))?;
    let mut buf = [0u8; 128];
    let (n, _) = s.recv_from(&mut buf).map_err(|e| format!("ctl ack: {e}"))?;
    Ok(String::from_utf8_lossy(&buf[..n]).into_owned())
}

/// Relative capacity shares of the daemon's Web servers: the example
/// topology's Table-2 H35 plan when the server count matches it, a
/// homogeneous split otherwise.
fn capacity_shares(servers: usize) -> Vec<f64> {
    let plan = CapacityPlan::from_level(HeterogeneityLevel::H35, 500.0);
    let relatives =
        if plan.num_servers() == servers { plan.relatives().to_vec() } else { vec![1.0; servers] };
    let total: f64 = relatives.iter().sum();
    relatives.iter().map(|r| r / total).collect()
}

/// The feedback thread, emulating the Web-server side of the control
/// loop at the configured cadence (every stateful datagram carries the
/// next sequence number):
///
/// * [`FeedbackMode::Backlogs`] — cumulative per-server answer tallies,
///   normalized by the peak, shipped as one `backlogs` snapshot per tick.
/// * [`FeedbackMode::Alarms`] — per tick, each server's share of the
///   *newly observed* answers over its capacity share approximates its
///   utilization relative to the cluster average (the closed loop keeps
///   offered load near capacity, so assignment share per capacity share
///   tracks relative utilization); an edge-triggered [`AlarmMonitor`]
///   per server turns threshold crossings into `alarm`/`normal` signals,
///   exactly like the paper's servers do with measured utilization.
///
/// Returns how many control datagrams were acked `ok`.
fn feedback_loop(
    target: SocketAddr,
    every: Duration,
    mode: FeedbackMode,
    alarm_threshold: f64,
    per_server: &[AtomicU64],
    stop: &AtomicBool,
) -> u64 {
    let mut pushed = 0;
    let mut seq = 0u64;
    let shares = capacity_shares(per_server.len());
    // `AlarmMonitor` thinks in true utilization (θ ∈ (0, 1]); the proxy
    // here is an over-representation *ratio* with no upper bound, so map
    // it onto the monitor's scale such that `ratio == alarm_threshold`
    // lands exactly on θ = 0.9 (keeping the monitor's edge-triggering
    // and hysteresis semantics intact).
    const THETA: f64 = 0.9;
    let mut monitors: Vec<AlarmMonitor> = (0..per_server.len())
        .map(|_| AlarmMonitor::new(THETA, THETA * 0.2).expect("valid fixed theta"))
        .collect();
    let mut last_counts = vec![0u64; per_server.len()];
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(every);
        let counts: Vec<u64> = per_server.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        match mode {
            FeedbackMode::None => {}
            FeedbackMode::Backlogs => {
                let peak = counts.iter().copied().max().unwrap_or(0);
                if peak == 0 {
                    continue;
                }
                let csv: Vec<String> =
                    counts.iter().map(|&c| format!("{:.4}", c as f64 / peak as f64)).collect();
                seq += 1;
                if send_ctl(target, &format!("backlogs {seq} {}", csv.join(",")))
                    .is_ok_and(|ack| ack == "GDNSCTL1 ok")
                {
                    pushed += 1;
                }
            }
            FeedbackMode::Alarms => {
                let deltas: Vec<u64> =
                    counts.iter().zip(&last_counts).map(|(c, l)| c - l).collect();
                let total: u64 = deltas.iter().sum();
                if total == 0 {
                    continue;
                }
                for (i, (&delta, monitor)) in deltas.iter().zip(&mut monitors).enumerate() {
                    let ratio = (delta as f64 / total as f64) / shares[i];
                    let verb = match monitor.observe(ratio * THETA / alarm_threshold) {
                        Some(Signal::Alarm) => "alarm",
                        Some(Signal::Normal) => "normal",
                        _ => continue,
                    };
                    seq += 1;
                    if send_ctl(target, &format!("{verb} {seq} {i}"))
                        .is_ok_and(|ack| ack == "GDNSCTL1 ok")
                    {
                        pushed += 1;
                    }
                }
            }
        }
        last_counts = counts;
    }
    pushed
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let per_server: Arc<Vec<AtomicU64>> =
        Arc::new((0..args.servers).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs_f64(args.duration_s);

    let feedback = (args.feedback_ms > 0 && args.feedback != FeedbackMode::None).then(|| {
        let target = args.target;
        let every = Duration::from_millis(args.feedback_ms);
        let mode = args.feedback;
        let threshold = args.alarm_threshold;
        let per_server = Arc::clone(&per_server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            feedback_loop(target, every, mode, threshold, &per_server, &stop)
        })
    });

    let started = Instant::now();
    let online = geodns_wire::affinity::online_cpus().max(1);
    let workers: Vec<_> = (0..args.clients)
        .map(|w| {
            let args = args.clone();
            let per_server = Arc::clone(&per_server);
            std::thread::spawn(move || {
                // Pinning is best-effort: a cpuset that excludes the core
                // should not fail the measurement, just leave it unpinned.
                if let Some(base) = args.pin {
                    let _ = geodns_wire::affinity::pin_to_core((base + w) % online);
                }
                client_loop(w as u64, &args, deadline, &per_server)
            })
        })
        .collect();

    let mut totals = ClientStats::default();
    let mut rtt = Cdf::new();
    let mut failed = false;
    for (i, w) in workers.into_iter().enumerate() {
        match w.join().expect("client thread panicked") {
            Ok((s, rtts_us)) => {
                totals.sent += s.sent;
                totals.answered += s.answered;
                totals.malformed += s.malformed;
                totals.timeouts += s.timeouts;
                for x in rtts_us {
                    rtt.record(x);
                }
            }
            Err(e) => {
                eprintln!("loadgen: client {i}: {e}");
                failed = true;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let feedback_pushes = feedback.map_or(0, |f| f.join().expect("feedback thread panicked"));

    // The closed-loop estimation gate: ask the daemon what it learned and
    // compare against the true Zipf shares of the workload we offered.
    // Asked *before* shutdown — the daemon must still be serving.
    let mut weights_estimated: Vec<f64> = Vec::new();
    let mut weights_true: Vec<f64> = Vec::new();
    let mut weight_err_max = f64::NAN;
    if let Some(tol) = args.check_weights {
        match send_ctl(args.target, "weights") {
            Ok(ack) => match ack.strip_prefix("GDNSCTL1 ok ") {
                Some(csv) => {
                    weights_estimated =
                        csv.split(',').filter_map(|f| f.trim().parse().ok()).collect();
                    let zipf = Zipf::new(args.domains, args.exponent).expect("validated workload");
                    weights_true = (0..weights_estimated.len())
                        .map(|d| if d < args.domains { zipf.prob(d) } else { 0.0 })
                        .collect();
                    weight_err_max = weights_estimated
                        .iter()
                        .zip(&weights_true)
                        .map(|(e, t)| (e - t).abs())
                        .fold(0.0_f64, f64::max);
                    if weights_estimated.is_empty() || weight_err_max > tol {
                        eprintln!(
                            "loadgen: FAILED — estimated weights {weights_estimated:?} off the \
                             true Zipf shares {weights_true:?} by {weight_err_max:.4} (> {tol})"
                        );
                        failed = true;
                    } else {
                        eprintln!(
                            "loadgen: ok — estimated weights within {weight_err_max:.4} of the \
                             true Zipf shares (tolerance {tol})"
                        );
                    }
                }
                None => {
                    eprintln!("loadgen: FAILED — unexpected weights ack {ack:?}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("loadgen: FAILED — weights query: {e}");
                failed = true;
            }
        }
    }

    if args.shutdown {
        match send_ctl(args.target, "shutdown") {
            Ok(ack) => eprintln!("loadgen: daemon acked shutdown ({ack})"),
            Err(e) => {
                eprintln!("loadgen: shutdown ctl failed: {e}");
                failed = true;
            }
        }
    }

    let qps = totals.answered as f64 / elapsed;
    // Exact-CDF quantiles over every per-query RTT sample (not P²): the
    // numbers are reproducible functions of the recorded set.
    let (p50, p95, p99) = (
        rtt.quantile(0.50).unwrap_or(f64::NAN),
        rtt.quantile(0.95).unwrap_or(f64::NAN),
        rtt.quantile(0.99).unwrap_or(f64::NAN),
    );
    let counts: Vec<u64> = per_server.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    // Utilization proxy: each server's share of all answers over its
    // capacity share; 1.0 = perfectly balanced against capacity, and the
    // maximum is the live analogue of the paper's max-server-utilization
    // metric (up to the answers→hits hidden-load factor).
    let answer_total: u64 = counts.iter().sum();
    let max_util_proxy = if answer_total == 0 {
        f64::NAN
    } else {
        counts
            .iter()
            .zip(capacity_shares(args.servers))
            .map(|(&c, share)| (c as f64 / answer_total as f64) / share)
            .fold(0.0_f64, f64::max)
    };
    let json = serde_json::json!({
        "qps": qps,
        "elapsed_s": elapsed,
        "clients": args.clients,
        "domains": args.domains,
        "window": args.window,
        "sent": totals.sent,
        "answered": totals.answered,
        "malformed": totals.malformed,
        "timeouts": totals.timeouts,
        "rtt_p50_us": p50,
        "rtt_p95_us": p95,
        "rtt_p99_us": p99,
        "feedback_mode": args.feedback.as_str(),
        "feedback_pushes": feedback_pushes,
        "per_server_answers": counts,
        "max_util_proxy": max_util_proxy,
        "weights_estimated": weights_estimated,
        "weights_true": weights_true,
        "weight_err_max": weight_err_max,
    });
    println!("{}", serde_json::to_string_pretty(&json).expect("serialize"));
    eprintln!(
        "loadgen: {:.0} answers/s over {elapsed:.2} s ({} sent, {} answered, {} malformed, \
         {} timeouts, window {}, {feedback_pushes} backlog pushes)",
        qps, totals.sent, totals.answered, totals.malformed, totals.timeouts, args.window
    );
    eprintln!("loadgen: rtt p50 {p50:.0} µs, p95 {p95:.0} µs, p99 {p99:.0} µs");

    if totals.malformed > 0 {
        eprintln!("loadgen: FAILED — {} malformed responses", totals.malformed);
        failed = true;
    }
    if let Some(floor) = args.min_qps {
        if qps < floor {
            eprintln!("loadgen: FAILED — {qps:.0} qps below the {floor:.0} qps floor");
            failed = true;
        } else {
            eprintln!("loadgen: ok — {qps:.0} qps ≥ {floor:.0} qps floor, zero malformed");
        }
    }
    std::process::exit(i32::from(failed));
}
