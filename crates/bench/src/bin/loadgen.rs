//! `loadgen` — closed-loop UDP load generator for `geodnsd`.
//!
//! ```text
//! loadgen [--target ADDR] [--clients N] [--duration SECS] [--domains K]
//!         [--exponent Z] [--servers N] [--seed N] [--feedback-ms MS]
//!         [--min-qps F] [--shutdown]
//! ```
//!
//! Replays the paper's §4.1 domain structure over loopback: each query's
//! *source domain* is drawn from a Zipf law over `K` domains (exponent
//! 1.0 = the paper's pure Zipf client basis), and the generator presents
//! itself as domain `d` by binding the sending socket to `127.0.{d}.1` —
//! every `127.0.0.0/8` address binds locally, and the daemon's example
//! topology maps `127.0.{d}.0/24 → domain d`. Each client thread keeps
//! exactly one query outstanding (closed loop), so measured throughput is
//! end-to-end: encode → kernel → daemon worker → scheduler → kernel →
//! full parse + validation.
//!
//! With `--feedback-ms` (on by default) a feedback thread closes the
//! paper's control loop: it tallies which Web server each answer named,
//! normalizes the tallies into per-server backlog shares, and ships them
//! to the daemon as `GDNSCTL1 backlogs …` control datagrams — the live
//! equivalent of the simulator feeding `set_backlogs`.
//!
//! Every response is fully parsed; anything unexpected (bad id, rcode,
//! answer count, TTL 0, non-A rdata) counts as *malformed*. With
//! `--min-qps` the process exits non-zero if throughput falls below the
//! floor **or any response at all was malformed**.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use geodns_simcore::dist::{Distribution, Zipf};
use geodns_simcore::RngStreams;
use geodns_wire::{Message, QType, Question, Rcode};

#[derive(Clone)]
struct Args {
    target: SocketAddr,
    clients: usize,
    duration_s: f64,
    domains: usize,
    exponent: f64,
    servers: usize,
    seed: u64,
    feedback_ms: u64,
    min_qps: Option<f64>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: "127.0.0.1:5353".parse().expect("valid default addr"),
        clients: 8,
        duration_s: 5.0,
        domains: 4,
        exponent: 1.0,
        servers: 7,
        seed: 42,
        feedback_ms: 200,
        min_qps: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--target" => args.target = parsed("--target", value("--target")?)?,
            "--clients" => args.clients = parsed("--clients", value("--clients")?)?,
            "--duration" => args.duration_s = parsed("--duration", value("--duration")?)?,
            "--domains" => args.domains = parsed("--domains", value("--domains")?)?,
            "--exponent" => args.exponent = parsed("--exponent", value("--exponent")?)?,
            "--servers" => args.servers = parsed("--servers", value("--servers")?)?,
            "--seed" => args.seed = parsed("--seed", value("--seed")?)?,
            "--feedback-ms" => args.feedback_ms = parsed("--feedback-ms", value("--feedback-ms")?)?,
            "--min-qps" => args.min_qps = Some(parsed("--min-qps", value("--min-qps")?)?),
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--target ADDR] [--clients N] [--duration SECS] \
                     [--domains K] [--exponent Z] [--servers N] [--seed N] \
                     [--feedback-ms MS] [--min-qps F] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.domains == 0 || args.domains > 256 || args.servers == 0 {
        return Err("--clients/--domains/--servers out of range".into());
    }
    if !args.target.ip().is_loopback() {
        return Err("loadgen's per-domain 127.0.d.1 source trick only works over loopback".into());
    }
    Ok(args)
}

#[derive(Default, Clone, Copy)]
struct ClientStats {
    sent: u64,
    answered: u64,
    malformed: u64,
    timeouts: u64,
}

/// Validates one response; returns the answered server address on success.
fn validate(resp: &[u8], expect_id: u16) -> Result<[u8; 4], ()> {
    let m = Message::parse(resp).map_err(|_| ())?;
    let ok = m.header.id == expect_id
        && m.header.response
        && m.header.rcode == Rcode::NoError
        && m.answers.len() == 1
        && m.answers[0].rtype == QType::A
        && m.answers[0].ttl >= 1
        && m.answers[0].rdata.len() == 4;
    if !ok {
        return Err(());
    }
    Ok([m.answers[0].rdata[0], m.answers[0].rdata[1], m.answers[0].rdata[2], m.answers[0].rdata[3]])
}

/// One closed-loop client: bind one socket per domain at `127.0.{d}.1`,
/// draw each query's domain from the Zipf law, keep one query in flight.
fn client_loop(
    worker: u64,
    args: &Args,
    deadline: Instant,
    per_server: &[AtomicU64],
) -> Result<ClientStats, String> {
    let mut sockets = Vec::with_capacity(args.domains);
    for d in 0..args.domains {
        let bind: SocketAddr = format!("127.0.{d}.1:0")
            .parse()
            .map_err(|e| format!("source addr for domain {d}: {e}"))?;
        let s = UdpSocket::bind(bind).map_err(|e| format!("bind {bind}: {e}"))?;
        s.connect(args.target).map_err(|e| format!("connect: {e}"))?;
        s.set_read_timeout(Some(Duration::from_secs(1))).map_err(|e| format!("timeout: {e}"))?;
        sockets.push(s);
    }
    let zipf = Zipf::new(args.domains, args.exponent).map_err(|e| e.to_string())?;
    let mut rng = RngStreams::new(args.seed).stream_indexed("loadgen", worker);
    let mut query = Message::query(0, Question::a("www.example.org")).to_bytes();
    let mut rx = [0u8; 512];
    let mut stats = ClientStats::default();
    let mut id: u16 = (worker as u16) << 10;

    while Instant::now() < deadline {
        let domain = zipf.sample(&mut rng);
        id = id.wrapping_add(1);
        query[0..2].copy_from_slice(&id.to_be_bytes());
        let socket = &sockets[domain];
        socket.send(&query).map_err(|e| format!("send: {e}"))?;
        stats.sent += 1;
        match socket.recv(&mut rx) {
            Ok(n) => match validate(&rx[..n], id) {
                Ok(addr) => {
                    stats.answered += 1;
                    // Tally which server was named (example topology:
                    // 192.0.2.10 + i) so the feedback thread can turn
                    // observed assignment shares into backlog signals.
                    let i = usize::from(addr[3].wrapping_sub(10));
                    if addr[..3] == [192, 0, 2] && i < per_server.len() {
                        per_server[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(()) => stats.malformed += 1,
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stats.timeouts += 1;
            }
            Err(e) => return Err(format!("recv: {e}")),
        }
    }
    Ok(stats)
}

/// Sends one control datagram and waits briefly for the ack.
fn send_ctl(target: SocketAddr, payload: &str) -> Result<String, String> {
    let s = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("ctl bind: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(1))).map_err(|e| format!("ctl timeout: {e}"))?;
    s.send_to(format!("GDNSCTL1 {payload}").as_bytes(), target)
        .map_err(|e| format!("ctl send: {e}"))?;
    let mut buf = [0u8; 128];
    let (n, _) = s.recv_from(&mut buf).map_err(|e| format!("ctl ack: {e}"))?;
    Ok(String::from_utf8_lossy(&buf[..n]).into_owned())
}

/// The feedback loop: observed per-server answer shares → `backlogs` ctl.
fn feedback_loop(
    target: SocketAddr,
    every: Duration,
    per_server: &[AtomicU64],
    stop: &AtomicBool,
) -> u64 {
    let mut pushed = 0;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(every);
        let counts: Vec<f64> =
            per_server.iter().map(|c| c.load(Ordering::Relaxed) as f64).collect();
        let peak = counts.iter().fold(0.0_f64, |a, &b| a.max(b));
        if peak == 0.0 {
            continue;
        }
        let csv: Vec<String> = counts.iter().map(|c| format!("{:.4}", c / peak)).collect();
        if send_ctl(target, &format!("backlogs {}", csv.join(","))).is_ok() {
            pushed += 1;
        }
    }
    pushed
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let per_server: Arc<Vec<AtomicU64>> =
        Arc::new((0..args.servers).map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs_f64(args.duration_s);

    let feedback = (args.feedback_ms > 0).then(|| {
        let target = args.target;
        let every = Duration::from_millis(args.feedback_ms);
        let per_server = Arc::clone(&per_server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || feedback_loop(target, every, &per_server, &stop))
    });

    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|w| {
            let args = args.clone();
            let per_server = Arc::clone(&per_server);
            std::thread::spawn(move || client_loop(w as u64, &args, deadline, &per_server))
        })
        .collect();

    let mut totals = ClientStats::default();
    let mut failed = false;
    for (i, w) in workers.into_iter().enumerate() {
        match w.join().expect("client thread panicked") {
            Ok(s) => {
                totals.sent += s.sent;
                totals.answered += s.answered;
                totals.malformed += s.malformed;
                totals.timeouts += s.timeouts;
            }
            Err(e) => {
                eprintln!("loadgen: client {i}: {e}");
                failed = true;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let feedback_pushes = feedback.map_or(0, |f| f.join().expect("feedback thread panicked"));

    if args.shutdown {
        match send_ctl(args.target, "shutdown") {
            Ok(ack) => eprintln!("loadgen: daemon acked shutdown ({ack})"),
            Err(e) => {
                eprintln!("loadgen: shutdown ctl failed: {e}");
                failed = true;
            }
        }
    }

    let qps = totals.answered as f64 / elapsed;
    let counts: Vec<u64> = per_server.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let json = serde_json::json!({
        "qps": qps,
        "elapsed_s": elapsed,
        "clients": args.clients,
        "domains": args.domains,
        "sent": totals.sent,
        "answered": totals.answered,
        "malformed": totals.malformed,
        "timeouts": totals.timeouts,
        "feedback_pushes": feedback_pushes,
        "per_server_answers": counts,
    });
    println!("{}", serde_json::to_string_pretty(&json).expect("serialize"));
    eprintln!(
        "loadgen: {:.0} answers/s over {elapsed:.2} s ({} sent, {} answered, {} malformed, \
         {} timeouts, {feedback_pushes} backlog pushes)",
        qps, totals.sent, totals.answered, totals.malformed, totals.timeouts
    );

    if totals.malformed > 0 {
        eprintln!("loadgen: FAILED — {} malformed responses", totals.malformed);
        failed = true;
    }
    if let Some(floor) = args.min_qps {
        if qps < floor {
            eprintln!("loadgen: FAILED — {qps:.0} qps below the {floor:.0} qps floor");
            failed = true;
        } else {
            eprintln!("loadgen: ok — {qps:.0} qps ≥ {floor:.0} qps floor, zero malformed");
        }
    }
    std::process::exit(i32::from(failed));
}
