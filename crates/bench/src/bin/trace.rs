//! `trace` — run a simulation with the observability recorders switched on
//! and capture a structured JSONL decision trace.
//!
//! Every DNS scheduling decision (domain, class, candidate set, exclusions,
//! chosen server, TTL, policy state), every alarm/normal/down/up signal,
//! every liveness transition (including servers already down when warm-up
//! ends), every name-server cache miss and every collection round lands as
//! one JSON object per line — grep-able, jq-able, diff-able.
//!
//! ```sh
//! cargo run --release -p geodns-bench --bin trace -- site.json --out decisions.jsonl
//! # Inspect:
//! head -3 decisions.jsonl
//! grep '"ev":"liveness"' decisions.jsonl
//! ```

use geodns_core::{run_simulation, SimConfig};

fn usage() -> ! {
    eprintln!(
        "usage: trace <config.json> [--out <trace.jsonl>] [--max-records <N>] \
         [--failures <events.csv>]"
    );
    eprintln!("  --out          where to write the JSONL trace (default trace.jsonl)");
    eprintln!("  --max-records  record budget before the trace is truncated (default 1000000)");
    eprintln!("  --failures     also dump the liveness transitions (t_s,server,up) as CSV");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut path: Option<String> = None;
    let mut out = String::from("trace.jsonl");
    let mut max_records: Option<u64> = None;
    let mut failures_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("error: --out requires a file path");
                    usage();
                };
                out = value.clone();
            }
            "--max-records" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("error: --max-records requires a number");
                    usage();
                };
                match value.parse() {
                    Ok(n) if n > 0 => max_records = Some(n),
                    _ => {
                        eprintln!("error: --max-records must be a positive integer, got '{value}'");
                        usage();
                    }
                }
            }
            "--failures" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("error: --failures requires a file path");
                    usage();
                };
                failures_path = Some(value.clone());
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'");
                usage();
            }
            positional => {
                if path.is_some() {
                    eprintln!("error: unexpected extra argument '{positional}'");
                    usage();
                }
                path = Some(positional.to_string());
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("error: missing <config.json>");
        usage();
    };

    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut cfg: SimConfig =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
    cfg.obs.counters = true;
    cfg.obs.trace_path = Some(out.clone());
    if let Some(n) = max_records {
        cfg.obs.trace_max_records = n;
    }
    if failures_path.is_some() {
        cfg.record_timeline = true;
    }

    let report = run_simulation(&cfg).unwrap_or_else(|e| die(&format!("invalid config: {e}")));
    let obs = report.obs.as_ref().expect("counters were enabled");

    if let (Some(csv_out), Some(timeline)) = (&failures_path, &report.timeline) {
        std::fs::write(csv_out, timeline.failure_events_to_csv())
            .unwrap_or_else(|e| die(&format!("cannot write {csv_out}: {e}")));
        eprintln!("wrote {} failure events to {csv_out}", timeline.failure_events.len());
    }

    eprintln!(
        "trace: {} records to {out} ({} dropped over budget)",
        obs.trace_records_written, obs.trace_records_dropped
    );
    eprintln!(
        "  dns decisions  {:>10}  ({} under exclusions; TTL mean/min/max {:.1}/{:.1}/{:.1} s)",
        obs.dns_decisions,
        obs.dns_decisions_constrained,
        obs.ttl_mean_s,
        obs.ttl_min_s,
        obs.ttl_max_s
    );
    eprintln!(
        "  signals        {:>10}  (alarm {}, normal {}, down {}, up {})",
        obs.signals_alarm + obs.signals_normal + obs.signals_down + obs.signals_up,
        obs.signals_alarm,
        obs.signals_normal,
        obs.signals_down,
        obs.signals_up
    );
    eprintln!(
        "  liveness       {:>10}  ({} crashes, {} repairs)",
        obs.crashes + obs.repairs,
        obs.crashes,
        obs.repairs
    );
    eprintln!(
        "  ns cache       {:>10}  lookups ({} hits, {} cold misses, {} expired)",
        obs.ns_hits + obs.ns_misses_cold + obs.ns_misses_expired,
        obs.ns_hits,
        obs.ns_misses_cold,
        obs.ns_misses_expired
    );
    eprintln!(
        "  queue events   {:>10}  ({} arrivals, {} departures, {} crash-dropped hits)",
        obs.queue_arrivals + obs.queue_departures,
        obs.queue_arrivals,
        obs.queue_departures,
        obs.queue_crash_drops
    );
    eprintln!(
        "  samples        {:>10}  utilization, {} collect rounds",
        obs.util_samples, obs.collects
    );
    println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
