//! `run_config` — run a simulation described by a JSON `SimConfig` file
//! and print the report as JSON. The round-trip tool for scripted sweeps.
//!
//! ```sh
//! # Emit a template, edit it, run it:
//! cargo run --release -p geodns-bench --bin run_config -- --template > site.json
//! cargo run --release -p geodns-bench --bin run_config -- site.json
//! # Also dump the utilization time series for plotting:
//! cargo run --release -p geodns-bench --bin run_config -- site.json --timeline utils.csv
//! ```

use geodns_core::{run_simulation, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    match args.first().map(String::as_str) {
        Some("--template") => {
            let cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
            println!("{}", serde_json::to_string_pretty(&cfg).expect("serialize template"));
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            let mut cfg: SimConfig = serde_json::from_str(&text)
                .unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
            let timeline_path =
                args.iter().position(|a| a == "--timeline").and_then(|i| args.get(i + 1)).cloned();
            if timeline_path.is_some() {
                cfg.record_timeline = true;
            }
            let report =
                run_simulation(&cfg).unwrap_or_else(|e| die(&format!("invalid config: {e}")));
            if let (Some(out), Some(timeline)) = (timeline_path, &report.timeline) {
                std::fs::write(&out, timeline.to_csv())
                    .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
                eprintln!("wrote timeline ({} samples) to {out}", timeline.len());
            }
            eprintln!(
                "{}: P(maxU<0.98) = {:.3}, mean util = {:.3}, page p95 = {:.0} ms",
                report.algorithm,
                report.p98(),
                report.mean_util(),
                report.page_response_p95_s * 1e3
            );
            println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
        }
        None => {
            eprintln!("usage: run_config <config.json> | run_config --template");
            std::process::exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
