//! `run_config` — run a simulation described by a JSON `SimConfig` file
//! and print the report as JSON. The round-trip tool for scripted sweeps.
//!
//! ```sh
//! # Emit a template, edit it, run it:
//! cargo run --release -p geodns-bench --bin run_config -- --template > site.json
//! cargo run --release -p geodns-bench --bin run_config -- site.json
//! # Also dump the utilization time series for plotting:
//! cargo run --release -p geodns-bench --bin run_config -- site.json --timeline utils.csv
//! # And the liveness transitions (needs fault injection in the config):
//! cargo run --release -p geodns-bench --bin run_config -- site.json --failures faults.csv
//! ```

use geodns_core::{run_simulation, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn usage() -> ! {
    eprintln!("usage: run_config <config.json> [--timeline <utils.csv>] [--failures <events.csv>]");
    eprintln!("       run_config --template");
    eprintln!("  --timeline  also dump the utilization time series as CSV");
    eprintln!("  --failures  also dump the liveness transitions (t_s,server,up) as CSV");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--template") {
        if args.len() > 1 {
            eprintln!("error: --template takes no further arguments");
            usage();
        }
        let cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
        println!("{}", serde_json::to_string_pretty(&cfg).expect("serialize template"));
        return;
    }

    let mut path: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut failures_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeline" | "--failures" => {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("error: {flag} requires a file path");
                    usage();
                };
                let slot =
                    if flag == "--timeline" { &mut timeline_path } else { &mut failures_path };
                if slot.is_some() {
                    eprintln!("error: {flag} given twice");
                    usage();
                }
                *slot = Some(value.clone());
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'");
                usage();
            }
            positional => {
                if path.is_some() {
                    eprintln!("error: unexpected extra argument '{positional}'");
                    usage();
                }
                path = Some(positional.to_string());
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("error: missing <config.json>");
        usage();
    };

    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let mut cfg: SimConfig =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
    if timeline_path.is_some() || failures_path.is_some() {
        cfg.record_timeline = true;
    }
    let report = run_simulation(&cfg).unwrap_or_else(|e| die(&format!("invalid config: {e}")));
    if let (Some(out), Some(timeline)) = (&timeline_path, &report.timeline) {
        std::fs::write(out, timeline.to_csv())
            .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("wrote timeline ({} samples) to {out}", timeline.len());
    }
    if let (Some(out), Some(timeline)) = (&failures_path, &report.timeline) {
        std::fs::write(out, timeline.failure_events_to_csv())
            .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        eprintln!("wrote {} failure events to {out}", timeline.failure_events.len());
    }
    eprintln!(
        "{}: P(maxU<0.98) = {:.3}, mean util = {:.3}, page p95 = {:.0} ms",
        report.algorithm,
        report.p98(),
        report.mean_util(),
        report.page_response_p95_s * 1e3
    );
    println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
