//! `est_compare` — estimator-vs-oracle comparison on one workload.
//!
//! Runs the paper's DRR2-TTL/S_K configuration twice on the *same*
//! workload: once with the oracle estimator (the scheduler is told the
//! nominal per-domain rates) and once with the measured EMA estimator
//! (the scheduler learns them from the §3 collection loop). The measured
//! run writes a JSONL decision trace (the PR 3 `Probe` machinery) whose
//! `collect` records are then replayed through a *fresh cold-start*
//! estimator — exactly the uniform-belief bootstrap `geodnsd` performs
//! live — to measure how many collection rounds the estimate needs to
//! converge on the true hidden-load shares.
//!
//! ```sh
//! cargo run --release -p geodns-bench --bin est_compare
//! cargo run --release -p geodns-bench --bin est_compare -- \
//!     --duration 3600 --interval 32 --alpha 0.25 --live loadgen.json
//! ```
//!
//! `--live loadgen.json` merges a `loadgen --json --check-weights` report
//! (the daemon steering itself from its own estimates) into the output so
//! the live daemon and the simulator can be read side by side.

use std::fs::File;
use std::io::{BufRead, BufReader};

use geodns_core::{
    run_simulation, Algorithm, EstimatorKind, HiddenLoadEstimator, SimConfig, SimReport,
};
use geodns_server::HeterogeneityLevel;

fn usage() -> ! {
    eprintln!(
        "usage: est_compare [--duration S] [--warmup S] [--seed N] \
         [--interval S] [--alpha A] [--live loadgen.json] [--json]"
    );
    eprintln!("  --duration  measured span in seconds, > 0 (default 3600)");
    eprintln!("  --warmup    warm-up span in seconds, >= 0 (default 600)");
    eprintln!("  --seed      master RNG seed, u64 (default 1998)");
    eprintln!("  --interval  collection interval in seconds, > 0 (default 32)");
    eprintln!("  --alpha     EMA smoothing factor in (0, 1] (default 0.25)");
    eprintln!("  --live      merge a loadgen --json report from a live daemon run");
    eprintln!("  --json      emit the comparison as one JSON object");
    std::process::exit(2);
}

struct Args {
    duration: f64,
    warmup: f64,
    seed: u64,
    interval: f64,
    alpha: f64,
    live: Option<String>,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        duration: 3600.0,
        warmup: 600.0,
        seed: 1998,
        interval: 32.0,
        alpha: 0.25,
        live: None,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        let mut value = |name: &str| {
            i += 1;
            argv.get(i).cloned().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage();
            })
        };
        match flag.as_str() {
            "--duration" => {
                args.duration = parse_pos(&value("--duration"), "--duration");
            }
            "--warmup" => {
                let v = value("--warmup");
                args.warmup = match v.parse() {
                    Ok(w) if w >= 0.0 => w,
                    _ => {
                        eprintln!("error: --warmup must be >= 0, got '{v}'");
                        usage();
                    }
                };
            }
            "--seed" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed must be a u64, got '{v}'");
                    usage();
                });
            }
            "--interval" => args.interval = parse_pos(&value("--interval"), "--interval"),
            "--alpha" => {
                let v = value("--alpha");
                args.alpha = match v.parse() {
                    Ok(a) if a > 0.0 && a <= 1.0 => a,
                    _ => {
                        eprintln!("error: --alpha must be in (0, 1], got '{v}'");
                        usage();
                    }
                };
            }
            "--live" => args.live = Some(value("--live")),
            "--json" => args.json = true,
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage();
            }
        }
        i += 1;
    }
    args
}

fn parse_pos(v: &str, name: &str) -> f64 {
    match v.parse() {
        Ok(x) if x > 0.0 => x,
        _ => {
            eprintln!("error: {name} must be a positive number, got '{v}'");
            usage();
        }
    }
}

/// Max absolute per-domain difference between two relative-share vectors.
fn weight_err_max(estimated: &[f64], truth: &[f64]) -> f64 {
    estimated.iter().zip(truth).map(|(e, t)| (e - t).abs()).fold(0.0, f64::max)
}

/// One `{"ev":"collect","t_s":..,"counts":[..]}` trace record.
struct Collect {
    counts: Vec<u64>,
}

/// Pulls the collection rounds out of a JSONL decision trace.
fn read_collects(path: &str) -> Result<Vec<Collect>, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut out = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| format!("read {path}: {e}"))?;
        let rec: serde_json::Value =
            serde_json::from_str(&line).map_err(|e| format!("parse {path}: {e}"))?;
        if rec["ev"] != "collect" {
            continue;
        }
        let counts = rec["counts"]
            .as_array()
            .ok_or("collect record without counts")?
            .iter()
            .map(|c| c.as_u64().ok_or_else(|| format!("bad count {c}")))
            .collect::<Result<_, _>>()?;
        out.push(Collect { counts });
    }
    Ok(out)
}

/// Replays collection rounds through a fresh uniform cold-start
/// estimator (the live daemon's bootstrap) and returns the per-round
/// max-abs error of the relative weights against the true shares.
fn replay_convergence(collects: &[Collect], kind: EstimatorKind, truth: &[f64]) -> Vec<f64> {
    let interval = kind.collect_interval_or_zero();
    let mut est = HiddenLoadEstimator::new(kind, &vec![1.0; truth.len()]);
    collects
        .iter()
        .map(|c| {
            est.ingest(&c.counts, interval);
            weight_err_max(&est.relative_weights(), truth)
        })
        .collect()
}

/// Extension trait shim: the collection interval of an adaptive kind.
trait IntervalOf {
    fn collect_interval_or_zero(&self) -> f64;
}
impl IntervalOf for EstimatorKind {
    fn collect_interval_or_zero(&self) -> f64 {
        match *self {
            EstimatorKind::Oracle => 0.0,
            EstimatorKind::Measured { collect_interval_s, .. }
            | EstimatorKind::WindowAverage { collect_interval_s, .. } => collect_interval_s,
        }
    }
}

fn run(cfg: &SimConfig, label: &str) -> SimReport {
    match run_simulation(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {label} run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    let kind = EstimatorKind::Measured { collect_interval_s: args.interval, ema_alpha: args.alpha };
    if let Err(e) = kind.validate() {
        eprintln!("error: {e}");
        usage();
    }

    let mut base = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    base.duration_s = args.duration;
    base.warmup_s = args.warmup;
    base.seed = args.seed;

    // True hidden shares: the workload's nominal per-domain rates,
    // normalized — the quantity the oracle is spoon-fed and the measured
    // estimator has to learn.
    let workload = match base.workload.build() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: workload: {e}");
            std::process::exit(1);
        }
    };
    let total: f64 = workload.nominal_rates().iter().sum();
    let truth: Vec<f64> = workload.nominal_rates().iter().map(|r| r / total).collect();

    let oracle_report = run(&base, "oracle");

    let trace_path = std::env::temp_dir()
        .join(format!("est_compare_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut measured_cfg = base.clone();
    measured_cfg.estimator = kind;
    measured_cfg.obs.trace_path = Some(trace_path.clone());
    let measured_report = run(&measured_cfg, "measured");

    let collects = match read_collects(&trace_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_file(&trace_path);
    let errs = replay_convergence(&collects, kind, &truth);
    let final_err = errs.last().copied().unwrap_or(f64::NAN);
    let rounds_to_5pct = errs.iter().position(|&e| e < 0.05).map(|i| i + 1);

    let live = args.live.as_deref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: read {path}: {e}");
            std::process::exit(1);
        });
        serde_json::from_str::<serde_json::Value>(&text).unwrap_or_else(|e| {
            eprintln!("error: parse {path}: {e}");
            std::process::exit(1);
        })
    });

    if args.json {
        let out = serde_json::json!({
            "config": {
                "duration_s": args.duration,
                "warmup_s": args.warmup,
                "seed": args.seed,
                "collect_interval_s": args.interval,
                "ema_alpha": args.alpha,
            },
            "truth_shares": truth,
            "oracle": summary(&oracle_report),
            "measured": summary(&measured_report),
            "replay": {
                "collections": collects.len(),
                "weight_err_max_final": final_err,
                "rounds_to_5pct": rounds_to_5pct,
                "weight_err_per_round": errs,
            },
            "live": live,
        });
        println!("{out}");
        return;
    }

    println!(
        "est_compare: DRR2-TTL/S_K @ H35, duration {:.0}s (+{:.0}s warmup), seed {}, \
         collect every {:.0}s, alpha {}",
        args.duration, args.warmup, args.seed, args.interval, args.alpha
    );
    println!();
    println!("  estimator  mean maxU  P(maxU<0.98)  alarms  dns queries");
    for (name, r) in [("oracle", &oracle_report), ("measured", &measured_report)] {
        println!(
            "  {name:<9}  {:>9.4}  {:>12.4}  {:>6}  {:>11}",
            r.mean_max_util(),
            r.p98(),
            r.alarms,
            r.dns_queries
        );
    }
    println!();
    println!(
        "  cold-start replay: {} collections, final weight err {:.4}, \
         err < 0.05 after {} rounds",
        collects.len(),
        final_err,
        rounds_to_5pct.map_or_else(|| "∞".to_string(), |r| r.to_string())
    );
    if let Some(live) = &live {
        println!();
        println!("  live daemon (loadgen report):");
        for key in ["feedback_mode", "qps", "max_util_proxy", "weight_err_max"] {
            if !live[key].is_null() {
                println!("    {key}: {}", live[key]);
            }
        }
        if let Some(w) = live["weights_estimated"].as_array() {
            let csv: Vec<String> =
                w.iter().map(|x| format!("{:.4}", x.as_f64().unwrap_or(f64::NAN))).collect();
            println!("    weights_estimated: {}", csv.join(","));
        }
    }
}

fn summary(r: &SimReport) -> serde_json::Value {
    serde_json::json!({
        "mean_max_util": r.mean_max_util(),
        "p_max_util_lt_098": r.p98(),
        "alarms": r.alarms,
        "dns_queries": r.dns_queries,
        "mean_util": r.mean_util(),
    })
}
