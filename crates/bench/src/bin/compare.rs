//! `compare` — run the full algorithm catalogue side by side on one
//! heterogeneity level and print a comparison table.
//!
//! ```sh
//! cargo run --release -p geodns-bench --bin compare -- [het%] [duration_s] [seed] [--jobs N]
//! # e.g.
//! cargo run --release -p geodns-bench --bin compare -- 50 18000 42 --jobs 4
//! ```

use geodns_core::{format_table, run_all_with_jobs, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;

fn usage() -> ! {
    eprintln!("usage: compare [het%] [duration_s] [seed] [--jobs N]");
    eprintln!("  het%        heterogeneity level: 0, 20, 35, 50 or 65 (default 20)");
    eprintln!("  duration_s  measured span in seconds, > 0 (default 18000)");
    eprintln!("  seed        master RNG seed, u64 (default 1998)");
    eprintln!("  --jobs N    cap sweep worker threads at N (default: all cores,");
    eprintln!("              or the GEODNS_JOBS environment variable)");
    std::process::exit(2);
}

fn parse_level(arg: Option<&String>) -> HeterogeneityLevel {
    match arg.map(String::as_str) {
        Some("0") => HeterogeneityLevel::H0,
        Some("20") | None => HeterogeneityLevel::H20,
        Some("35") => HeterogeneityLevel::H35,
        Some("50") => HeterogeneityLevel::H50,
        Some("65") => HeterogeneityLevel::H65,
        Some(other) => {
            eprintln!("error: unknown heterogeneity level '{other}' (use 0/20/35/50/65)");
            usage()
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let Some(value) = args.get(i + 1) else {
            eprintln!("error: --jobs requires a thread count");
            usage();
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => jobs = Some(n),
            _ => {
                eprintln!("error: --jobs must be a positive integer, got '{value}'");
                usage();
            }
        }
        args.drain(i..=i + 1);
    }
    if args.len() > 3 {
        eprintln!("error: too many arguments");
        usage();
    }
    let level = parse_level(args.first());
    let duration: f64 = match args.get(1) {
        None => 18000.0,
        Some(s) => match s.parse() {
            Ok(d) if d > 0.0 => d,
            _ => {
                eprintln!("error: duration_s must be a positive number, got '{s}'");
                usage()
            }
        },
    };
    let seed: u64 = match args.get(2) {
        None => 1998,
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("error: seed must be a u64, got '{s}'");
                usage()
            }
        },
    };

    let algorithms = [
        Algorithm::rr(),
        Algorithm::rr2(),
        Algorithm::dal(),
        Algorithm::mrl(),
        Algorithm::prr_ttl1(),
        Algorithm::prr2_ttl1(),
        Algorithm::prr2_ttl(2),
        Algorithm::prr2_ttl_k(),
        Algorithm::drr2_ttl_s(1),
        Algorithm::drr2_ttl_s(2),
        Algorithm::drr2_ttl_s_k(),
    ];

    let mut configs: Vec<SimConfig> = algorithms
        .iter()
        .map(|&algorithm| {
            let mut cfg = SimConfig::paper_default(algorithm, level);
            cfg.duration_s = duration;
            cfg.warmup_s = (duration * 0.1).max(120.0);
            cfg.seed = seed;
            cfg
        })
        .collect();
    let mut ideal = SimConfig::ideal(level);
    ideal.duration_s = duration;
    ideal.warmup_s = (duration * 0.1).max(120.0);
    ideal.seed = seed;
    configs.push(ideal);

    eprintln!(
        "running {} algorithms at heterogeneity {level}, {duration:.0}s each, seed {seed} …",
        configs.len()
    );
    let t0 = std::time::Instant::now();
    let reports = match jobs {
        // No flag: `run_all` applies the GEODNS_JOBS environment cap.
        None => geodns_core::run_all(&configs),
        Some(j) => run_all_with_jobs(&configs, Some(j)),
    }
    .expect("valid configs");
    eprintln!("done in {:.1?}", t0.elapsed());

    let mut rows: Vec<Vec<String>> = reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let label =
                if i == reports.len() - 1 { "Ideal".to_string() } else { r.algorithm.clone() };
            vec![
                label,
                format!("{:.3}", r.prob_max_util_lt(0.9)),
                format!("{:.3}", r.p98()),
                format!("{:.3}", r.mean_max_util()),
                format!("{:.3}", r.mean_util()),
                format!("{:.0}", r.page_response_p95_s * 1e3),
                format!("{:.4}", r.address_request_rate),
                format!("{:.1}", r.dns_control_fraction * 100.0),
                format!("{}", r.alarms),
            ]
        })
        .collect();
    rows.sort_by(|a, b| b[2].partial_cmp(&a[2]).unwrap_or(std::cmp::Ordering::Equal));

    println!();
    println!(
        "{}",
        format_table(
            &[
                "algorithm",
                "P<0.9",
                "P<0.98",
                "maxU avg",
                "mean U",
                "p95 ms",
                "addr r/s",
                "DNS %",
                "alarms"
            ],
            &rows
        )
    );
}
