//! Shared harness for the paper-regeneration bench targets.
//!
//! Every `fig*`/`table*`/`sweep_*`/`ablation_*` bench target is a
//! `harness = false` binary that:
//!
//! 1. builds the experiment's configurations from the paper defaults,
//! 2. runs them in parallel ([`geodns_core::run_all`]),
//! 3. prints the same rows/series the paper reports, and
//! 4. persists the raw numbers to `target/paper/<id>.json`.
//!
//! Set `GEODNS_QUICK=1` (or pass `--quick`) to shrink runs for smoke
//! testing; paper-fidelity runs are the default.

mod burst;
mod chart;

pub use burst::BurstClock;
pub use chart::{ascii_chart, Series};

use std::fs;
use std::path::PathBuf;

use geodns_core::{Experiment, SimConfig, SimReport};

/// Whether the invocation asked for a shortened smoke run.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("GEODNS_QUICK").map(|v| v != "0").unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// Applies quick-mode shrinking to a paper config when enabled.
pub fn apply_mode(cfg: &mut SimConfig) {
    if quick_mode() {
        cfg.duration_s = 1200.0;
        cfg.warmup_s = 300.0;
    }
}

/// The grid of utilization levels used to print CDF curves (Figures 1–2).
#[must_use]
pub fn util_grid() -> Vec<f64> {
    (10..=20).map(|i| f64::from(i) * 0.05).collect() // 0.50 … 1.00
}

/// Runs a labelled experiment, printing progress to stderr.
///
/// # Panics
///
/// Panics on configuration errors — a bench target with an invalid config
/// is a bug, not an operational condition.
#[must_use]
pub fn run_experiment(experiment: &Experiment) -> Vec<(String, SimReport)> {
    eprintln!(
        "[{}] running {} simulations{} …",
        experiment.id,
        experiment.rows.len(),
        if quick_mode() { " (quick mode)" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let results = experiment.run().unwrap_or_else(|e| panic!("{}: {e}", experiment.id));
    eprintln!("[{}] done in {:.1?}", experiment.id, t0.elapsed());
    results
}

/// Where the regenerated artifacts go.
#[must_use]
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper");
    fs::create_dir_all(&dir).expect("create target/paper");
    dir
}

/// Persists the experiment's raw reports as JSON for EXPERIMENTS.md.
pub fn save_json(id: &str, results: &[(String, SimReport)]) {
    let path = output_dir().join(format!("{id}.json"));
    let labelled: Vec<serde_json::Value> = results
        .iter()
        .map(|(label, report)| {
            serde_json::json!({
                "label": label,
                "report": report,
            })
        })
        .collect();
    let json = serde_json::to_string_pretty(&labelled).expect("serialize reports");
    fs::write(&path, json).expect("write JSON artifact");
    eprintln!("wrote {}", path.display());
}

/// Prints a Figure-1/2-style CDF table: one column per utilization level,
/// one row per algorithm.
pub fn print_cdf_table(title: &str, results: &[(String, SimReport)]) {
    let grid = util_grid();
    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(grid.iter().map(|x| format!("<{x:.2}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            let mut row = vec![label.clone()];
            row.extend(grid.iter().map(|&x| format!("{:.3}", r.prob_max_util_lt(x))));
            row
        })
        .collect();
    println!("\n{title}");
    println!("cumulative frequency  P(MaxUtilization < x)\n");
    println!("{}", geodns_core::format_table(&header_refs, &rows));

    let series: Vec<Series> =
        results.iter().map(|(label, r)| Series::new(label.clone(), r.cdf_curve(&grid))).collect();
    println!("{}", ascii_chart(&series, 72, 20));
}

/// Prints a Figure-3..7-style series table: `P(maxU < 0.98)` per x-value,
/// one row per algorithm. `points` is `[(x_label, results-at-x)]`.
pub fn print_p98_series(
    title: &str,
    x_name: &str,
    algorithms: &[String],
    points: &[(String, Vec<(String, SimReport)>)],
) {
    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(points.iter().map(|(x, _)| x.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = algorithms
        .iter()
        .map(|alg| {
            let mut row = vec![alg.clone()];
            for (_, results) in points {
                let p = results
                    .iter()
                    .find(|(label, _)| label == alg)
                    .map(|(_, r)| r.p98())
                    .unwrap_or(f64::NAN);
                row.push(format!("{p:.3}"));
            }
            row
        })
        .collect();
    println!("\n{title}");
    println!("P(MaxUtilization < 0.98) vs {x_name}\n");
    println!("{}", geodns_core::format_table(&header_refs, &rows));

    // Sketch the curves when the x labels parse as numbers.
    let xs: Vec<Option<f64>> = points
        .iter()
        .map(|(x, _)| {
            x.trim_end_matches(['%', 's'])
                .trim_start_matches(['K', 'N', 'i', '=', 'γ', 'θ'])
                .parse()
                .ok()
        })
        .collect();
    if xs.iter().all(Option::is_some) && xs.len() > 1 {
        let series: Vec<Series> = algorithms
            .iter()
            .map(|alg| {
                let pts = points
                    .iter()
                    .zip(&xs)
                    .filter_map(|((_, results), x)| {
                        results
                            .iter()
                            .find(|(label, _)| label == alg)
                            .map(|(_, r)| (x.expect("checked"), r.p98()))
                    })
                    .collect();
                Series::new(alg.clone(), pts)
            })
            .collect();
        println!("{}", ascii_chart(&series, 72, 20));
    }
}

/// Flattens per-x results into one labelled list for JSON persistence,
/// prefixing each label with its x value.
#[must_use]
pub fn flatten_series(points: &[(String, Vec<(String, SimReport)>)]) -> Vec<(String, SimReport)> {
    points
        .iter()
        .flat_map(|(x, results)| {
            results.iter().map(move |(label, r)| (format!("{x}|{label}"), r.clone()))
        })
        .collect()
}

/// The five policies the paper tracks in Figures 4–5: the four fully
/// adaptive TTL/K–TTL/S_K variants plus the coarse `PRR2-TTL/2` that is
/// naturally immune to the clamp.
#[must_use]
pub fn figure45_algorithms() -> Vec<geodns_core::Algorithm> {
    use geodns_core::Algorithm;
    vec![
        Algorithm::drr2_ttl_s_k(),
        Algorithm::drr_ttl_s_k(),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr_ttl_k(),
        Algorithm::prr2_ttl(2),
    ]
}

/// The eight policies of Figures 6–7: the TTL/K & TTL/S_K family (robust)
/// against the TTL/2 & TTL/S_2 family (error-sensitive).
#[must_use]
pub fn figure67_algorithms() -> Vec<geodns_core::Algorithm> {
    use geodns_core::Algorithm;
    vec![
        Algorithm::drr2_ttl_s_k(),
        Algorithm::drr_ttl_s_k(),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr_ttl_k(),
        Algorithm::drr2_ttl_s(2),
        Algorithm::drr_ttl_s(2),
        Algorithm::prr2_ttl(2),
        Algorithm::prr_ttl(2),
    ]
}

/// Runs the Figures 4–5 min-TTL sweep at one heterogeneity level: every NS
/// clamps proposed TTLs up to the threshold (the paper's worst case).
pub fn run_min_ttl_sweep(id: &str, fig_no: u32, level: geodns_core::HeterogeneityLevel, seed: u64) {
    use geodns_core::{Algorithm, Experiment, MinTtlBehavior};
    let algorithms = figure45_algorithms();
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();
    let thresholds = [0.0, 40.0, 80.0, 120.0, 160.0, 200.0, 240.0, 280.0];

    let mut points = Vec::new();
    for min_ttl in thresholds {
        let mut e = Experiment::new(format!("{id}@{min_ttl}"));
        for &algorithm in &algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, level);
            cfg.seed = seed;
            if min_ttl > 0.0 {
                cfg.ns_behavior = MinTtlBehavior::ClampToMin { min_ttl_s: min_ttl };
            }
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("{min_ttl:.0}s"), run_experiment(&e)));
    }

    print_p98_series(
        &format!("Figure {fig_no}: Sensitivity to minimum TTL (heterogeneity {level})"),
        "minimum TTL accepted by the name servers",
        &names,
        &points,
    );
    save_json(id, &flatten_series(&points));
}

/// Runs the fault-injection MTBF sweep: every server crashes/recovers as a
/// seeded exponential process (MTTR fixed) and clients follow the
/// paper-faithful pin-until-TTL failover, so a scheme's TTL length directly
/// bounds how long dead bindings keep swallowing hits. Answers whether the
/// short-TTL advantage doubles as a fast-failover advantage.
pub fn run_failure_sweep(id: &str, level: geodns_core::HeterogeneityLevel, seed: u64) {
    use geodns_core::{Algorithm, Experiment};
    use geodns_server::FailureSpec;

    let algorithms = [
        Algorithm::drr2_ttl_s_k(),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::rr(),
    ];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();
    let mtbfs = [600.0, 1200.0, 2400.0, 4800.0];
    const MTTR_S: f64 = 120.0;

    let mut points = Vec::new();
    for mtbf in mtbfs {
        let mut e = Experiment::new(format!("{id}@{mtbf}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, level);
            cfg.seed = seed;
            cfg.failures.enabled = true;
            cfg.failures.spec = FailureSpec { mtbf_s: mtbf, mttr_s: MTTR_S };
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("{mtbf:.0}s"), run_experiment(&e)));
    }

    print_p98_series(
        &format!(
            "X12: Load balance under server failures (MTTR {MTTR_S:.0} s, heterogeneity {level})"
        ),
        "mean time between failures per server",
        &names,
        &points,
    );
    print_failure_table(&names, &points);
    save_json(id, &flatten_series(&points));
}

/// Prints the failover-quality half of the failure sweep: the fraction of
/// hits lost to dead bindings, per-server availability, and how fast
/// traffic returns to a repaired server.
pub fn print_failure_table(algorithms: &[String], points: &[(String, Vec<(String, SimReport)>)]) {
    let mut header: Vec<String> = vec!["algorithm".into()];
    header.extend(points.iter().map(|(x, _)| format!("fail% @{x}")));
    header.extend(points.iter().map(|(x, _)| format!("rebal_s @{x}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = algorithms
        .iter()
        .map(|alg| {
            let mut row = vec![alg.clone()];
            for (_, results) in points {
                let f = results
                    .iter()
                    .find(|(label, _)| label == alg)
                    .map(|(_, r)| {
                        let total = r.hits_completed + r.hits_failed;
                        if total > 0 {
                            100.0 * r.hits_failed as f64 / total as f64
                        } else {
                            0.0
                        }
                    })
                    .unwrap_or(f64::NAN);
                row.push(format!("{f:.2}"));
            }
            for (_, results) in points {
                let t = results
                    .iter()
                    .find(|(label, _)| label == alg)
                    .map(|(_, r)| r.time_to_rebalance_mean_s)
                    .unwrap_or(f64::NAN);
                row.push(format!("{t:.1}"));
            }
            row
        })
        .collect();
    println!("\nfailed-hit share and time-to-rebalance after repair\n");
    println!("{}", geodns_core::format_table(&header_refs, &rows));
}

/// Runs the Figures 6–7 estimation-error sweep at one heterogeneity level:
/// the busiest domain's actual rate is inflated by e% (others deflated
/// proportionally) while the DNS keeps using the unperturbed estimates.
pub fn run_error_sweep(id: &str, fig_no: u32, level: geodns_core::HeterogeneityLevel, seed: u64) {
    use geodns_core::{Algorithm, Experiment};
    let algorithms = figure67_algorithms();
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();
    let errors = [0.0, 0.10, 0.20, 0.30, 0.40, 0.50];

    let mut points = Vec::new();
    for error in errors {
        let mut e = Experiment::new(format!("{id}@{error}"));
        for &algorithm in &algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, level);
            cfg.seed = seed;
            cfg.workload.rate_error = error;
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("{:.0}%", error * 100.0), run_experiment(&e)));
    }

    print_p98_series(
        &format!(
            "Figure {fig_no}: Sensitivity to error in estimating the domain hidden load weight \
             (heterogeneity {level})"
        ),
        "estimation error",
        &names,
        &points,
    );
    save_json(id, &flatten_series(&points));
}

/// Runs the X18 proximity sweep: the geographic latency model is enabled
/// and the RTT-band policy (at several band widths) competes with the
/// proximity-blind baselines on *client-perceived* latency — page response
/// plus the network round-trip of the (domain, server) pair the scheduler
/// chose. Returns the labelled reports so the bench binary can gate on
/// them with `--check`.
pub fn run_rtt_band_sweep(
    id: &str,
    level: geodns_core::HeterogeneityLevel,
    seed: u64,
) -> Vec<(String, SimReport)> {
    use geodns_core::{Algorithm, Experiment, DEFAULT_BAND_MS};

    let mut e = Experiment::new(id.to_string());
    let mut push = |label: String, algorithm: Algorithm| {
        let mut cfg = SimConfig::paper_default(algorithm, level);
        cfg.seed = seed;
        cfg.latency.enabled = true;
        apply_mode(&mut cfg);
        e.push(label, cfg);
    };
    push("RR".into(), Algorithm::rr());
    push("DAL".into(), Algorithm::dal());
    push("DRR2-TTL/S_K".into(), Algorithm::drr2_ttl_s_k());
    for band_ms in [50, 100, DEFAULT_BAND_MS, 800] {
        push(format!("RTT-BAND:{band_ms}"), Algorithm::rtt_band(band_ms));
    }
    let results = run_experiment(&e);

    let header =
        ["algorithm", "perceived_mean_s", "p50_s", "p95_s", "p99_s", "rtt_mean_ms", "P(maxU<.98)"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, r)| {
            let lat = r.latency.as_ref().expect("latency model enabled for every row");
            vec![
                label.clone(),
                format!("{:.3}", lat.perceived_mean_s),
                format!("{:.3}", lat.perceived_p50_s),
                format!("{:.3}", lat.perceived_p95_s),
                format!("{:.3}", lat.perceived_p99_s),
                format!("{:.1}", lat.rtt_mean_s * 1000.0),
                format!("{:.3}", r.p98()),
            ]
        })
        .collect();
    println!("\nX18: Client-perceived latency with the geographic model (heterogeneity {level})\n");
    println!("{}", geodns_core::format_table(&header, &rows));
    save_json(id, &results);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn util_grid_covers_the_interesting_range() {
        let g = util_grid();
        assert_eq!(g.first().copied(), Some(0.5));
        assert_eq!(g.last().copied(), Some(1.0));
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn flatten_prefixes_labels() {
        let r = geodns_core::SimReport {
            algorithm: "RR".into(),
            seed: 0,
            heterogeneity_pct: 0.0,
            measured_span_s: 1.0,
            max_util_samples: vec![],
            per_server_mean_util: vec![],
            page_response_mean_s: 0.0,
            page_response_p95_s: 0.0,
            sessions: 0,
            dns_queries: 0,
            address_request_rate: 0.0,
            dns_control_fraction: 0.0,
            hits_completed: 0,
            alarms: 0,
            ns_miss_fraction: 0.0,
            page_response_hot_mean_s: 0.0,
            page_response_normal_mean_s: 0.0,
            client_cache_hits: 0,
            hits_failed: 0,
            rebinds: 0,
            per_server_availability: vec![],
            time_to_rebalance_mean_s: 0.0,
            hits_issued_total: 0,
            hits_served_total: 0,
            hits_failed_total: 0,
            hits_in_flight: 0,
            timeline: None,
            obs: None,
            latency: None,
        };
        let flat = flatten_series(&[("20".into(), vec![("RR".into(), r)])]);
        assert_eq!(flat[0].0, "20|RR");
    }
}
