//! The failure sweep must leave its JSON artifact behind — EXPERIMENTS.md
//! links to `target/paper/sweep_failures.json` as the raw data.

use std::fs;

#[test]
fn sweep_failures_emits_its_json_artifact() {
    std::env::set_var("GEODNS_QUICK", "1");
    geodns_bench::run_failure_sweep("sweep_failures", geodns_core::HeterogeneityLevel::H35, 1998);

    let path = geodns_bench::output_dir().join("sweep_failures.json");
    let raw = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("artifact is valid JSON");
    let rows = parsed.as_array().expect("artifact is a labelled list");
    // 4 MTBF points × 4 algorithms.
    assert_eq!(rows.len(), 16, "one row per (MTBF, algorithm) pair");
    for row in rows {
        let label = row["label"].as_str().expect("label");
        assert!(label.contains('|'), "label {label:?} carries its MTBF prefix");
        assert!(row["report"]["hits_completed"].as_u64().unwrap_or(0) > 0);
    }
}
