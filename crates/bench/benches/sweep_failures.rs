//! **X12**: server fault injection — every server crashes and recovers as
//! a seeded exponential MTBF/MTTR process while clients follow the
//! paper-faithful pin-until-TTL failover. The paper's short-TTL schemes
//! were designed for load balance; this sweep asks whether the same short
//! TTLs also buy *fast failover*: a dead binding keeps swallowing hits
//! only until its TTL expires, so `TTL/S_K`'s fine-grained short answers
//! should shed dead servers faster than the coarse `TTL/2` tiers or the
//! constant-TTL round-robin baseline.

use geodns_bench::run_failure_sweep;
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    run_failure_sweep("sweep_failures", HeterogeneityLevel::H35, SEED);
}
