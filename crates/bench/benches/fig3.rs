//! Regenerates **Figure 3**: sensitivity of the main schemes to system
//! heterogeneity (20% → 65%), including the DAL transplant from the
//! homogeneous-site paper that adaptive TTL obsoletes.

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [
        Algorithm::drr2_ttl_s_k(),
        Algorithm::drr2_ttl_s(2),
        Algorithm::prr2_ttl_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::dal(),
        Algorithm::rr(),
    ];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let levels = [
        HeterogeneityLevel::H20,
        HeterogeneityLevel::H35,
        HeterogeneityLevel::H50,
        HeterogeneityLevel::H65,
    ];

    let mut points = Vec::new();
    for level in levels {
        let mut e = Experiment::new(format!("fig3@{level}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, level);
            cfg.seed = SEED;
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("{}%", level.percent()), run_experiment(&e)));
    }

    print_p98_series(
        "Figure 3: Sensitivity to system heterogeneity",
        "heterogeneity (max difference among server capacities)",
        &names,
        &points,
    );
    save_json("fig3", &flatten_series(&points));
}
