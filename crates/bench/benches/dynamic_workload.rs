//! **X8**: the algorithms under *time-varying* load — a diurnal swell and
//! a flash crowd — rather than the paper's stationary snapshots. The
//! question: does adaptive TTL's advantage survive when the hidden loads
//! it adapts to are moving targets?

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, EstimatorKind, Experiment, RateProfile, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [
        Algorithm::rr(),
        Algorithm::prr2_ttl(2),
        Algorithm::prr2_ttl_k(),
        Algorithm::drr2_ttl_s_k(),
    ];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let scenarios: Vec<(&str, RateProfile)> = vec![
        ("stationary", RateProfile::Constant),
        ("diurnal ±30% (2 h)", RateProfile::Diurnal { amplitude: 0.3, period_s: 7200.0 }),
        (
            "flash 3× on dom1",
            RateProfile::FlashCrowd { domain: 1, start_s: 3600.0, duration_s: 3600.0, factor: 3.0 },
        ),
        ("step 2× on dom0", RateProfile::Step { domain: 0, at_s: 5400.0, factor: 2.0 }),
    ];

    let mut points = Vec::new();
    for (label, profile) in &scenarios {
        let mut e = Experiment::new(format!("dynamic_workload@{label}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.workload.profile = *profile;
            // Live measurement: the realistic deployment for moving loads.
            cfg.estimator = EstimatorKind::measured_default();
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push(((*label).to_string(), run_experiment(&e)));
    }

    print_p98_series(
        "X8: Time-varying workloads with the measured estimator (heterogeneity 35%)",
        "workload scenario",
        &names,
        &points,
    );
    save_json("dynamic_workload", &flatten_series(&points));
}
