//! **X3**: what does the asynchronous alarm feedback buy? Sweeps the alarm
//! threshold θ, including θ = 1.0 which never fires (feedback off, since a
//! busy-fraction utilization cannot exceed 1).

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let algorithms = [Algorithm::rr(), Algorithm::prr2_ttl(2), Algorithm::drr2_ttl_s_k()];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let mut points = Vec::new();
    for theta in [0.70, 0.80, 0.90, 0.95, 1.0] {
        let mut e = Experiment::new(format!("ablation_alarm@{theta}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.alarm_threshold = theta;
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        let label = if theta >= 1.0 { "off".to_string() } else { format!("θ={theta:.2}") };
        points.push((label, run_experiment(&e)));
    }

    print_p98_series(
        "X3: Alarm-threshold ablation (heterogeneity 35%)",
        "alarm threshold θ",
        &names,
        &points,
    );
    save_json("ablation_alarm", &flatten_series(&points));
}
