//! Regenerates **Figure 6**: sensitivity to hidden-load estimation error
//! at 20% heterogeneity. The TTL/K & TTL/S_K family should cluster on top,
//! nearly flat; the TTL/2 & TTL/S_2 family degrades with error.

use geodns_bench::run_error_sweep;
use geodns_server::HeterogeneityLevel;

fn main() {
    run_error_sweep("fig6", 6, HeterogeneityLevel::H20, 1998);
}
