//! **X18**: proximity-aware scheduling under the geographic latency model.
//!
//! The latency model places the 20 client domains and 7 servers in seeded
//! regions (~15 ms intra-region, ~120 ms inter-region round trips) and the
//! report grows a *client-perceived latency* metric: page response plus
//! the network round trip of the (domain, server) pair the DNS chose.
//! The RTT-band policy keeps per-(domain, server) smoothed RTTs — primed
//! from the geography GeoIP-style, refined by completed pages — and picks
//! the in-band server with the least accumulated hidden load per unit
//! capacity, RTT-discounted, so it should beat the proximity-blind
//! baselines on perceived latency without giving up the load balance the
//! adaptive-TTL machinery buys.
//!
//! Modes:
//!
//! * default — paper-scale runs;
//! * `GEODNS_QUICK=1` / `--quick` — shortened smoke run for CI;
//! * `--check` — gate the results: the default-band RTT-band row must beat
//!   the RR row on perceived p95 while holding `P(maxU < 0.98)` within
//!   0.10 of it, and the p95 ratio must not drift more than 10% above the
//!   checked-in `BENCH_rtt_band.json` baseline (ratios, not raw seconds,
//!   so the gate is meaningful on any runner even though the simulation is
//!   deterministic anyway).

use std::path::PathBuf;

use geodns_bench::run_rtt_band_sweep;
use geodns_core::{SimReport, DEFAULT_BAND_MS};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn perceived_p95(results: &[(String, SimReport)], label: &str) -> f64 {
    results
        .iter()
        .find(|(l, _)| l == label)
        .unwrap_or_else(|| panic!("--check: missing row {label}"))
        .1
        .latency
        .as_ref()
        .expect("latency model enabled")
        .perceived_p95_s
}

fn p98(results: &[(String, SimReport)], label: &str) -> f64 {
    results
        .iter()
        .find(|(l, _)| l == label)
        .unwrap_or_else(|| panic!("missing row {label}"))
        .1
        .p98()
}

fn check(results: &[(String, SimReport)]) {
    let rtt_label = format!("RTT-BAND:{DEFAULT_BAND_MS}");
    let rr_p95 = perceived_p95(results, "RR");
    let rtt_p95 = perceived_p95(results, &rtt_label);
    let rr_p98 = p98(results, "RR");
    let rtt_p98 = p98(results, &rtt_label);
    let ratio = rtt_p95 / rr_p95;
    let mut failed = false;

    eprintln!(
        "check latency: {rtt_label} p95 {rtt_p95:.3}s vs RR {rr_p95:.3}s (ratio {ratio:.3}) … {}",
        if rtt_p95 < rr_p95 { "ok" } else { "REGRESSED" }
    );
    if rtt_p95 >= rr_p95 {
        failed = true;
    }
    eprintln!(
        "check balance: {rtt_label} P(maxU<.98) {rtt_p98:.3} vs RR {rr_p98:.3} (floor {:.3}) … {}",
        rr_p98 - 0.10,
        if rtt_p98 >= rr_p98 - 0.10 { "ok" } else { "REGRESSED" }
    );
    if rtt_p98 < rr_p98 - 0.10 {
        failed = true;
    }

    let path = repo_root().join("BENCH_rtt_band.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check: cannot read {}: {e}", path.display()));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check: bad baseline JSON: {e}"));
    let base_ratio = baseline["p95_ratio_rtt_over_rr"].as_f64().expect("baseline ratio");
    let ceiling = base_ratio * 1.10;
    eprintln!(
        "check baseline: p95 ratio {ratio:.3} vs committed {base_ratio:.3} (ceiling {ceiling:.3}) … {}",
        if ratio <= ceiling { "ok" } else { "REGRESSED" }
    );
    if ratio > ceiling {
        failed = true;
    }

    if failed {
        eprintln!("rtt_band: proximity win regressed vs RR / BENCH_rtt_band.json");
        std::process::exit(1);
    }
    eprintln!("rtt_band: RTT-band still beats RR on perceived p95 at comparable balance");
}

fn main() {
    let results = run_rtt_band_sweep("rtt_band", HeterogeneityLevel::H35, SEED);
    if std::env::args().any(|a| a == "--check") {
        check(&results);
    }
}
