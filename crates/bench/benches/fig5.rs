//! Regenerates **Figure 5**: the Figure-4 min-TTL sweep at 50%
//! heterogeneity, where the paper reports the crossover — beyond ~100 s
//! thresholds the probabilistic TTL/K schemes overtake `DRR2-TTL/S_K`.

use geodns_bench::run_min_ttl_sweep;
use geodns_server::HeterogeneityLevel;

fn main() {
    run_min_ttl_sweep("fig5", 5, HeterogeneityLevel::H50, 1998);
}
