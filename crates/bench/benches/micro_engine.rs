//! Criterion micro-benchmarks for the discrete-event engine: raw event
//! throughput bounds how many simulated hours per wall-clock second the
//! whole reproduction can achieve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use geodns_core::{run_simulation, Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;
use geodns_simcore::{Engine, EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut q| {
                    // Pseudo-random but deterministic times.
                    let mut t: u64 = 0x9e3779b97f4a7c15;
                    for i in 0..n as u64 {
                        t = t.wrapping_mul(6364136223846793005).wrapping_add(1);
                        q.push(SimTime::from_secs((t >> 40) as f64), i);
                    }
                    while q.pop().is_some() {}
                    q
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_engine_steps(c: &mut Criterion) {
    c.bench_function("engine_hold_model_100k_steps", |b| {
        b.iter(|| {
            // A self-rescheduling "hold" model: the classic DES engine
            // stress test.
            let mut eng = Engine::with_capacity(16);
            for i in 0..8u64 {
                eng.schedule_in(i as f64, i);
            }
            let mut steps = 0u64;
            while let Some((_, ev)) = eng.step() {
                steps += 1;
                if steps >= 100_000 {
                    break;
                }
                eng.schedule_in(((ev * 2654435761) % 100) as f64 + 0.1, ev + 1);
            }
            steps
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("five_sim_minutes_paper_model", |b| {
        b.iter(|| {
            let mut cfg =
                SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
            cfg.duration_s = 240.0;
            cfg.warmup_s = 60.0;
            cfg.seed = 7;
            run_simulation(&cfg).expect("valid config")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_engine_steps, bench_end_to_end);
criterion_main!(benches);
