//! Event-engine throughput harness: events/sec for both future-event-list
//! implementations, at several pending-set sizes.
//!
//! Raw event throughput bounds how many simulated hours per wall-clock
//! second the whole reproduction can achieve, so this harness is the
//! regression gate for the scheduler. It runs the classic *hold model*
//! (pop the minimum, reinsert at `now + X`) against both [`QueueKind`]s,
//! plus one end-to-end paper simulation per kind, and writes
//! `target/paper/micro_engine.json`.
//!
//! Modes:
//!
//! * default — full measurement (repeats, large step counts);
//! * `GEODNS_QUICK=1` / `--quick` — shortened smoke run for CI;
//! * `--check` — after measuring, compare against the checked-in
//!   `BENCH_engine.json` at the repository root and exit non-zero if the
//!   calendar queue's throughput advantage over the heap regressed by more
//!   than 20%. The gate compares *speedups* (calendar ÷ heap on the same
//!   machine, same run), not raw events/sec, so absolute machine speed
//!   cancels out and the check is meaningful on any CI runner.

use std::path::PathBuf;
use std::time::Instant;

use geodns_bench::{output_dir, quick_mode};
use geodns_core::{format_table, run_simulation, Algorithm, QueueKind, SimConfig};
use geodns_server::HeterogeneityLevel;
use geodns_simcore::{EventQueue, SimTime};

/// Mean hold increment in simulated seconds. The exact value is irrelevant
/// (only relative order matters); a non-trivial spread keeps the calendar
/// buckets realistically occupied.
const HOLD_MEAN: f64 = 8.0;

/// One measured hold-model configuration.
struct HoldPoint {
    pending: usize,
    heap_eps: f64,
    calendar_eps: f64,
}

impl HoldPoint {
    fn speedup(&self) -> f64 {
        self.calendar_eps / self.heap_eps
    }
}

/// A tiny deterministic generator for hold increments (xorshift64*): the
/// harness must not depend on ambient randomness.
struct HoldRng(u64);

impl HoldRng {
    fn next_increment(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let x = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Uniform in [0, 2·mean): same mean as exponential, cheaper to draw,
        // and identical for both queue kinds.
        (x >> 11) as f64 / (1u64 << 53) as f64 * (2.0 * HOLD_MEAN)
    }
}

/// Runs `steps` hold operations over a queue prefilled with `pending`
/// events and returns the measured events/sec (one hold = one pop + one
/// push = counted as one event delivered).
fn hold_throughput(kind: QueueKind, pending: usize, steps: u64) -> f64 {
    let mut q = EventQueue::<u32>::with_capacity_and_kind(pending, kind);
    let mut rng = HoldRng(0x9E37_79B9_7F4A_7C15 ^ pending as u64);
    for i in 0..pending {
        q.push(SimTime::from_secs(rng.next_increment()), i as u32);
    }
    let t0 = Instant::now();
    for _ in 0..steps {
        let (t, payload) = q.pop().expect("hold model never empties");
        q.push(t + rng.next_increment(), payload);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(q.len() == pending, "hold model must preserve the pending set");
    steps as f64 / elapsed
}

/// Best-of-`repeats` hold throughput (max events/sec: the minimum-noise
/// estimator for a CPU-bound inner loop).
fn hold_best(kind: QueueKind, pending: usize, steps: u64, repeats: usize) -> f64 {
    (0..repeats).map(|_| hold_throughput(kind, pending, steps)).fold(0.0, f64::max)
}

/// Wall-clock seconds for one paper simulation on the given queue kind.
fn end_to_end_seconds(kind: QueueKind, quick: bool) -> f64 {
    let mut cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H35);
    cfg.seed = 7;
    cfg.queue = kind;
    if quick {
        cfg.duration_s = 240.0;
        cfg.warmup_s = 60.0;
    } else {
        cfg.duration_s = 1800.0;
        cfg.warmup_s = 300.0;
    }
    let t0 = Instant::now();
    let report = run_simulation(&cfg).expect("valid config");
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(report.hits_completed > 0);
    elapsed
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Loads the checked-in baseline and fails the process if the measured
/// calendar-vs-heap speedup regressed by more than 20% at any size.
fn check_against_baseline(points: &[HoldPoint]) {
    let path = repo_root().join("BENCH_engine.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check: cannot read {}: {e}", path.display()));
    let baseline: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check: bad baseline JSON: {e}"));

    let mut failed = false;
    for p in points {
        let base = baseline["hold"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|b| b["pending"].as_u64() == Some(p.pending as u64));
        let Some(base) = base else {
            eprintln!("--check: no baseline entry for pending={}, skipping", p.pending);
            continue;
        };
        let base_speedup = base["speedup"].as_f64().expect("baseline speedup");
        let now = p.speedup();
        let floor = base_speedup * 0.8;
        let verdict = if now < floor { "REGRESSED" } else { "ok" };
        eprintln!(
            "check pending={:>7}: speedup {:.2}x vs baseline {:.2}x (floor {:.2}x) … {verdict}",
            p.pending, now, base_speedup, floor
        );
        if now < floor {
            failed = true;
        }
    }
    if failed {
        eprintln!("micro_engine: calendar-queue throughput regressed >20% vs BENCH_engine.json");
        std::process::exit(1);
    }
    eprintln!("micro_engine: throughput within 20% of the checked-in baseline");
}

fn main() {
    let quick = quick_mode();
    let check = std::env::args().any(|a| a == "--check");
    let (steps, repeats) = if quick { (400_000u64, 2) } else { (4_000_000u64, 3) };
    let sizes: &[usize] = &[1_000, 10_000, 100_000];

    eprintln!(
        "[micro_engine] hold model: {steps} steps x {repeats} repeats per point{}",
        if quick { " (quick mode)" } else { "" }
    );

    let mut points = Vec::new();
    for &pending in sizes {
        let heap_eps = hold_best(QueueKind::Heap, pending, steps, repeats);
        let calendar_eps = hold_best(QueueKind::Calendar, pending, steps, repeats);
        points.push(HoldPoint { pending, heap_eps, calendar_eps });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.pending),
                format!("{:.0}", p.heap_eps),
                format!("{:.0}", p.calendar_eps),
                format!("{:.2}x", p.speedup()),
            ]
        })
        .collect();
    println!("\nhold-model throughput (events/sec)\n");
    println!("{}", format_table(&["pending", "heap", "calendar", "speedup"], &rows));

    eprintln!("[micro_engine] end-to-end paper simulation, one run per queue kind …");
    let heap_s = end_to_end_seconds(QueueKind::Heap, quick);
    let calendar_s = end_to_end_seconds(QueueKind::Calendar, quick);
    println!(
        "end-to-end simulation: heap {heap_s:.2} s, calendar {calendar_s:.2} s ({:.2}x)",
        heap_s / calendar_s
    );

    let json = serde_json::json!({
        "quick": quick,
        "hold_steps": steps,
        "hold": points.iter().map(|p| serde_json::json!({
            "pending": p.pending,
            "heap_events_per_sec": p.heap_eps,
            "calendar_events_per_sec": p.calendar_eps,
            "speedup": p.speedup(),
        })).collect::<Vec<_>>(),
        "end_to_end": {
            "heap_seconds": heap_s,
            "calendar_seconds": calendar_s,
            "speedup": heap_s / calendar_s,
        },
    });
    let path = output_dir().join("micro_engine.json");
    std::fs::write(&path, serde_json::to_string_pretty(&json).expect("serialize"))
        .expect("write micro_engine.json");
    eprintln!("wrote {}", path.display());

    if check {
        check_against_baseline(&points);
    }
}
