//! **X9**: a realistic Internet mix — only a *fraction* of name servers
//! are non-cooperative (clamping TTLs below 160 s up to it), instead of
//! the paper's all-or-nothing worst case. How fast does the fine-grained
//! schemes' advantage erode as the clamping population grows?

use geodns_bench::{apply_mode, flatten_series, print_p98_series, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, MinTtlBehavior, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;
const CLAMP_S: f64 = 160.0;

fn main() {
    let algorithms = [Algorithm::drr2_ttl_s_k(), Algorithm::prr2_ttl_k(), Algorithm::prr2_ttl(2)];
    let names: Vec<String> = algorithms.iter().map(Algorithm::name).collect();

    let mut points = Vec::new();
    for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut e = Experiment::new(format!("sweep_noncoop@{fraction}"));
        for algorithm in algorithms {
            let mut cfg = SimConfig::paper_default(algorithm, HeterogeneityLevel::H35);
            cfg.seed = SEED;
            cfg.ns_behavior = MinTtlBehavior::ClampToMin { min_ttl_s: CLAMP_S };
            cfg.ns_noncoop_fraction = fraction;
            apply_mode(&mut cfg);
            e.push(algorithm.name(), cfg);
        }
        points.push((format!("{:.0}%", fraction * 100.0), run_experiment(&e)));
    }

    print_p98_series(
        &format!(
            "X9: Fraction of non-cooperative name servers (clamp {CLAMP_S:.0} s, heterogeneity 35%)"
        ),
        "fraction of domains behind a clamping NS",
        &names,
        &points,
    );
    save_json("sweep_noncoop", &flatten_series(&points));
}
