//! Criterion micro-benchmarks for the random-variate samplers — the
//! workload model draws millions of these per run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geodns_simcore::dist::{Discrete, DiscreteUniform, Distribution, Exponential, Geometric, Zipf};
use geodns_simcore::RngStreams;

const DRAWS: u64 = 10_000;

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributions");
    g.throughput(Throughput::Elements(DRAWS));

    let exp = Exponential::with_mean(15.0);
    g.bench_function("exponential", |b| {
        let mut rng = RngStreams::new(1).stream("exp");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..DRAWS {
                acc += exp.sample(&mut rng);
            }
            acc
        });
    });

    let hits = DiscreteUniform::new(5, 15).unwrap();
    g.bench_function("discrete_uniform", |b| {
        let mut rng = RngStreams::new(2).stream("du");
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc += hits.sample(&mut rng);
            }
            acc
        });
    });

    let pages = Geometric::with_mean(20.0).unwrap();
    g.bench_function("geometric", |b| {
        let mut rng = RngStreams::new(3).stream("geo");
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc += pages.sample(&mut rng);
            }
            acc
        });
    });

    let zipf = Zipf::new(100, 1.0).unwrap();
    g.bench_function("zipf_alias_k100", |b| {
        let mut rng = RngStreams::new(4).stream("zipf");
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc += zipf.sample(&mut rng);
            }
            acc
        });
    });

    let weights: Vec<f64> = (1..=1000).map(|i| 1.0 / f64::from(i)).collect();
    let discrete = Discrete::from_weights(&weights).unwrap();
    g.bench_function("alias_k1000", |b| {
        let mut rng = RngStreams::new(5).stream("alias");
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc += discrete.sample(&mut rng);
            }
            acc
        });
    });

    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("alias_table_build_k1000", |b| {
        let weights: Vec<f64> = (1..=1000).map(|i| 1.0 / f64::from(i)).collect();
        b.iter(|| Discrete::from_weights(&weights).unwrap());
    });
}

criterion_group!(benches, bench_samplers, bench_construction);
criterion_main!(benches);
