//! Criterion micro-benchmarks for the DNS decision path: policy selection
//! and full scheduler resolution. The paper stresses adaptive TTL's "low
//! computational complexity" — these benches quantify it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geodns_core::{
    Algorithm, DnsScheduler, EstimatorKind, HiddenLoadEstimator, PolicyKind, SchedCtx,
};
use geodns_server::{CapacityPlan, HeterogeneityLevel};
use geodns_simcore::{RngStreams, SimTime};

const DECISIONS: u64 = 10_000;

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_select");
    g.throughput(Throughput::Elements(DECISIONS));

    let plan = CapacityPlan::from_level(HeterogeneityLevel::H35, 500.0);
    let weights: Vec<f64> = (0..20).map(|i| 100.0 / (i + 1) as f64).collect();
    let available = vec![true; 7];
    let backlogs = vec![0.0; 7];

    for kind in [
        PolicyKind::Rr,
        PolicyKind::Rr2,
        PolicyKind::Prr,
        PolicyKind::Prr2,
        PolicyKind::Dal,
        PolicyKind::Mrl,
        PolicyKind::LeastLoaded,
    ] {
        g.bench_function(kind.paper_name(), |b| {
            let mut policy = kind.build(7, 2, 20);
            let mut rng = RngStreams::new(9).stream("bench");
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..DECISIONS {
                    let ctx = SchedCtx {
                        domain: (i % 20) as usize,
                        class: (i % 2) as usize,
                        weights: &weights,
                        relative_caps: plan.relatives(),
                        capacities: plan.absolutes(),
                        available: &available,
                        backlogs: &backlogs,
                        now: SimTime::from_secs(i as f64),
                    };
                    let s = policy.select(&ctx, &mut rng);
                    policy.assigned(s, 0.05, 240.0, ctx.now);
                    acc += s;
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_resolve");
    g.throughput(Throughput::Elements(DECISIONS));

    for algorithm in [Algorithm::rr(), Algorithm::drr2_ttl_s_k(), Algorithm::prr2_ttl_k()] {
        g.bench_function(algorithm.name(), |b| {
            let plan = CapacityPlan::from_level(HeterogeneityLevel::H35, 500.0);
            let weights: Vec<f64> = (0..20).map(|i| 100.0 / (i + 1) as f64).collect();
            let est = HiddenLoadEstimator::new(EstimatorKind::Oracle, &weights);
            let rng = RngStreams::new(3).stream("dns");
            let mut dns = DnsScheduler::new(algorithm, &plan, est, 0.05, 240.0, true, rng);
            let backlogs = vec![0.0; 7];
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..DECISIONS {
                    let (s, _) =
                        dns.resolve((i % 20) as usize, SimTime::from_secs(i as f64), &backlogs);
                    acc += s;
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_rebuild(c: &mut Criterion) {
    c.bench_function("scheduler_ingest_rebuild_k100", |b| {
        let plan = CapacityPlan::from_level(HeterogeneityLevel::H35, 500.0);
        let weights = vec![1.0; 100];
        let est = HiddenLoadEstimator::new(
            EstimatorKind::Measured { collect_interval_s: 32.0, ema_alpha: 0.25 },
            &weights,
        );
        let rng = RngStreams::new(4).stream("dns");
        let mut dns =
            DnsScheduler::new(Algorithm::drr2_ttl_s_k(), &plan, est, 0.01, 240.0, true, rng);
        let counts: Vec<u64> = (0..100).map(|i| 1000 / (i + 1)).collect();
        b.iter(|| dns.ingest(&counts, 32.0));
    });
}

criterion_group!(benches, bench_select, bench_resolve, bench_rebuild);
criterion_main!(benches);
