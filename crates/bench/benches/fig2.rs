//! Regenerates **Figure 2**: cumulative frequency of the maximum server
//! utilization for the *probabilistic* algorithms at 35% heterogeneity.

use geodns_bench::{apply_mode, print_cdf_table, run_experiment, save_json};
use geodns_core::{Algorithm, Experiment, SimConfig};
use geodns_server::HeterogeneityLevel;

const SEED: u64 = 1998;

fn main() {
    let level = HeterogeneityLevel::H35;
    let mut e = Experiment::new("fig2");

    let mut ideal = SimConfig::ideal(level);
    ideal.seed = SEED;
    apply_mode(&mut ideal);
    e.push("Ideal", ideal);

    let algorithms = [
        Algorithm::prr2_ttl_k(),
        Algorithm::prr_ttl_k(),
        Algorithm::prr2_ttl(2),
        Algorithm::prr_ttl(2),
        Algorithm::prr2_ttl1(),
        Algorithm::prr_ttl1(),
        Algorithm::rr(),
    ];
    for algorithm in algorithms {
        let mut cfg = SimConfig::paper_default(algorithm, level);
        cfg.seed = SEED;
        apply_mode(&mut cfg);
        e.push(algorithm.name(), cfg);
    }

    let results = run_experiment(&e);
    print_cdf_table("Figure 2: Probabilistic algorithms (heterogeneity 35%)", &results);
    save_json("fig2", &results);
}
