//! Regenerates **Table 1**: the parameters of the system model, as realized
//! by this implementation's defaults, cross-checked against live objects.

use geodns_bench::output_dir;
use geodns_core::{Algorithm, SimConfig};
use geodns_server::HeterogeneityLevel;
use geodns_workload::SkewSummary;

fn main() {
    let cfg = SimConfig::paper_default(Algorithm::drr2_ttl_s_k(), HeterogeneityLevel::H20);
    let workload = cfg.workload.build().expect("default workload builds");
    let plan = cfg.servers.plan(cfg.total_capacity).expect("default plan builds");

    let rows: Vec<(&str, &str, String)> = vec![
        ("Domain", "Connected K", format!("10–100 ({})", cfg.workload.n_domains)),
        ("Domain", "Clients per domain", "pure Zipf".into()),
        ("Client", "Total number", cfg.workload.n_clients.to_string()),
        ("Client", "Mean think time", format!("10–30 s ({})", cfg.workload.session.think_mean_s)),
        (
            "Request",
            "Requests per session",
            format!("{} pages (mean)", cfg.workload.session.pages_mean),
        ),
        (
            "Request",
            "Hits per request",
            format!("U{{{}–{}}}", cfg.workload.session.hits_lo, cfg.workload.session.hits_hi),
        ),
        ("Web site", "Servers N", format!("5–17 ({})", plan.num_servers())),
        ("Web site", "Total capacity", format!("{} hits/s", plan.total_capacity())),
        ("Web site", "Heterogeneity", "0–65%".into()),
        (
            "Web site",
            "Average utilization",
            format!("{:.3}", workload.total_offered_hit_rate() / plan.total_capacity()),
        ),
        ("Algorithm", "Utilization interval", format!("{} s", cfg.util_interval_s)),
        ("Algorithm", "Alarm threshold θ", format!("{}", cfg.alarm_threshold)),
        ("Algorithm", "Class threshold γ", format!("1/K = {}", cfg.gamma())),
        ("Algorithm", "Constant TTL", format!("{} s", cfg.ttl_const_s)),
    ];

    println!("\nTable 1: Parameters of the system model (defaults in parentheses)\n");
    let table_rows: Vec<Vec<String>> =
        rows.iter().map(|(c, p, v)| vec![(*c).to_string(), (*p).to_string(), v.clone()]).collect();
    println!(
        "{}",
        geodns_core::format_table(&["Category", "Parameter", "Setting (default)"], &table_rows)
    );

    // Live cross-checks the table implies.
    let offered = workload.total_offered_hit_rate();
    assert!(
        (offered / plan.total_capacity() - 2.0 / 3.0).abs() < 0.01,
        "design point: offered load is 2/3 of capacity"
    );
    let skew = SkewSummary::from_rates(workload.nominal_rates());
    println!(
        "cross-check: offered load {offered:.1} hits/s = {:.1}% of capacity; \
         top-10% domains carry {:.0}% of load (Zipf skew)",
        100.0 * offered / plan.total_capacity(),
        100.0 * skew.top_share(0.10),
    );

    let json = serde_json::json!({
        "rows": rows.iter().map(|(c, p, v)| serde_json::json!([c, p, v])).collect::<Vec<_>>(),
        "offered_hit_rate": offered,
        "avg_utilization_design": offered / plan.total_capacity(),
        "top10pct_domain_share": skew.top_share(0.10),
    });
    std::fs::write(output_dir().join("table1.json"), serde_json::to_string_pretty(&json).unwrap())
        .expect("write table1.json");
    eprintln!("wrote {}", output_dir().join("table1.json").display());
}
